"""Unsupervised clustering on the edge: GENERIC vs K-means.

An IoT gateway receives an unlabeled sensor stream and groups it
on-device (Section 4.2.3).  The example clusters the FCPS benchmark
shapes with both the HDC engine (simulated accelerator, with its
energy report) and a K-means baseline, comparing cluster quality (NMI,
Table 2) and the per-input energy gap (Fig. 10) estimated by the
device models.

Run with::

    python examples/edge_clustering.py
"""

from __future__ import annotations

from repro import GenericAccelerator, GenericEncoder
from repro.baselines import KMeans
from repro.datasets import CLUSTER_DATASETS, make_cluster_dataset
from repro.eval.metrics import normalized_mutual_information
from repro.hardware.spec import AppSpec, Mode
from repro.platforms import RASPBERRY_PI
from repro.platforms.device import Workload


def cluster_on_accelerator(X, k: int, dim: int = 512, seed: int = 7):
    accelerator = GenericAccelerator()
    accelerator.configure(
        AppSpec(dim=dim, n_features=X.shape[1], window=min(3, X.shape[1]),
                n_classes=max(2, k), mode=Mode.CLUSTER)
    )
    encoder = GenericEncoder(dim=dim, seed=seed, window=min(3, X.shape[1]))
    encoder.fit(X)
    accelerator.load_tables(
        encoder.levels.vectors, encoder.id_generator.seed,
        encoder.quantizer.lo, encoder.quantizer.hi,
    )
    return accelerator.cluster(X, k=k, epochs=10)


def main() -> None:
    print(f"{'dataset':<12} | {'NMI k-means':>11} | {'NMI HDC':>8} | "
          f"{'uJ HDC':>8} | {'uJ k-means@Pi':>13} | {'ratio':>8}")
    print("-" * 72)
    for name in CLUSTER_DATASETS:
        X, y_true, k = make_cluster_dataset(name, seed=7, scale=0.4)

        kmeans = KMeans(k=k, seed=7).fit(X)
        nmi_km = normalized_mutual_information(y_true, kmeans.labels_)
        profile = kmeans.compute_profile(len(X), X.shape[1])
        pi_energy = RASPBERRY_PI.energy_j(
            Workload(flops=profile.train_flops / len(X),
                     bytes_moved=profile.train_bytes / len(X),
                     sync_points=max(1, kmeans.iterations_))
        )

        report = cluster_on_accelerator(X, k)
        nmi_hdc = normalized_mutual_information(y_true, report.predictions)

        ratio = pi_energy / report.energy_per_input_j
        print(f"{name:<12} | {nmi_km:>11.3f} | {nmi_hdc:>8.3f} | "
              f"{report.energy_per_input_j * 1e6:>8.3f} | "
              f"{pi_energy * 1e6:>13.1f} | {ratio:>7.0f}x")

    print("\nComparable cluster quality at a three-to-four orders of "
          "magnitude energy discount per input.")


if __name__ == "__main__":
    main()
