"""Design-space exploration: the accuracy/energy Pareto of one application.

GENERIC exposes two run-time knobs (Section 4.3) -- effective
dimensionality ``D_hv`` and class bit-width ``bw`` -- plus voltage
over-scaling.  This example sweeps the (D_hv, bw) grid for an activity
recognition model, measures accuracy and per-input energy on the
simulated ASIC, and prints the Pareto-efficient operating points: the
menu a deployment engineer actually picks from.

Run with::

    python examples/design_space.py
"""

from __future__ import annotations

import numpy as np

from repro import GenericAccelerator, GenericEncoder, HDClassifier
from repro.core import model_io
from repro.datasets import load_dataset

DIMS = (2048, 1024, 512, 256)
BITWIDTHS = (16, 8, 4, 2)


def measure(accelerator, dataset) -> tuple:
    report = accelerator.infer(dataset.X_test)
    accuracy = float(np.mean(report.predictions == dataset.y_test))
    return accuracy, report.energy_per_input_j


def pareto_front(points: dict) -> set:
    """Keys whose (accuracy, -energy) is not dominated by any other."""
    front = set()
    for key, (acc, energy) in points.items():
        dominated = any(
            other_acc >= acc and other_e <= energy and (other_acc, other_e) != (acc, energy)
            for other_acc, other_e in points.values()
        )
        if not dominated:
            front.add(key)
    return front


def main() -> None:
    dataset = load_dataset("UCIHAR", profile="bench")
    print(f"dataset: {dataset.describe()}\n")

    encoder = GenericEncoder(dim=max(DIMS), window=3, seed=11)
    classifier = HDClassifier(encoder, epochs=8, seed=11)
    classifier.fit(dataset.X_train, dataset.y_train)
    image = model_io.export_model(classifier)

    points = {}
    for bw in BITWIDTHS:
        accelerator = GenericAccelerator()
        accelerator.load_image(image, bitwidth=bw)
        for dim in DIMS:
            accelerator.reduce_dimensions(dim)
            points[(dim, bw)] = measure(accelerator, dataset)

    front = pareto_front(points)
    print(f"{'D_hv':>5} | {'bw':>3} | {'accuracy':>8} | {'nJ/input':>9} | pareto")
    print("-" * 45)
    for (dim, bw), (acc, energy) in sorted(points.items(), reverse=True):
        marker = "  *" if (dim, bw) in front else ""
        print(f"{dim:>5} | {bw:>2}b | {acc:>8.3f} | {energy * 1e9:>9.1f} |{marker}")

    best_acc = max(points.values())[0]
    cheapest_front = min(
        (points[k][1] for k in front), default=float("nan")
    )
    print(f"\n{len(front)} Pareto-efficient points; accuracy spans "
          f"{min(p[0] for p in points.values()):.3f}..{best_acc:.3f}, "
          f"cheapest efficient point costs {cheapest_front * 1e9:.1f} nJ/input.")
    print("All sixteen operating points come from ONE trained model -- the "
          "spec registers select the trade-off at run time.")


if __name__ == "__main__":
    main()
