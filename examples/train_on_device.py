"""On-device training: the gateway learns without a host in the loop.

GENERIC is *trainable* (unlike inference-only HDC accelerators): the
controller implements model initialization and retraining directly on
the class memories (Section 4.2.2).  This example programs a blank
accelerator with only the encoding tables, streams the labeled training
set through the train mode, and then serves inference -- reporting the
energy of both phases and comparing against software training.

Run with::

    python examples/train_on_device.py
"""

from __future__ import annotations

import numpy as np

from repro import GenericAccelerator, GenericEncoder, HDClassifier
from repro.datasets import load_dataset
from repro.hardware.spec import AppSpec, Mode


def main() -> None:
    dataset = load_dataset("UCIHAR", profile="bench")
    print(f"dataset: {dataset.describe()}")

    # the host only prepares the encoding tables (levels + seed id)
    encoder = GenericEncoder(dim=1024, window=3, seed=5)
    encoder.fit(dataset.X_train)

    accelerator = GenericAccelerator()
    accelerator.configure(
        AppSpec(dim=1024, n_features=dataset.n_features,
                n_classes=dataset.n_classes, mode=Mode.TRAIN)
    )
    accelerator.load_tables(
        encoder.levels.vectors, encoder.id_generator.seed,
        encoder.quantizer.lo, encoder.quantizer.hi,
    )

    train_report = accelerator.train(
        dataset.X_train, dataset.y_train, epochs=10, seed=5
    )
    infer_report = accelerator.infer(dataset.X_test, exact_divider=True)
    hw_acc = float(np.mean(infer_report.predictions == dataset.y_test))

    # reference: the same algorithm in software
    sw = HDClassifier(GenericEncoder(dim=1024, window=3, seed=5),
                      epochs=10, seed=5)
    sw.fit(dataset.X_train, dataset.y_train)

    print(f"\non-device training: {train_report.counters.model_updates} "
          f"model updates, "
          f"{train_report.energy_per_input_j * 1e9:.1f} nJ/input, "
          f"{train_report.time_per_input_s * 1e6:.1f} us/input")
    print(f"on-device accuracy: {hw_acc:.3f}")
    print(f"software accuracy:  {sw.score(dataset.X_test, dataset.y_test):.3f}")
    print(f"\naverage training power: "
          f"{train_report.energy_j / train_report.time_s * 1e3:.2f} mW "
          "(the paper reports ~2 mW)")


if __name__ == "__main__":
    main()
