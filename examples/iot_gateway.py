"""IoT gateway: one GENERIC chip time-multiplexing several applications.

The paper pitches GENERIC as flexible enough to serve "various
applications" from one design -- e.g. a gateway that classifies
activity windows, screens EEG segments and sorts page-layout blocks as
the traffic arrives.  This example builds three trained applications,
registers their config bitstreams with the
:class:`~repro.hardware.multiplex.AppManager`, replays a mixed request
trace, and accounts for everything: per-app accuracy, serving energy,
and the reprogramming (swap) overhead of sharing one device.

Run with::

    python examples/iot_gateway.py
"""

from __future__ import annotations

import numpy as np

from repro import GenericEncoder, HDClassifier
from repro.core import model_io
from repro.datasets import load_dataset
from repro.hardware.multiplex import AppManager

APPS = ("PAMAP2", "EEG", "PAGE")


def train_app(name: str, seed: int = 9):
    ds = load_dataset(name, profile="bench")
    enc = GenericEncoder(dim=1024, window=3, seed=seed,
                         use_ids=ds.use_position_ids)
    clf = HDClassifier(enc, epochs=6, seed=seed).fit(ds.X_train, ds.y_train)
    return model_io.export_model(clf), ds


def main() -> None:
    manager = AppManager(config_baud_bits_per_s=10e6)
    datasets = {}
    for name in APPS:
        image, ds = train_app(name)
        slot = manager.register(name, image)
        datasets[name] = ds
        print(f"registered {name:<7} bitstream {slot.stream_bytes / 1024:6.1f} KB")

    # a mixed arrival trace: bursts from each application, interleaved
    rng = np.random.default_rng(3)
    correct = {name: 0 for name in APPS}
    total = {name: 0 for name in APPS}
    for _ in range(12):
        name = APPS[rng.integers(len(APPS))]
        ds = datasets[name]
        start = int(rng.integers(0, max(1, ds.n_test - 8)))
        X = ds.X_test[start : start + 8]
        y = ds.y_test[start : start + 8]
        report = manager.infer(name, X)
        correct[name] += int(np.sum(report.predictions == y))
        total[name] += len(y)

    print(f"\n{'app':<8} | {'served':>6} | {'accuracy':>8} | "
          f"{'energy uJ':>9} | {'swaps':>5}")
    print("-" * 50)
    for name, stats in manager.summary().items():
        acc = correct[name] / max(1, total[name])
        print(f"{name:<8} | {stats['inferences']:>6.0f} | {acc:>8.3f} | "
              f"{stats['energy_j'] * 1e6:>9.2f} | {stats['swaps']:>5.0f}")

    print(f"\nreprogramming overhead: {manager.total_swap_time_s() * 1e3:.2f} ms, "
          f"{manager.total_swap_energy_j() * 1e6:.3f} uJ total "
          f"({len(manager.swap_log)} swaps over the config port)")
    serving = sum(s['energy_j'] for s in manager.summary().values())
    print(f"serving energy:         {serving * 1e6:.2f} uJ")
    print("\nOne 0.30 mm^2 die serves all three applications; swapping costs "
          "milliseconds of config-port streaming, not silicon.")


if __name__ == "__main__":
    main()
