"""Quickstart: train a GENERIC HDC classifier and deploy it to the ASIC model.

Covers the whole happy path in ~40 lines of user code:

1. load a benchmark dataset (synthetic MNIST stand-in);
2. fit an :class:`~repro.core.classifier.HDClassifier` with the GENERIC
   windowed encoding;
3. export the trained model as a config-port image;
4. load the image into the simulated accelerator and run inference,
   getting predictions *and* a calibrated energy/latency report.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import GenericAccelerator, GenericEncoder, HDClassifier
from repro.core import model_io
from repro.datasets import load_dataset


def main() -> None:
    dataset = load_dataset("MNIST", profile="tiny")
    print(f"dataset: {dataset.describe()}")

    # 1-2. encode + train in software (offline training)
    encoder = GenericEncoder(dim=2048, window=3, seed=42)
    classifier = HDClassifier(encoder, epochs=10, seed=42)
    classifier.fit(dataset.X_train, dataset.y_train)
    accuracy = classifier.score(dataset.X_test, dataset.y_test)
    print(f"software accuracy: {accuracy:.3f} "
          f"({classifier.report_.epochs_run} retraining epochs)")

    # 3. export the config-port image the hardware consumes
    image = model_io.export_model(classifier)

    # 4. deploy on the simulated GENERIC ASIC
    accelerator = GenericAccelerator()
    accelerator.load_image(image)
    report = accelerator.infer(dataset.X_test)
    hw_accuracy = float(np.mean(report.predictions == dataset.y_test))

    print(f"hardware accuracy: {hw_accuracy:.3f} (Mitchell divider)")
    print(f"cycles/input:      {report.cycles // report.n_inputs}")
    print(f"latency/input:     {report.time_per_input_s * 1e6:.1f} us")
    print(f"energy/input:      {report.energy_per_input_j * 1e9:.1f} nJ")
    print(f"static power:      {report.power.static_w * 1e3:.3f} mW "
          f"(power-gated banks: {accelerator.gating.banks_active}"
          f"/{accelerator.gating.banks_total})")


if __name__ == "__main__":
    main()
