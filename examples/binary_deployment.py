"""Binary deployment: ship a 1-bit model when there's no ASIC around.

Not every node gets a GENERIC die.  For plain microcontrollers the
software fallback is the paper's own eGPU trick (Section 3.3): quantize
the model to signs, pack 64 dimensions per machine word, and classify
with XOR + popcount.  :class:`repro.core.packed.PackedModel` implements
exactly that; this example measures what the binary path costs in
accuracy and what it saves in footprint against the 16-bit model.

Run with::

    python examples/binary_deployment.py
"""

from __future__ import annotations

from repro import GenericEncoder, HDClassifier
from repro.core.packed import PackedModel
from repro.datasets import load_dataset

DATASETS = ("FACE", "MNIST", "UCIHAR", "EEG")


def main() -> None:
    print(f"{'dataset':<8} | {'16-bit acc':>10} | {'1-bit acc':>9} | "
          f"{'model KB':>8} | {'packed KB':>9} | {'shrink':>6}")
    print("-" * 66)
    for name in DATASETS:
        ds = load_dataset(name, profile="bench")
        enc = GenericEncoder(dim=2048, window=3, seed=13,
                             use_ids=ds.use_position_ids)
        clf = HDClassifier(enc, epochs=8, seed=13).fit(ds.X_train, ds.y_train)
        full_acc = clf.score(ds.X_test, ds.y_test)

        packed = PackedModel.from_classifier(clf)
        packed_acc = packed.score(ds.X_test, ds.y_test)

        full_kb = clf.n_classes * enc.dim * 2 / 1024
        packed_kb = packed.model_bytes() / 1024
        print(f"{name:<8} | {full_acc:>10.3f} | {packed_acc:>9.3f} | "
              f"{full_kb:>8.1f} | {packed_kb:>9.2f} | "
              f"{packed.compression_vs_16bit():>5.0f}x")

    print("\nThe packed model is 16x smaller and classifies with XOR + "
          "popcount only -- the same bit-level parallelism the GENERIC ASIC "
          "exploits natively.  Whether 1-bit signs are affordable is "
          "application-dependent (exactly the bw story of Fig. 6): wide-"
          "margin models (FACE, MNIST) lose nothing, tight-margin ones "
          "(EEG) need more bits -- check before you ship.")


if __name__ == "__main__":
    main()
