"""Inspect what the kernel planner decided for an encoding shape.

Every encode since the primitive-IR refactor runs through a
:class:`~repro.core.ir.KernelPlan`: the planner picks a backend,
decides pair fusion / window blocking / chunk sizes per shape class,
and prices the pipeline per primitive.  ``plan.describe()`` renders
those decisions; this example walks a few regimes where they change:

1. a small-dim shape (fusion off -- the tables are cache-resident);
2. a large-dim shape (pair fusion on, ~2x the gather+XOR throughput);
3. the reference engine (no packing, no fusion, readable ground truth);
4. multifold approximate encoding (``approx_folds=``), with the plan's
   hard error bound on the counts.

Run with::

    PYTHONPATH=src python examples/plan_describe.py
"""

from __future__ import annotations

import numpy as np

from repro import GenericEncoder
from repro.core.ir import BACKENDS


def show(title: str, enc: GenericEncoder, X: np.ndarray) -> None:
    plan = enc.fit(X).encode_plan()
    print(f"--- {title} ---")
    print(plan.describe())
    if plan.error_bound is not None:
        print(f"  error bound: {plan.error_bound}")
    print()


def main() -> None:
    rng = np.random.default_rng(0)
    X = rng.normal(size=(64, 617))

    print(f"registered backends: {BACKENDS.names()}\n")

    show("D=1024, packed (fusion off: tables stay cache-resident)",
         GenericEncoder(dim=1024, num_levels=64, seed=1, window=3,
                        engine="packed"), X)
    show("D=8192, packed (pair fusion + window blocking)",
         GenericEncoder(dim=8192, num_levels=64, seed=1, window=3,
                        engine="packed"), X)
    show("D=4096, reference (bipolar ground truth)",
         GenericEncoder(dim=4096, num_levels=64, seed=1, window=3,
                        engine="reference"), X)
    show("D=4096, packed, approx_folds=300 of 615 windows",
         GenericEncoder(dim=4096, num_levels=64, seed=1, window=3,
                        engine="packed", approx_folds=300), X)

    # the per-primitive logical op totals feed the obs layer: encode
    # spans carry them, and `python -m repro.obs report` breaks a
    # trace down per primitive
    enc = GenericEncoder(dim=2048, num_levels=64, seed=1, window=3).fit(X)
    ops = enc.encode_plan().primitive_ops(len(X))
    width = max(len(k) for k in ops)
    print(f"--- per-primitive logical ops for one {len(X)}-sample batch ---")
    for name, count in ops.items():
        print(f"  {name:<{width}}  {count:>14,}")


if __name__ == "__main__":
    main()
