"""Wearable activity recognition with on-demand dimension reduction.

The IoT scenario the paper's introduction motivates: a battery-powered
wearable classifies activities (PAMAP2-like motion windows).  The
device owner can trade accuracy for battery life *at run time* by
shrinking the effective hypervector dimensionality (Section 4.3.3) --
no retraining, just a new ``D_hv`` in the spec registers -- because the
norm2 memory keeps exact sub-norms at 128-dimension granularity.

The script sweeps the dimensionality and prints the resulting
accuracy / energy / projected battery-life table.

Run with::

    python examples/activity_recognition.py
"""

from __future__ import annotations

import numpy as np

from repro import GenericAccelerator, GenericEncoder, HDClassifier
from repro.core import model_io
from repro.datasets import load_dataset

BATTERY_J = 3.7 * 0.225 * 3600  # a 225 mAh coin-cell-ish budget in joules
INPUTS_PER_DAY = 1000 * 24 * 3600  # gateway burst rate: 1000 windows/s


def main() -> None:
    dataset = load_dataset("PAMAP2", profile="bench")
    print(f"dataset: {dataset.describe()}")

    encoder = GenericEncoder(dim=2048, window=3, seed=7)
    classifier = HDClassifier(encoder, epochs=8, seed=7)
    classifier.fit(dataset.X_train, dataset.y_train)

    accelerator = GenericAccelerator()
    accelerator.load_image(model_io.export_model(classifier))

    print(f"\n{'D_hv':>6} | {'accuracy':>8} | {'nJ/input':>9} | "
          f"{'days of battery':>15}")
    print("-" * 50)
    for dim in (2048, 1024, 512, 256, 128):
        accelerator.reduce_dimensions(dim)
        report = accelerator.infer(dataset.X_test)
        acc = float(np.mean(report.predictions == dataset.y_test))
        per_input = report.energy_per_input_j
        idle = accelerator.energy_model.total_static_w(accelerator.gating)
        daily = per_input * INPUTS_PER_DAY + idle * 24 * 3600
        days = BATTERY_J / daily
        print(f"{dim:>6} | {acc:>8.3f} | {per_input * 1e9:>9.1f} | "
              f"{days:>15.0f}")

    print("\nReducing dimensions is a pure spec-register change: the same "
          "trained model serves every row.")


if __name__ == "__main__":
    main()
