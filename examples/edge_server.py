"""Edge serving: micro-batching, hot swap, and load-driven dim shedding.

The paper ships a learning engine; a gateway deploying it still needs a
*service* around the model: something that coalesces concurrent sensor
requests into batches, survives a model retrain without downtime, and
degrades gracefully when a traffic spike outruns the hardware.
:mod:`repro.serve` provides exactly that, and its overload valve is the
paper's own Section 4.3.3 mechanism -- on-demand dimension reduction
with exact per-128-dim sub-norms -- driven by live queue depth instead
of a static spec.

This example trains a model on a synthetic workload, registers it,
fires concurrent traffic from many client threads (calm, then a spike),
hot-swaps in a retrained bit-packed model, and prints the metrics
summary the server kept the whole time.

Run with::

    python examples/edge_server.py
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import GenericEncoder, HDClassifier, PackedModel
from repro.serve import InferenceServer, ServeConfig


def make_problem(seed: int = 7, n_features: int = 24, n_classes: int = 4):
    rng = np.random.default_rng(seed)
    protos = rng.normal(scale=1.5, size=(n_classes, n_features))
    y = rng.integers(0, n_classes, size=400)
    X = protos[y] + rng.normal(scale=0.6, size=(400, n_features))
    return X[:300], y[:300], X[300:], y[300:]


def fire_clients(server, X, n_clients: int, requests_each: int,
                 pace: float = 0.0):
    """Concurrent client threads hammering ``submit``; returns predictions.

    ``pace`` sleeps between a client's submissions -- 0 means each
    client fires as fast as it can (a spike).
    """
    results = [None] * n_clients

    def client(idx):
        futures = []
        for i in range(requests_each):
            futures.append(server.submit("activity", X[(idx + i) % len(X)]))
            if pace:
                time.sleep(pace)
        results[idx] = [f.result(timeout=30.0) for f in futures]

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return [p for client_preds in results for p in client_preds]


def main() -> None:
    X_train, y_train, X_live, _ = make_problem()

    print("== train ==")
    enc = GenericEncoder(dim=2048, num_levels=16, seed=7)
    clf = HDClassifier(enc, epochs=5, seed=7).fit(X_train, y_train)
    print(f"trained: dim={enc.dim}, classes={clf.n_classes}, "
          f"train acc={clf.report_.final_train_accuracy:.3f}")

    server = InferenceServer(ServeConfig(
        max_batch=8,
        n_workers=1,          # a modest edge node
        queue_high=8,         # shed early so the spike is visible
        queue_low=1,
        shed_cooldown=0.005,
    ))
    server.register("activity", clf)

    with server:
        print("\n== calm traffic (4 clients x 20 requests, paced) ==")
        calm = fire_clients(server, X_live, n_clients=4, requests_each=20,
                            pace=0.01)
        calm_dims = sorted({p.dim for p in calm})
        print(f"served {len(calm)} requests at dims {calm_dims}, "
              f"shed level now {server.policy.level}")

        print("\n== traffic spike (32 clients x 25 requests) ==")
        spike = fire_clients(server, X_live, n_clients=32, requests_each=25)
        spike_dims = sorted({p.dim for p in spike})
        shed = sum(1 for p in spike if p.dim < enc.dim)
        print(f"served {len(spike)} requests at dims {spike_dims}; "
              f"{shed} predictions shed below {enc.dim} dims "
              f"(max level seen {server.policy.max_level_seen})")

        print("\n== hot swap: retrained + bit-packed model, no downtime ==")
        packed = PackedModel.from_classifier(clf)
        dep = server.register("activity", packed)
        swapped = fire_clients(server, X_live, n_clients=2, requests_each=10)
        print(f"deployment now kind={dep.kind} v{dep.version}; "
              f"served {len(swapped)} requests from the packed model "
              f"({packed.model_bytes() / 1024:.1f} KB, "
              f"{packed.compression_vs_16bit():.0f}x smaller)")

        server.wait_idle()
        stats = server.stats()

    print("\n== metrics summary ==")
    h = stats["histograms"]
    for stage in ("queue_wait", "encode", "search", "total"):
        s = h[stage]
        print(f"  {stage:<10} p50 {s['p50_s'] * 1e3:7.3f} ms   "
              f"p95 {s['p95_s'] * 1e3:7.3f} ms   (n={s['count']})")
    print(f"  batch size p95: {h['batch_size']['p95_s']:.0f} "
          f"(max {h['batch_size']['max_s']:.0f})")
    c = stats["counters"]
    print(f"  served {c['served']}, rejected {c.get('rejected', 0)}, "
          f"shed predictions {c.get('shed_predictions', 0)}")
    print(f"  shed events {stats['policy']['shed_events']}, "
          f"recoveries {stats['policy']['recover_events']}, "
          f"max level {stats['policy']['max_level_seen']}")
    print("\nUnder the spike the server dropped dimensions in 128-dim steps "
          "(exact SubNormTable prefix norms, Section 4.3.3) instead of "
          "letting the queue -- and tail latency -- grow without bound.")


if __name__ == "__main__":
    main()
