"""Seizure detection from EEG + voltage over-scaling on a robust model.

Two GENERIC features in one biosignal scenario:

1. **per-application id configuration** -- time-series like scalp EEG
   carry their signal in *local waveforms* at arbitrary offsets, so the
   windowed encoding runs with the global id binding disabled (ids set
   to the XOR identity), as the paper does for order-free applications.
   A random-projection baseline is trained for contrast and collapses.
2. **voltage over-scaling** (Section 4.3.4), demonstrated on the
   paper's own showcase: a 1-bit FACE model that keeps its accuracy up
   to ~7% flipped SRAM bits while class-memory static power drops
   severalfold.  (Which models tolerate undervolting is application-
   and bit-width-dependent -- Fig. 6; the 2-class EEG model here, with
   its tiny inter-class margin, is *not* a good undervolting target.)

Run with::

    python examples/seizure_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import GenericEncoder, HDClassifier
from repro import RandomProjectionEncoder
from repro.core import model_io
from repro.datasets import load_dataset
from repro.hardware.faults import corrupt_model
from repro.hardware.voltage import operating_point


def main() -> None:
    dataset = load_dataset("EEG", profile="bench")
    print(f"dataset: {dataset.describe()}")
    print(f"position ids enabled: {dataset.use_position_ids}")

    # order-free GENERIC vs a random-projection baseline
    generic = HDClassifier(
        GenericEncoder(dim=2048, window=3, use_ids=False, seed=3),
        epochs=8, seed=3,
    ).fit(dataset.X_train, dataset.y_train)
    rp = HDClassifier(
        RandomProjectionEncoder(dim=2048, seed=3), epochs=8, seed=3
    ).fit(dataset.X_train, dataset.y_train)

    print(f"\nGENERIC (windows, no ids): {generic.score(dataset.X_test, dataset.y_test):.3f}")
    print(f"random projection:          {rp.score(dataset.X_test, dataset.y_test):.3f}"
          "   <- no translation-invariant signal")

    # voltage over-scaling demo on the paper's robust configuration:
    # a 1-bit FACE model (Fig. 6)
    face = load_dataset("FACE", profile="bench")
    face_clf = HDClassifier(
        GenericEncoder(dim=2048, window=3, seed=3), epochs=8, seed=3
    ).fit(face.X_train, face.y_train)
    encodings = face_clf.encoder.encode_batch(face.X_test).astype(np.float64)

    print(f"\nundervolting a 1-bit FACE model "
          f"({face_clf.score(face.X_test, face.y_test):.3f} at nominal vdd):")
    print(f"{'bit-error':>9} | {'vdd':>5} | {'accuracy':>8} | "
          f"{'static saving':>13}")
    print("-" * 48)
    rng = np.random.default_rng(11)
    for rate in (0.0, 0.01, 0.02, 0.05, 0.07):
        point = operating_point(rate)
        faulty = face_clf.with_model(corrupt_model(face_clf.model_, 1, rate, rng))
        preds = faulty.predict_encoded(encodings)
        acc = float(np.mean(preds == face.y_test))
        print(f"{rate:>9.0%} | {point.vdd:>5.2f} | {acc:>8.3f} | "
              f"{point.static_saving:>12.1f}x")

    print("\nA few percent of flipped SRAM bits barely move the 1-bit "
          "model: the bundled hypervectors are redundant by construction.")


if __name__ == "__main__":
    main()
