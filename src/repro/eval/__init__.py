"""Evaluation substrate: metrics, result tables, experiment modules.

Each table/figure of the paper has a module under
:mod:`repro.eval.experiments` exposing a ``run(...)`` function that
returns an :class:`~repro.eval.harness.ExperimentResult`; the
``benchmarks/`` directory wraps those runs with pytest-benchmark and
asserts the paper's shape claims.
"""

from repro.eval.harness import ExperimentResult
from repro.eval.metrics import accuracy, geometric_mean, normalized_mutual_information

__all__ = [
    "ExperimentResult",
    "accuracy",
    "geometric_mean",
    "normalized_mutual_information",
]
