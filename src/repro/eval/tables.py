"""Console rendering of experiment results (rows the paper reports)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a fixed-width text table."""

    def fmt(cell) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def dict_table(
    data: Dict[str, Dict[str, float]],
    row_name: str = "dataset",
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a nested dict {row: {column: value}} as a table."""
    if not data:
        raise ValueError("empty table")
    columns = list(next(iter(data.values())).keys())
    headers = [row_name, *columns]
    rows = [[name, *(values.get(c, float("nan")) for c in columns)] for name, values in data.items()]
    return format_table(headers, rows, title=title, float_fmt=float_fmt)
