"""Table 1: accuracy of HDC encoders and ML baselines on the 11 datasets.

Columns follow the paper: RP, level-id, ngram, permute, GENERIC for HDC;
MLP, SVM, RF, DNN for ML.  The GENERIC column uses each dataset's
per-application id configuration (ids disabled for order-free data),
exactly as the flexible architecture intends.

Shape claims asserted against the paper:

- GENERIC has the highest mean accuracy among the HDC encoders;
- GENERIC's mean beats the best classic-ML mean (paper: +6.5% over SVM);
- GENERIC's mean beats the best baseline HDC mean (paper: +3.5% over
  level-id) and has the lowest standard deviation across datasets;
- random projection collapses on the temporal datasets (EEG, LANG);
- ngram collapses on globally-ordered datasets (ISOLET, MNIST) but ties
  GENERIC on LANG.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines import (
    DNNClassifier,
    MLPClassifier,
    RandomForestClassifier,
    SVMClassifier,
)
from repro.core.classifier import HDClassifier
from repro.core.encoders import PAPER_ORDER, make_encoder
from repro.datasets import CLASSIFICATION_DATASETS, load_dataset
from repro.eval.harness import ExperimentResult, parallel_map

HDC_COLUMNS = PAPER_ORDER  # ("rp", "level-id", "ngram", "permute", "generic")
ML_COLUMNS = ("mlp", "svm", "rf", "dnn")
DEFAULT_DIM = 2048
DEFAULT_EPOCHS = 10


def _make_ml(name: str, seed: int):
    if name == "mlp":
        return MLPClassifier(hidden=(100,), epochs=40, seed=seed)
    if name == "svm":
        return SVMClassifier(kernel="rbf", seed=seed)
    if name == "rf":
        return RandomForestClassifier(n_estimators=25, max_depth=12, seed=seed)
    if name == "dnn":
        return DNNClassifier(epochs=30, seed=seed)
    raise ValueError(f"unknown ML baseline {name!r}")


@lru_cache(maxsize=8)
def _cached_dataset(name: str, profile: str):
    """Per-process dataset cache so column cells share one load."""
    return load_dataset(name, profile)


def _evaluate_cell(task) -> float:
    """One ``(dataset, column)`` cell -- module-level so process pools
    can pickle it; each cell is independently seeded, so results are
    identical whether cells run serially or fanned out."""
    name, column, profile, dim, epochs, seed = task
    ds = _cached_dataset(name, profile)
    if column in HDC_COLUMNS:
        kwargs = {"dim": dim, "seed": seed}
        if column == "generic":
            kwargs["use_ids"] = ds.use_position_ids
        clf = HDClassifier(make_encoder(column, **kwargs), epochs=epochs, seed=seed)
        clf.fit(ds.X_train, ds.y_train)
        return clf.score(ds.X_test, ds.y_test)
    model = _make_ml(column, seed)
    model.fit(ds.X_train, ds.y_train)
    return model.score(ds.X_test, ds.y_test)


def evaluate_dataset(
    name: str,
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    epochs: int = DEFAULT_EPOCHS,
    seed: int = 5,
    include_ml: bool = True,
) -> Dict[str, float]:
    """Accuracy of every column on one dataset."""
    columns = list(HDC_COLUMNS) + (list(ML_COLUMNS) if include_ml else [])
    return {
        c: _evaluate_cell((name, c, profile, dim, epochs, seed))
        for c in columns
    }


def run(
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    epochs: int = DEFAULT_EPOCHS,
    seed: int = 5,
    datasets: Optional[Sequence[str]] = None,
    include_ml: bool = True,
    n_jobs: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Table 1; returns rows per dataset plus Mean/STDV rows.

    ``n_jobs`` fans the ``dataset x column`` cells out over a process
    pool (``-1`` = all cores); the numbers are identical to the serial
    run because every cell is independently seeded.
    """
    names = list(datasets) if datasets else list(CLASSIFICATION_DATASETS)
    columns = list(HDC_COLUMNS) + (list(ML_COLUMNS) if include_ml else [])
    tasks = [
        (name, column, profile, dim, epochs, seed)
        for name in names for column in columns
    ]
    accs = parallel_map(_evaluate_cell, tasks, n_jobs=n_jobs)
    table: Dict[str, Dict[str, float]] = {name: {} for name in names}
    for (name, column, *_), acc in zip(tasks, accs):
        table[name][column] = acc
    means = {c: float(np.mean([table[n][c] for n in names])) for c in columns}
    stds = {c: float(np.std([table[n][c] for n in names])) for c in columns}

    headers = ["dataset", *columns]
    rows = [[n, *(table[n][c] for c in columns)] for n in names]
    rows.append(["Mean", *(means[c] for c in columns)])
    rows.append(["STDV", *(stds[c] for c in columns)])

    claims: Dict[str, bool] = {}
    hdc_means = {c: means[c] for c in HDC_COLUMNS}
    best_baseline_hdc = max(
        (c for c in HDC_COLUMNS if c != "generic"), key=lambda c: hdc_means[c]
    )
    claims["GENERIC has the highest mean among HDC encoders"] = (
        means["generic"] == max(hdc_means.values())
    )
    claims["GENERIC improves on the best baseline HDC mean"] = (
        means["generic"] > means[best_baseline_hdc]
    )
    claims["GENERIC has the lowest accuracy STDV among HDC encoders"] = (
        stds["generic"] == min(stds[c] for c in HDC_COLUMNS)
    )
    if include_ml:
        best_classic = max(("mlp", "svm", "rf"), key=lambda c: means[c])
        claims["GENERIC mean beats the best classic-ML mean"] = (
            means["generic"] > means[best_classic]
        )
    if "EEG" in table:
        claims["RP collapses on EEG (temporal signal)"] = (
            table["EEG"]["rp"] < table["EEG"]["generic"] - 0.2
        )
    if "LANG" in table:
        claims["RP collapses on LANG"] = table["LANG"]["rp"] < 0.2
        claims["ngram ties GENERIC on LANG (both ~max)"] = (
            abs(table["LANG"]["ngram"] - table["LANG"]["generic"]) < 0.05
            and table["LANG"]["generic"] > 0.8
        )
    if "ISOLET" in table:
        claims["ngram collapses on ISOLET (global order)"] = (
            table["ISOLET"]["ngram"] < table["ISOLET"]["generic"] - 0.3
        )
    if "MNIST" in table:
        claims["ngram trails GENERIC on MNIST"] = (
            table["MNIST"]["ngram"] < table["MNIST"]["generic"] - 0.2
        )

    return ExperimentResult(
        experiment="Table 1",
        description="classification accuracy of HDC and ML algorithms",
        headers=headers,
        rows=rows,
        data={"table": table, "means": means, "stds": stds},
        claims=claims,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
