"""Fig. 9: inference energy of GENERIC vs prior accelerators and devices.

Besides energy, the section also claims an accuracy edge over the prior
trainable accelerator: Datta et al. [10] "yields 9% lower accuracy than
baseline ML algorithms", giving GENERIC a ~10.3% advantage; the run
reports that comparison using the Table 1 means.

Per-input inference energy, geometric mean over the 11 datasets, for:

- GENERIC (baseline, 16-bit, full dimensions, no voltage scaling);
- GENERIC-LP (the Section 4.3 package: on-demand dimension reduction,
  reduced bit-width, and voltage over-scaling);
- the published accelerators Datta et al. [10] and tiny-HD [8],
  technology-scaled to 14 nm;
- RF/SVM on the desktop CPU, DNN and HDC on the eGPU.

Shape claims (paper Section 5.2.2):

- GENERIC-LP improves on baseline GENERIC by roughly an order of
  magnitude (paper: 15.5x from dimension reduction + voltage scaling);
- GENERIC-LP beats tiny-HD ~4x and Datta ~16x;
- GENERIC is orders of magnitude ahead of the best conventional ML
  (paper: 1593x vs RF) and eGPU-HDC (8796x).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines import MLPClassifier, RandomForestClassifier, SVMClassifier
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder, make_encoder
from repro.core.model_io import export_model
from repro.datasets import CLASSIFICATION_DATASETS, load_dataset
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import geometric_mean
from repro.hardware.accelerator import GenericAccelerator
from repro.hardware.params import DEFAULT_PARAMS
from repro.platforms import (
    DESKTOP_CPU,
    EDGE_GPU,
    PUBLISHED_ACCELERATORS,
    hdc_inference_workload,
    ml_inference_workload,
)

DEFAULT_DIM = 4096  # the paper's full D_hv; LP reduces to a quarter
LP_ERROR_RATE = 0.04
LP_BITWIDTH = 4


def _accelerator_inference(ds, dim: int, seed: int, lp: bool):
    """Per-input inference energy on the simulated ASIC."""
    enc = GenericEncoder(dim=dim, seed=seed, use_ids=ds.use_position_ids)
    clf = HDClassifier(enc, epochs=3, seed=seed).fit(ds.X_train, ds.y_train)
    image = export_model(clf)
    acc = GenericAccelerator(DEFAULT_PARAMS)
    acc.load_image(image, bitwidth=LP_BITWIDTH if lp else 16)
    if lp:
        # on-demand dimension reduction to a quarter + voltage over-scaling
        reduced = max(DEFAULT_PARAMS.norm_block, (dim // 4 // 128) * 128)
        acc.reduce_dimensions(reduced)
        acc.set_voltage_overscaling(LP_ERROR_RATE)
    n_eval = min(32, len(ds.X_test))
    report = acc.infer(ds.X_test[:n_eval])
    return report.energy_per_input_j


def run(
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    seed: int = 5,
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = list(datasets) if datasets else list(CLASSIFICATION_DATASETS)
    energies: Dict[str, list] = {
        k: []
        for k in (
            "GENERIC", "GENERIC-LP", "RF (CPU)", "SVM (CPU)",
            "DNN (eGPU)", "HDC (eGPU)",
        )
    }
    for name in names:
        ds = load_dataset(name, profile)
        energies["GENERIC"].append(_accelerator_inference(ds, dim, seed, lp=False))
        energies["GENERIC-LP"].append(_accelerator_inference(ds, dim, seed, lp=True))

        rf = RandomForestClassifier(n_estimators=20, seed=seed).fit(
            ds.X_train[:200], ds.y_train[:200]
        )
        svm = SVMClassifier(kernel="rbf", epochs=15, seed=seed).fit(
            ds.X_train[:200], ds.y_train[:200]
        )
        dnn = MLPClassifier(hidden=(256, 128), epochs=15, seed=seed).fit(
            ds.X_train[:200], ds.y_train[:200]
        )
        for label, model, device in (
            ("RF (CPU)", rf, DESKTOP_CPU),
            ("SVM (CPU)", svm, DESKTOP_CPU),
            ("DNN (eGPU)", dnn, EDGE_GPU),
        ):
            w = ml_inference_workload(model.compute_profile(ds.n_train))
            energies[label].append(device.energy_j(w))
        hdc_enc = make_encoder("generic", dim=dim, seed=seed)
        hdc_enc.fit(ds.X_train)
        energies["HDC (eGPU)"].append(
            EDGE_GPU.energy_j(hdc_inference_workload(hdc_enc, ds.n_classes))
        )

    geo = {k: geometric_mean(v) for k, v in energies.items()}

    # accuracy note: [10] trails baseline ML by ~9% (paper Section 1);
    # GENERIC's advantage over it comes out of the Table 1 means
    from repro.eval.experiments import table1

    acc_rows = {
        name: table1.evaluate_dataset(
            name, profile=profile, dim=2048, epochs=5, seed=seed,
            include_ml=False,
        )
        for name in (names[:3] if len(names) > 3 else names)
    }
    generic_acc = float(
        sum(r["generic"] for r in acc_rows.values()) / len(acc_rows)
    )
    level_id_acc = float(
        sum(r["level-id"] for r in acc_rows.values()) / len(acc_rows)
    )
    datta_proxy_acc = level_id_acc - 0.09  # [10]-style encoding minus 9%
    published = {
        key: acc.energy_at_node(14)
        for key, acc in PUBLISHED_ACCELERATORS.items()
    }
    geo["Datta et al. [10]"] = published["datta-jetcas19"]
    geo["tiny-HD [8]"] = published["tiny-hd-date21"]

    headers = ["platform", "energy uJ/input", "x vs GENERIC-LP"]
    rows = [
        [k, geo[k] * 1e6, geo[k] / geo["GENERIC-LP"]]
        for k in (
            "GENERIC-LP", "GENERIC", "tiny-HD [8]", "Datta et al. [10]",
            "RF (CPU)", "SVM (CPU)", "DNN (eGPU)", "HDC (eGPU)",
        )
    ]

    claims = {
        "GENERIC-LP improves on baseline GENERIC by > 4x": (
            geo["GENERIC"] / geo["GENERIC-LP"] > 4
        ),
        "ordering holds: GENERIC-LP < tiny-HD < Datta in energy": (
            geo["GENERIC-LP"] < geo["tiny-HD [8]"] < geo["Datta et al. [10]"]
        ),
        "GENERIC-LP beats tiny-HD by ~4x (2-14x window)": (
            2 < geo["tiny-HD [8]"] / geo["GENERIC-LP"] < 14
        ),
        "GENERIC-LP beats Datta by ~16x (8-56x window)": (
            8 < geo["Datta et al. [10]"] / geo["GENERIC-LP"] < 56
        ),
        "GENERIC beats the best conventional ML by > 100x": (
            min(geo["RF (CPU)"], geo["SVM (CPU)"]) / geo["GENERIC"] > 100
        ),
        "GENERIC beats eGPU-HDC by > 500x": (
            geo["HDC (eGPU)"] / geo["GENERIC"] > 500
        ),
        "GENERIC holds an accuracy edge over a Datta-style design (~10%)": (
            generic_acc - datta_proxy_acc > 0.05
        ),
    }
    from repro.eval.figures import bar_chart

    chart = bar_chart(
        {k: v * 1e6 for k, v in geo.items()},
        title="Fig. 9 -- inference energy per input (uJ, log scale)",
        unit=" uJ",
        baseline="GENERIC-LP",
    )
    return ExperimentResult(
        experiment="Figure 9",
        description="per-input inference energy vs accelerators and devices",
        headers=headers,
        rows=rows,
        data={
            "energy_j": geo,
            "chart": chart,
            "accuracy": {
                "generic": generic_acc,
                "datta_proxy": datta_proxy_acc,
            },
        },
        claims=claims,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render(float_fmt="{:.4g}"))
