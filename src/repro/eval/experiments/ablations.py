"""Ablations on the design choices DESIGN.md calls out.

- **A1, id-memory compression** (Section 4.3.1): the seed-permutation
  generator shrinks id storage 1024x while keeping the generated ids
  quasi-orthogonal and the end-to-end accuracy unchanged versus
  independent random ids.
- **A2, power gating** (Section 4.3.2): per-application bank plans over
  the 11-dataset suite, the average active-bank count, and the
  resulting class-memory leakage saving (~59% with 4 banks), plus the
  bank-count area/power trade that picked 4 banks.
- **A3, window-length sweep** (Section 3.1): ``n = 3`` maximizes the
  mean accuracy across the suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.core.ids import IdTable, SeedIdGenerator
from repro.datasets import CLASSIFICATION_DATASETS, load_dataset
from repro.eval.harness import ExperimentResult, parallel_map
from repro.hardware.params import DEFAULT_PARAMS
from repro.hardware.power_gating import (
    average_active_banks,
    gating_area_overhead,
    plan_for_spec,
)
from repro.hardware.spec import AppSpec

DEFAULT_DIM = 1024


def run_id_compression(dim: int = DEFAULT_DIM, seed: int = 5,
                       dataset: str = "MNIST", profile: str = "bench") -> ExperimentResult:
    """A1: seed-permutation ids vs independent random ids."""
    rng = np.random.default_rng(seed)
    gen = SeedIdGenerator(rng, dim)
    table = IdTable(np.random.default_rng(seed + 1), 256, dim)

    ds = load_dataset(dataset, profile)
    accs = {}
    for label, use_seed in (("seed-permuted", True), ("independent", False)):
        enc = GenericEncoder(dim=dim, seed=seed, use_ids=True)
        enc.fit(ds.X_train)
        if not use_seed:
            enc._ids = IdTable(
                np.random.default_rng(seed + 2), enc.n_windows, dim
            ).all()
        clf = HDClassifier(enc, epochs=5, seed=seed).fit(ds.X_train, ds.y_train)
        accs[label] = clf.score(ds.X_test, ds.y_test)

    compression = table.storage_bits() * (DEFAULT_PARAMS.max_features / 256) / gen.storage_bits()
    ortho = gen.orthogonality(128)
    headers = ["quantity", "value"]
    rows = [
        ["id storage, naive (bits)", DEFAULT_PARAMS.uncompressed_id_mem_bits],
        ["id storage, compressed (bits)", DEFAULT_PARAMS.id_mem_bits],
        ["compression factor", DEFAULT_PARAMS.uncompressed_id_mem_bits
         / DEFAULT_PARAMS.id_mem_bits],
        ["max |cos| among 128 permuted ids", ortho],
        [f"accuracy on {dataset}, seed-permuted ids", accs["seed-permuted"]],
        [f"accuracy on {dataset}, independent ids", accs["independent"]],
    ]
    claims = {
        "compression factor is 1024x": (
            DEFAULT_PARAMS.uncompressed_id_mem_bits // DEFAULT_PARAMS.id_mem_bits == 1024
        ),
        "permuted ids stay quasi-orthogonal (|cos| < 0.15)": ortho < 0.15,
        "accuracy unchanged vs independent ids (within 3 points)": (
            abs(accs["seed-permuted"] - accs["independent"]) < 0.03
        ),
    }
    return ExperimentResult(
        experiment="Ablation A1",
        description="id-memory compression via seed permutation",
        headers=headers,
        rows=rows,
        data={"accuracy": accs, "orthogonality": ortho},
        claims=claims,
    )


def run_power_gating(profile: str = "bench") -> ExperimentResult:
    """A2: bank activation over the suite + the 4-vs-8 bank trade."""
    full_dim = DEFAULT_PARAMS.max_dim
    specs = []
    occupancies = []
    rows = []
    for name in CLASSIFICATION_DATASETS:
        ds = load_dataset(name, profile)
        spec = AppSpec(
            dim=full_dim, n_features=ds.n_features, n_classes=ds.n_classes,
            use_ids=ds.use_position_ids,
        ).validate()
        plan = plan_for_spec(spec, DEFAULT_PARAMS)
        specs.append(spec)
        occupancies.append(plan.occupancy)
        rows.append([name, ds.n_classes, f"{plan.occupancy:.0%}",
                     plan.banks_active, f"{plan.leakage_saving:.0%}"])

    avg_banks = average_active_banks(specs, DEFAULT_PARAMS)
    avg_occ = float(np.mean(occupancies))
    saving = 1.0 - avg_banks / DEFAULT_PARAMS.class_banks
    overhead4 = gating_area_overhead(4)
    overhead8 = gating_area_overhead(8)
    rows.append(["AVERAGE", "-", f"{avg_occ:.0%}", round(avg_banks, 2),
                 f"{saving:.0%}"])

    headers = ["dataset", "classes", "occupancy", "active banks", "leak saving"]
    claims = {
        "suite occupancy averages well below half (paper: 28%)": avg_occ < 0.5,
        "average active banks below 2.5 of 4 (paper: 1.6)": avg_banks < 2.5,
        "class-memory leakage saving exceeds 35% (paper: 59%)": saving > 0.35,
        "8 banks cost more area than 4 (55% vs 20%)": overhead8 > overhead4,
    }
    return ExperimentResult(
        experiment="Ablation A2",
        description="application-opportunistic power gating",
        headers=headers,
        rows=rows,
        data={
            "avg_banks": avg_banks,
            "avg_occupancy": avg_occ,
            "leak_saving": saving,
            "area_overhead": {"4": overhead4, "8": overhead8},
        },
        claims=claims,
    )


def _window_cell(task) -> float:
    """One ``(dataset, window)`` accuracy cell (picklable for fan-out)."""
    name, n, profile, dim, seed = task
    ds = load_dataset(name, profile)
    enc = GenericEncoder(dim=dim, seed=seed, window=n, use_ids=ds.use_position_ids)
    clf = HDClassifier(enc, epochs=5, seed=seed).fit(ds.X_train, ds.y_train)
    return clf.score(ds.X_test, ds.y_test)


def run_window_sweep(
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    seed: int = 5,
    windows: Sequence[int] = (1, 2, 3, 4, 5),
    datasets: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = None,
) -> ExperimentResult:
    """A3: mean accuracy across the suite per window length n."""
    names = list(datasets) if datasets else ["CARDIO", "EEG", "LANG", "MNIST", "UCIHAR"]
    tasks = [(name, n, profile, dim, seed) for name in names for n in windows]
    accs = parallel_map(_window_cell, tasks, n_jobs=n_jobs)
    table: Dict[int, Dict[str, float]] = {n: {} for n in windows}
    for (name, n, *_), acc in zip(tasks, accs):
        table[n][name] = acc

    means = {n: float(np.mean(list(table[n].values()))) for n in windows}
    headers = ["n", *names, "mean"]
    rows = [[n, *[table[n][d] for d in names], means[n]] for n in windows]
    best = max(means, key=means.get)
    claims = {
        "a multi-element window beats n=1 on average": means[best] > means[1],
        "n=3 beats the window-free and pairwise encodings": (
            means[3] > means[1] and means[3] >= means[2]
        ),
        # the paper picks n=3 on its datasets; on ours the optimum sits on
        # the same flat n=3..5 plateau (all within a few points)
        "n=3 sits on the plateau (within 3 points of the best n)": (
            means[3] >= means[best] - 0.03
        ),
    }
    return ExperimentResult(
        experiment="Ablation A3",
        description="window length sweep (paper picks n=3)",
        headers=headers,
        rows=rows,
        data={"means": means, "table": {str(k): v for k, v in table.items()}},
        claims=claims,
    )


def run_divider(
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    seed: int = 5,
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """A4: exact vs Mitchell vs corrected-Mitchell similarity divider.

    The paper uses an approximate log-based divider [18] with no
    reported accuracy loss on its real datasets.  Our synthetic suite
    produces more correlated class hypervectors (smaller score margins),
    so the plain Mitchell divider *does* flip rankings; the standard
    hardware refinement -- a 16-entry mantissa-correction ROM with
    linear interpolation -- recovers them.  This ablation quantifies
    all three variants.
    """
    from repro.core.model_io import export_model
    from repro.hardware.accelerator import GenericAccelerator
    from repro.hardware.mitchell import mitchell_divide
    from repro.hardware.search_unit import SearchUnit

    names = list(datasets) if datasets else ["MNIST", "ISOLET", "CARDIO"]
    rows = []
    data = {}
    for name in names:
        ds = load_dataset(name, profile)
        enc = GenericEncoder(dim=dim, seed=seed, use_ids=ds.use_position_ids)
        clf = HDClassifier(enc, epochs=5, seed=seed).fit(ds.X_train, ds.y_train)
        acc = GenericAccelerator()
        acc.load_image(export_model(clf))
        encodings = enc.encode_batch(ds.X_test).astype(np.float64)

        accuracies = {}
        accuracies["exact"] = float(np.mean(
            acc.infer(ds.X_test, exact_divider=True).predictions == ds.y_test
        ))
        accuracies["corrected"] = float(np.mean(
            acc.infer(ds.X_test).predictions == ds.y_test
        ))
        # plain Mitchell: score manually through the uncorrected divider
        plain_preds = []
        for h in encodings:
            dots = acc.search.classes @ h
            norm2 = acc.search.norms.full_norm2()
            safe = np.where(norm2 <= 0, np.inf, norm2)
            ratio = mitchell_divide(dots * dots, safe, correct=False)
            plain_preds.append(int(np.argmax(np.sign(dots) * ratio)))
        accuracies["plain"] = float(np.mean(
            acc.class_labels[np.asarray(plain_preds)] == ds.y_test
        ))
        data[name] = accuracies
        rows.append([name, accuracies["exact"], accuracies["corrected"],
                     accuracies["plain"]])

    headers = ["dataset", "exact divide", "corrected Mitchell", "plain Mitchell"]
    meaningful = {n: v for n, v in data.items() if v["exact"] > 0.5}
    claims = {
        "the corrected divider tracks exact division (within 3 points)": all(
            abs(v["corrected"] - v["exact"]) <= 0.03 for v in meaningful.values()
        ),
        "the corrected divider never trails plain Mitchell": all(
            v["corrected"] >= v["plain"] - 0.02 for v in meaningful.values()
        ),
    }
    return ExperimentResult(
        experiment="Ablation A4",
        description="similarity divider: exact vs Mitchell variants",
        headers=headers,
        rows=rows,
        data=data,
        claims=claims,
    )


def run_bitwidth(
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    seed: int = 5,
    bitwidths: Sequence[int] = (16, 8, 4, 2, 1),
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """A5: class bit-width vs accuracy and dynamic energy (no faults).

    The ``bw`` spec register masks class words (Fig. 4 marker 5);
    quantized elements also cut the dot-product dynamic power
    (Section 4.3.4).  Sweep the mask at zero bit-error rate.
    """
    from repro.hardware import controller
    from repro.hardware.counters import Counters
    from repro.hardware.energy import EnergyModel
    from repro.hardware.faults import quantize_to_bits
    from repro.hardware.params import DEFAULT_PARAMS
    from repro.hardware.spec import AppSpec

    names = list(datasets) if datasets else ["FACE", "MNIST"]
    model = EnergyModel(DEFAULT_PARAMS)
    rows = []
    data = {}
    for name in names:
        ds = load_dataset(name, profile)
        enc = GenericEncoder(dim=dim, seed=seed, use_ids=ds.use_position_ids)
        clf = HDClassifier(enc, epochs=5, seed=seed).fit(ds.X_train, ds.y_train)
        encodings = enc.encode_batch(ds.X_test).astype(np.float64)
        spec = AppSpec(dim=dim, n_features=ds.n_features,
                       n_classes=ds.n_classes, use_ids=ds.use_position_ids)
        _, counters = controller.inference(spec, DEFAULT_PARAMS)
        per_bw = {}
        for bw in bitwidths:
            q = quantize_to_bits(clf.model_, bw).astype(np.float64)
            faulty = clf.with_model(q)
            acc_val = float(np.mean(
                faulty.predict_encoded(encodings) == ds.y_test
            ))
            energy = sum(model.dynamic_energy_j(counters, bitwidth=bw).values())
            per_bw[bw] = {"accuracy": acc_val, "dyn_energy_j": energy}
            rows.append([name, f"{bw}b", acc_val, energy * 1e9])
        data[name] = per_bw

    headers = ["dataset", "bw", "accuracy", "dyn nJ/input"]
    e16 = {n: data[n][16]["dyn_energy_j"] for n in names}
    e4 = {n: data[n][4]["dyn_energy_j"] for n in names}
    claims = {
        "8-bit models match 16-bit accuracy (within 2 points)": all(
            data[n][8]["accuracy"] >= data[n][16]["accuracy"] - 0.02
            for n in names
        ),
        "4-bit masking cuts dynamic energy by > 30%": all(
            e4[n] < 0.7 * e16[n] for n in names
        ),
        "dynamic energy is monotone in bit-width": all(
            data[n][a]["dyn_energy_j"] >= data[n][b]["dyn_energy_j"]
            for n in names
            for a, b in zip(bitwidths, bitwidths[1:])
        ),
    }
    return ExperimentResult(
        experiment="Ablation A5",
        description="class bit-width vs accuracy and dynamic energy",
        headers=headers,
        rows=rows,
        data=data,
        claims=claims,
    )


def run_bank_sweep() -> ExperimentResult:
    """A6: class-memory bank count -- the area x leakage trade (Sec 4.3.2).

    Reproduces the paper's design decision: with the 11-application
    occupancy mix, four banks minimize (1 + area overhead) x (average
    active fraction); eight banks gate leakage slightly better but cost
    55% extra class-memory area.
    """
    import dataclasses

    from repro.hardware.power_gating import (
        average_active_banks,
        gating_area_overhead,
        plan_for_spec,
    )
    from repro.hardware.params import DEFAULT_PARAMS
    from repro.hardware.spec import AppSpec

    specs = []
    for name in CLASSIFICATION_DATASETS:
        ds = load_dataset(name, "tiny")
        specs.append(AppSpec(dim=DEFAULT_PARAMS.max_dim, n_features=ds.n_features,
                             n_classes=ds.n_classes, use_ids=ds.use_position_ids))

    rows = []
    costs = {}
    for banks in (1, 2, 4, 8):
        params = dataclasses.replace(DEFAULT_PARAMS, class_banks=banks)
        avg = average_active_banks(specs, params)
        overhead = gating_area_overhead(banks)
        leak_fraction = avg / banks
        cost = (1.0 + overhead) * leak_fraction
        costs[banks] = cost
        rows.append([banks, round(avg, 2), f"{overhead:.0%}",
                     f"{leak_fraction:.0%}", round(cost, 3)])

    headers = ["banks", "avg active", "area overhead", "leak fraction",
               "area x leak cost"]
    best = min(costs, key=costs.get)
    claims = {
        "banking reduces the cost versus a monolithic memory": (
            min(costs[2], costs[4], costs[8]) < costs[1]
        ),
        "the paper's choice (4 banks) is optimal or near-optimal": (
            costs[4] <= 1.1 * costs[best]
        ),
    }
    return ExperimentResult(
        experiment="Ablation A6",
        description="class-memory bank count trade-off",
        headers=headers,
        rows=rows,
        data={"costs": costs, "best": best},
        claims=claims,
    )


def run_burst_throughput(profile: str = "tiny") -> ExperimentResult:
    """A7: burst-inference throughput of the serial front end (Sec 4.1).

    The paper positions GENERIC as 'fast enough during training and
    burst inference, e.g., when it serves as an IoT gateway'.  Analyze
    the double-buffered load/compute pipeline per application and find
    the link speed where the engine stops starving.
    """
    from repro.hardware.serial import InputPort, burst_analysis, required_baud_for_engine
    from repro.hardware.spec import AppSpec

    port = InputPort(baud_bits_per_s=10e6)
    rows = []
    data = {}
    for name in CLASSIFICATION_DATASETS:
        ds = load_dataset(name, profile)
        spec = AppSpec(dim=2048, n_features=ds.n_features,
                       n_classes=ds.n_classes, use_ids=ds.use_position_ids)
        report = burst_analysis(spec, port)
        baud = required_baud_for_engine(spec)
        data[name] = {
            "inputs_per_s": report.inputs_per_s,
            "bound": report.bound,
            "balance_baud": baud,
        }
        rows.append([name, round(report.inputs_per_s), report.bound,
                     f"{baud / 1e6:.2f} Mbit/s"])

    headers = ["dataset", "inputs/s @10Mbit", "bound", "balanced link"]
    claims = {
        "every application sustains > 1k inputs/s over a 10 Mbit link": all(
            v["inputs_per_s"] > 1000 for v in data.values()
        ),
        "the engine outruns a 10 Mbit link (every app is link-bound)": all(
            v["bound"] == "link" for v in data.values()
        ),
        "a <= 50 Mbit link balances the pipeline everywhere": all(
            v["balance_baud"] <= 50e6 for v in data.values()
        ),
    }
    return ExperimentResult(
        experiment="Ablation A7",
        description="burst-inference throughput of the serial front end",
        headers=headers,
        rows=rows,
        data=data,
        claims=claims,
    )


if __name__ == "__main__":  # pragma: no cover
    for runner in (
        run_id_compression, run_power_gating, run_window_sweep,
        run_divider, run_bitwidth, run_bank_sweep, run_burst_throughput,
    ):
        print(runner().render())
        print()


def _level_cell(task) -> float:
    """One ``(dataset, level scheme)`` accuracy cell (picklable)."""
    name, scheme, profile, dim, seed = task
    ds = load_dataset(name, profile)
    enc = GenericEncoder(
        dim=dim, seed=seed, use_ids=ds.use_position_ids, level_scheme=scheme
    )
    clf = HDClassifier(enc, epochs=5, seed=seed).fit(ds.X_train, ds.y_train)
    return clf.score(ds.X_test, ds.y_test)


def run_level_scheme(
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    seed: int = 5,
    datasets: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = None,
) -> ExperimentResult:
    """A8: distance-preserving vs random level hypervectors.

    The paper's levels preserve scalar distance (Fig. 2a): adjacent bins
    are similar, extremes orthogonal.  Replacing them with independent
    random levels turns every feature categorical.  Numeric datasets
    (where bin distance means something) should prefer the paper's
    scheme; the Markov text benchmark (categorical symbols) should not
    care, or mildly prefer random levels.
    """
    names = list(datasets) if datasets else ["CARDIO", "MNIST", "UCIHAR", "LANG"]
    tasks = [
        (name, scheme, profile, dim, seed)
        for name in names for scheme in ("linear", "random")
    ]
    cells = parallel_map(_level_cell, tasks, n_jobs=n_jobs)
    data = {name: {} for name in names}
    for (name, scheme, *_), acc in zip(tasks, cells):
        data[name][scheme] = acc
    rows = [
        [name, data[name]["linear"], data[name]["random"],
         data[name]["linear"] - data[name]["random"]]
        for name in names
    ]

    headers = ["dataset", "linear levels", "random levels", "delta"]
    numeric = [n for n in names if n != "LANG"]
    claims = {
        "distance-preserving levels win on numeric data (mean delta > 0)": (
            float(np.mean([data[n]["linear"] - data[n]["random"]
                           for n in numeric])) > 0.0
        ),
    }
    if "LANG" in data:
        claims["categorical text barely cares about the scheme"] = (
            abs(data["LANG"]["linear"] - data["LANG"]["random"]) < 0.1
        )
    return ExperimentResult(
        experiment="Ablation A8",
        description="level-hypervector scheme: distance-preserving vs random",
        headers=headers,
        rows=rows,
        data=data,
        claims=claims,
    )


def _convergence_task(task) -> Dict:
    """Per-dataset convergence curve (picklable for fan-out)."""
    name, profile, dim, seed, max_epochs = task
    ds = load_dataset(name, profile)
    enc = GenericEncoder(dim=dim, seed=seed, use_ids=ds.use_position_ids)
    clf = HDClassifier(enc, epochs=max_epochs, seed=seed)
    clf.fit(ds.X_train, ds.y_train)
    curve = clf.report_.train_accuracy_per_epoch
    final = curve[-1]
    saturate = next(
        (i + 1 for i, v in enumerate(curve) if v >= final - 0.005),
        len(curve),
    )
    return {
        "curve": curve,
        "epochs_run": clf.report_.epochs_run,
        "saturation_epoch": saturate,
        "test_accuracy": clf.score(ds.X_test, ds.y_test),
    }


def run_convergence(
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    seed: int = 5,
    max_epochs: int = 20,
    datasets: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = None,
) -> ExperimentResult:
    """A9: retraining convergence (Section 5.2.1's aside).

    The paper trains for a constant 20 epochs but notes "the accuracy of
    most datasets saturates after a few epochs".  Track train accuracy
    per epoch and find the saturation point (within half a point of the
    final value).
    """
    names = list(datasets) if datasets else ["CARDIO", "MNIST", "UCIHAR"]
    tasks = [(name, profile, dim, seed, max_epochs) for name in names]
    results = parallel_map(_convergence_task, tasks, n_jobs=n_jobs)
    rows = []
    data = {}
    for name, entry in zip(names, results):
        data[name] = entry
        rows.append([name, entry["epochs_run"], entry["saturation_epoch"],
                     round(entry["curve"][-1], 3),
                     round(entry["test_accuracy"], 3)])

    headers = ["dataset", "epochs run", "saturates by", "train acc", "test acc"]
    claims = {
        "most datasets saturate within a few epochs (<= 8)": (
            sum(v["saturation_epoch"] <= 8 for v in data.values())
            > len(data) // 2
        ),
        "early stopping keeps every run under the paper's 20-epoch cap": all(
            v["epochs_run"] <= max_epochs for v in data.values()
        ),
    }
    return ExperimentResult(
        experiment="Ablation A9",
        description="retraining convergence over epochs",
        headers=headers,
        rows=rows,
        data={k: {kk: vv for kk, vv in v.items() if kk != "curve"}
              for k, v in data.items()},
        claims=claims,
    )
