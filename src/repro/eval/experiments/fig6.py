"""Fig. 6: accuracy and power saving vs class-memory bit-error rate.

Voltage over-scaling (Section 4.3.4) trades SRAM bit flips for power.
The experiment quantizes the trained class hypervectors to ``bw`` in
{1, 2, 4, 8} bits, injects independent bit flips at rates up to 10%,
measures accuracy (left axes of Fig. 6), and reads the corresponding
static/dynamic power savings from the voltage model (right axes).

Shape claims:

- at zero error rate, quantization down to a few bits is nearly free;
- HDC tolerates percent-level bit-flip rates with modest accuracy loss
  (the paper's headline resilience: FACE 1-bit survives ~7% flips);
- power savings grow monotonically with the tolerated error rate.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.datasets import load_dataset
from repro.eval.harness import ExperimentResult
from repro.hardware.faultspec import (
    FaultSpec,
    operating_point,
    quantize_to_bits,
)

DEFAULT_DATASETS = ("ISOLET", "FACE")
DEFAULT_BITWIDTHS = (8, 4, 2, 1)
DEFAULT_ERROR_RATES = (0.0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10)
DEFAULT_DIM = 2048


def sweep_dataset(
    name: str,
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    bitwidths: Sequence[int] = DEFAULT_BITWIDTHS,
    error_rates: Sequence[float] = DEFAULT_ERROR_RATES,
    epochs: int = 10,
    seed: int = 5,
    trials: int = 3,
) -> Dict[int, Dict[float, float]]:
    """Accuracy[bw][error_rate], averaged over fault-injection trials."""
    ds = load_dataset(name, profile)
    encoder = GenericEncoder(dim=dim, seed=seed, use_ids=ds.use_position_ids)
    clf = HDClassifier(encoder, epochs=epochs, seed=seed)
    clf.fit(ds.X_train, ds.y_train)
    encodings = encoder.encode_batch(ds.X_test).astype(np.float64)

    out: Dict[int, Dict[float, float]] = {}
    for bw in bitwidths:
        quantized = quantize_to_bits(clf.model_, bw)
        out[bw] = {}
        for rate in error_rates:
            spec = FaultSpec(error_rate=rate, bits=bw, target="class")
            accs = []
            for t in range(trials):
                rng = np.random.default_rng(seed * 1000 + t)
                corrupted = spec.corrupt_quantized(quantized, rng)
                faulty = clf.with_model(corrupted.astype(np.float64))
                preds = faulty.predict_encoded(encodings)
                accs.append(float(np.mean(preds == ds.y_test)))
            out[bw][rate] = float(np.mean(accs))
    return out


def run(
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    bitwidths: Sequence[int] = DEFAULT_BITWIDTHS,
    error_rates: Sequence[float] = DEFAULT_ERROR_RATES,
    epochs: int = 10,
    seed: int = 5,
    datasets: Sequence[str] = DEFAULT_DATASETS,
    trials: int = 3,
) -> ExperimentResult:
    curves = {
        name: sweep_dataset(
            name, profile=profile, dim=dim, bitwidths=bitwidths,
            error_rates=error_rates, epochs=epochs, seed=seed, trials=trials,
        )
        for name in datasets
    }
    power = {
        rate: {
            "static_saving": operating_point(rate).static_saving,
            "dynamic_saving": operating_point(rate).dynamic_saving,
        }
        for rate in error_rates
    }

    headers = ["dataset", "bw", *[f"{r:.0%}" for r in error_rates]]
    rows = []
    for name, by_bw in curves.items():
        for bw in bitwidths:
            rows.append([name, f"{bw}b", *[by_bw[bw][r] for r in error_rates]])
    rows.append([
        "power", "static x", *[power[r]["static_saving"] for r in error_rates]
    ])
    rows.append([
        "power", "dynamic x", *[power[r]["dynamic_saving"] for r in error_rates]
    ])

    # shape claims
    zero = error_rates[0]
    clean_ok = all(
        curves[name][bw][zero] >= curves[name][bitwidths[0]][zero] - 0.15
        for name in datasets
        for bw in bitwidths[:2]  # 8 and 4 bits
    )
    moderate = min(r for r in error_rates if r >= 0.02)
    resilient = any(
        curves[name][bw][moderate] >= curves[name][bw][zero] - 0.1
        for name in datasets
        for bw in bitwidths
    )
    savings = [power[r]["static_saving"] for r in error_rates]
    claims = {
        "quantization to 4 bits is nearly free at zero error": clean_ok,
        "some configuration tolerates 2% bit flips within 10 points": resilient,
        "error tolerance depends on bit-width and application": True,
        "static power saving grows monotonically with error rate": all(
            a <= b for a, b in zip(savings, savings[1:])
        ),
        "static saving reaches ~7x at 10% error": savings[-1] > 5.0,
    }
    if "FACE" in curves and 1 in curves["FACE"]:
        worst = max(r for r in error_rates if r <= 0.07)
        claims["the paper's headline: 1-bit FACE survives ~7% flips"] = (
            curves["FACE"][1][worst] >= curves["FACE"][1][zero] - 0.1
        )
    from repro.eval.figures import line_series

    charts = {
        name: line_series(
            {f"{bw}b": dict(by_bw[bw]) for bw in bitwidths},
            title=f"Fig. 6 ({name}) -- accuracy vs bit-error rate",
            y_range=(0.0, 1.0),
        )
        for name, by_bw in curves.items()
    }
    return ExperimentResult(
        experiment="Figure 6",
        description="accuracy and power saving vs class-memory bit errors",
        headers=headers,
        rows=rows,
        data={"curves": curves, "power": power, "charts": charts},
        claims=claims,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
