"""Table 2: mutual-information score of K-means vs HDC clustering.

The paper reports normalized mutual information against ground truth on
Hepta, Tetra, TwoDiamonds, WingNut (FCPS) and Iris.  K-means edges HDC
by 0.031 on average; the shape claim is that the two stay comparable
(HDC within a small margin everywhere, occasionally ahead).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines import KMeans
from repro.core.clustering import HDCluster
from repro.core.encoders import GenericEncoder
from repro.datasets import CLUSTER_DATASETS, make_cluster_dataset
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import normalized_mutual_information

DEFAULT_DIM = 2048


def evaluate_dataset(
    name: str,
    dim: int = DEFAULT_DIM,
    epochs: int = 12,
    seed: int = 7,
    scale: float = 1.0,
) -> Dict[str, float]:
    """NMI of K-means and HDC clustering on one benchmark."""
    X, y_true, k = make_cluster_dataset(name, seed=seed, scale=scale)
    km = KMeans(k=k, seed=seed).fit(X)
    encoder = GenericEncoder(dim=dim, seed=seed, window=min(3, X.shape[1]))
    hdc = HDCluster(encoder, k=k, epochs=epochs, seed=seed).fit(X)
    return {
        "kmeans": normalized_mutual_information(y_true, km.labels_),
        "hdc": normalized_mutual_information(y_true, hdc.labels_),
    }


def run(
    dim: int = DEFAULT_DIM,
    epochs: int = 12,
    seed: int = 7,
    scale: float = 1.0,
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = list(datasets) if datasets else list(CLUSTER_DATASETS)
    table = {
        name: evaluate_dataset(name, dim=dim, epochs=epochs, seed=seed, scale=scale)
        for name in names
    }
    km_mean = float(np.mean([table[n]["kmeans"] for n in names]))
    hdc_mean = float(np.mean([table[n]["hdc"] for n in names]))

    headers = ["dataset", "K-means", "HDC"]
    rows = [[n, table[n]["kmeans"], table[n]["hdc"]] for n in names]
    rows.append(["Mean", km_mean, hdc_mean])

    claims = {
        "HDC clustering is comparable to K-means (mean gap < 0.15)": (
            abs(km_mean - hdc_mean) < 0.15
        ),
        "HDC NMI is meaningful on every dataset (> 0.3)": all(
            table[n]["hdc"] > 0.3 for n in names
        ),
    }
    return ExperimentResult(
        experiment="Table 2",
        description="normalized mutual information of K-means and HDC",
        headers=headers,
        rows=rows,
        data={"table": table, "kmeans_mean": km_mean, "hdc_mean": hdc_mean},
        claims=claims,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
