"""Fig. 10: clustering energy, GENERIC vs K-means on CPU and Raspberry Pi.

Per-input clustering energy on the FCPS shapes + Iris.  The simulated
GENERIC ASIC clusters on-device (Section 4.2.3); the K-means baselines
run through the operation-count device models.

Shape claims (paper Section 5.3):

- GENERIC clustering costs orders of magnitude less energy per input
  than K-means on either conventional device (paper: 17,523x vs the Pi,
  61,400x vs the CPU);
- GENERIC's per-input latency stays competitive (paper: 9.6 us vs
  hundreds of us on the devices).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines import KMeans
from repro.core.encoders import GenericEncoder
from repro.datasets import CLUSTER_DATASETS, make_cluster_dataset
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import geometric_mean
from repro.hardware.accelerator import GenericAccelerator
from repro.hardware.params import DEFAULT_PARAMS
from repro.hardware.spec import AppSpec, Mode
from repro.platforms import DESKTOP_CPU, RASPBERRY_PI
from repro.platforms.device import Workload

DEFAULT_DIM = 1024


def _accelerator_clustering(X: np.ndarray, k: int, dim: int, seed: int):
    """Cluster on the simulated ASIC; per-input energy and time."""
    acc = GenericAccelerator(DEFAULT_PARAMS)
    spec = AppSpec(
        dim=dim,
        n_features=X.shape[1],
        window=min(3, X.shape[1]),
        n_classes=max(2, k),
        mode=Mode.CLUSTER,
    )
    acc.configure(spec)
    enc = GenericEncoder(dim=dim, seed=seed, window=min(3, X.shape[1]))
    enc.fit(X)
    acc.load_tables(
        enc.levels.vectors, enc.id_generator.seed, enc.quantizer.lo, enc.quantizer.hi
    )
    report = acc.cluster(X, k=k, epochs=10)
    return report.energy_per_input_j, report.time_per_input_s


def _kmeans_workload(km: KMeans, n: int, d: int) -> Workload:
    """Per-input K-means workload from the fitted run's iteration count.

    Every Lloyd iteration is a sequential sweep (assign, then update):
    the per-input share of those synchronization points is what the
    measured CPU/Pi numbers of the paper are dominated by.
    """
    profile = km.compute_profile(n, d)
    return Workload(
        flops=profile.train_flops / n,
        bytes_moved=profile.train_bytes / n,
        sync_points=float(max(1, km.iterations_)),
        label="kmeans",
    )


def run(
    dim: int = DEFAULT_DIM,
    seed: int = 7,
    scale: float = 0.5,
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = list(datasets) if datasets else list(CLUSTER_DATASETS)
    rows = []
    ratios_pi, ratios_cpu = [], []
    data: Dict[str, Dict[str, float]] = {}
    for name in names:
        X, _, k = make_cluster_dataset(name, seed=seed, scale=scale)
        g_energy, g_time = _accelerator_clustering(X, k, dim, seed)
        km = KMeans(k=k, seed=seed, n_init=3).fit(X)
        w = _kmeans_workload(km, len(X), X.shape[1])
        pi_energy = RASPBERRY_PI.energy_j(w)
        cpu_energy = DESKTOP_CPU.energy_j(w)
        ratios_pi.append(pi_energy / g_energy)
        ratios_cpu.append(cpu_energy / g_energy)
        data[name] = {
            "generic_j": g_energy,
            "generic_s": g_time,
            "kmeans_cpu_j": cpu_energy,
            "kmeans_rpi_j": pi_energy,
        }
        rows.append([
            name, g_energy * 1e6, cpu_energy * 1e6, pi_energy * 1e6,
            g_time * 1e6,
        ])

    headers = ["dataset", "GENERIC uJ", "K-means CPU uJ", "K-means R-Pi uJ",
               "GENERIC us/input"]
    claims = {
        "GENERIC beats K-means on the Pi by > 100x everywhere": all(
            r > 100 for r in ratios_pi
        ),
        "GENERIC beats K-means on the CPU by > 100x everywhere": all(
            r > 100 for r in ratios_cpu
        ),
        "GENERIC per-input latency stays in the microsecond regime": all(
            data[n]["generic_s"] < 1e-3 for n in names
        ),
    }
    from repro.eval.figures import bar_chart

    chart = bar_chart(
        {
            name: vals["generic_j"] * 1e6
            for name, vals in data.items()
        },
        title="Fig. 10 -- GENERIC clustering energy per input (uJ)",
        unit=" uJ",
        log=False,
    )
    return ExperimentResult(
        experiment="Figure 10",
        description="per-input clustering energy, GENERIC vs K-means",
        headers=headers,
        rows=rows,
        data={
            "per_dataset": data,
            "geo_ratio_rpi": geometric_mean(ratios_pi),
            "geo_ratio_cpu": geometric_mean(ratios_cpu),
            "chart": chart,
        },
        claims=claims,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render(float_fmt="{:.4g}"))
