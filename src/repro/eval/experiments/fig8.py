"""Fig. 8: training energy and execution time, GENERIC vs baselines.

Compares per-input training cost of the simulated GENERIC ASIC against
RF and SVM on the desktop CPU and DNN and HDC (GENERIC encoding) on the
edge GPU, geometric means over the 11 datasets.

Shape claims (paper Section 5.2.1):

- GENERIC improves training energy by orders of magnitude over every
  baseline (paper: 528x over RF, 1257x over DNN, 694x over eGPU-HDC);
- GENERIC trains faster than the eGPU-HDC and DNN baselines;
- RF trains faster than GENERIC (the paper concedes ~12x), but at far
  higher energy;
- GENERIC's average training power stays in the low-mW regime.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.encoders import GenericEncoder, make_encoder
from repro.baselines import MLPClassifier, RandomForestClassifier, SVMClassifier
from repro.core.classifier import HDClassifier
from repro.core.model_io import export_model
from repro.datasets import CLASSIFICATION_DATASETS, load_dataset
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import geometric_mean
from repro.hardware.accelerator import GenericAccelerator
from repro.hardware.params import DEFAULT_PARAMS
from repro.hardware.spec import AppSpec, Mode
from repro.platforms import (
    DESKTOP_CPU,
    EDGE_GPU,
    hdc_training_workload,
    ml_training_workload,
)

DEFAULT_DIM = 1024
DEFAULT_EPOCHS = 5


def _accelerator_training(ds, dim: int, epochs: int, seed: int):
    """Train on the simulated ASIC; per-input energy and time."""
    acc = GenericAccelerator(DEFAULT_PARAMS)
    spec = AppSpec(
        dim=dim,
        n_features=ds.n_features,
        n_classes=max(2, ds.n_classes),
        mode=Mode.TRAIN,
        use_ids=ds.use_position_ids,
    )
    acc.configure(spec)
    # tables come from a software encoder fit (the offline config step)
    enc = GenericEncoder(dim=dim, seed=seed, use_ids=ds.use_position_ids)
    enc.fit(ds.X_train)
    seed_id = enc.id_generator.seed if ds.use_position_ids else None
    acc.load_tables(enc.levels.vectors, seed_id, enc.quantizer.lo, enc.quantizer.hi)
    report = acc.train(ds.X_train, ds.y_train, epochs=epochs, seed=seed)
    return report.energy_per_input_j, report.time_per_input_s, report


def run(
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    epochs: int = DEFAULT_EPOCHS,
    seed: int = 5,
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = list(datasets) if datasets else list(CLASSIFICATION_DATASETS)
    energies: Dict[str, list] = {k: [] for k in
                                 ("GENERIC", "RF (CPU)", "SVM (CPU)",
                                  "DNN (eGPU)", "HDC (eGPU)")}
    times: Dict[str, list] = {k: [] for k in energies}
    powers = []

    for name in names:
        ds = load_dataset(name, profile)
        e, t, rep = _accelerator_training(ds, dim, epochs, seed)
        energies["GENERIC"].append(e)
        times["GENERIC"].append(t)
        powers.append(rep.power.total_j / rep.power.time_s)

        rf = RandomForestClassifier(n_estimators=20, seed=seed).fit(
            ds.X_train[:200], ds.y_train[:200]
        )
        svm = SVMClassifier(kernel="rbf", epochs=20, seed=seed).fit(
            ds.X_train[:200], ds.y_train[:200]
        )
        dnn = MLPClassifier(hidden=(256, 128), epochs=20, seed=seed).fit(
            ds.X_train[:200], ds.y_train[:200]
        )
        n = ds.n_train
        for label, model, device, search in (
            ("RF (CPU)", rf, DESKTOP_CPU, 1.0),
            ("SVM (CPU)", svm, DESKTOP_CPU, 1.0),
            ("DNN (eGPU)", dnn, EDGE_GPU, 5.0),
        ):
            w = ml_training_workload(model.compute_profile(n).scaled(search)).scaled(1.0 / n)
            energies[label].append(device.energy_j(w))
            times[label].append(device.latency_s(w))
        hdc_enc = make_encoder("generic", dim=dim, seed=seed)
        hdc_enc.fit(ds.X_train)
        w = hdc_training_workload(hdc_enc, ds.n_classes, n, epochs=epochs).scaled(1.0 / n)
        energies["HDC (eGPU)"].append(EDGE_GPU.energy_j(w))
        times["HDC (eGPU)"].append(EDGE_GPU.latency_s(w))

    geo_e = {k: geometric_mean(v) for k, v in energies.items()}
    geo_t = {k: geometric_mean(v) for k, v in times.items()}

    headers = ["platform", "energy mJ/input", "time ms/input",
               "energy vs GENERIC", "time vs GENERIC"]
    rows = [
        [k, geo_e[k] * 1e3, geo_t[k] * 1e3,
         geo_e[k] / geo_e["GENERIC"], geo_t[k] / geo_t["GENERIC"]]
        for k in energies
    ]

    claims = {
        "GENERIC training energy beats RF by > 100x": geo_e["RF (CPU)"] / geo_e["GENERIC"] > 100,
        "GENERIC training energy beats DNN by > 100x": geo_e["DNN (eGPU)"] / geo_e["GENERIC"] > 100,
        "GENERIC training energy beats eGPU-HDC by > 100x": geo_e["HDC (eGPU)"] / geo_e["GENERIC"] > 100,
        "GENERIC trains faster than eGPU-HDC": geo_t["HDC (eGPU)"] > geo_t["GENERIC"],
        "RF trains faster than GENERIC (the conceded trade)": geo_t["RF (CPU)"] < geo_t["GENERIC"],
        "average GENERIC training power stays below 10 mW": (
            max(powers) < 10e-3
        ),
    }
    from repro.eval.figures import bar_chart

    chart = bar_chart(
        {k: v * 1e3 for k, v in geo_e.items()},
        title="Fig. 8 -- training energy per input (mJ, log scale)",
        unit=" mJ",
        baseline="GENERIC",
    )
    return ExperimentResult(
        experiment="Figure 8",
        description="per-input training energy and time",
        headers=headers,
        rows=rows,
        data={"energy_j": geo_e, "time_s": geo_t, "train_power_w": powers,
              "chart": chart},
        claims=claims,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render(float_fmt="{:.4g}"))
