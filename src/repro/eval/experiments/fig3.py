"""Fig. 3: energy and execution time of HDC/ML on conventional devices.

Regenerates the two panels: per-input (a) energy and (b) execution time
for training and inference on a Raspberry Pi, a desktop CPU, and an edge
GPU (HDC only on the eGPU, as the paper found conventional ML slower
there than on CPU).  Numbers are geometric means over the 11 datasets,
produced by the operation-count device models.

Shape claims (paper Section 3.3):

- classic ML costs less energy than HDC on every conventional device;
- the eGPU is the most efficient conventional host for HDC (bit-packing),
  beating the Pi by roughly two orders of magnitude;
- GENERIC encoding is less efficient than the other HDC encodings on
  conventional hardware (it touches n hypervectors per window).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines import (
    KNNClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    SVMClassifier,
)
from repro.core.encoders import PAPER_ORDER, make_encoder
from repro.datasets import CLASSIFICATION_DATASETS, load_dataset
from repro.eval.harness import ExperimentResult
from repro.eval.metrics import geometric_mean
from repro.platforms import (
    DESKTOP_CPU,
    EDGE_GPU,
    RASPBERRY_PI,
    hdc_inference_workload,
    hdc_training_workload,
    ml_inference_workload,
    ml_training_workload,
)

HDC_ALGOS = PAPER_ORDER
ML_ALGOS = ("lr", "knn", "mlp", "svm", "rf", "dnn")
DEVICES = {"Raspberry Pi": RASPBERRY_PI, "CPU": DESKTOP_CPU, "eGPU": EDGE_GPU}
DEFAULT_DIM = 2048


def _ml_model(name: str, seed: int):
    if name == "lr":
        return LogisticRegression(epochs=20, seed=seed)
    if name == "knn":
        return KNNClassifier(k=5)
    if name == "mlp":
        return MLPClassifier(epochs=20, seed=seed)
    if name == "svm":
        return SVMClassifier(kernel="rbf", epochs=20, seed=seed)
    if name == "rf":
        return RandomForestClassifier(n_estimators=20, seed=seed)
    if name == "dnn":
        # cost model only needs the profile; reuse an MLP sized like the
        # DNN search winner with the search multiplier applied below
        return MLPClassifier(hidden=(256, 128), epochs=20, seed=seed)
    raise ValueError(f"unknown ML baseline {name!r}")


def run(
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    seed: int = 5,
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = list(datasets) if datasets else list(CLASSIFICATION_DATASETS)

    # accumulate per-dataset, per-algorithm workloads, then geo-mean
    energy: Dict[str, Dict[str, list]] = {
        d: {"train": [], "infer": []} for d in DEVICES
    }
    results: Dict[str, Dict[str, Dict[str, float]]] = {}

    per_algo: Dict[str, Dict[str, Dict[str, list]]] = {}
    for ds_name in names:
        ds = load_dataset(ds_name, profile)
        workloads = {}
        for enc_name in HDC_ALGOS:
            enc = make_encoder(enc_name, dim=dim, seed=seed)
            enc.fit(ds.X_train)
            workloads[enc_name] = {
                "infer": hdc_inference_workload(enc, ds.n_classes),
                "train": hdc_training_workload(
                    enc, ds.n_classes, ds.n_train
                ).scaled(1.0 / ds.n_train),
                "hdc": True,
            }
        for ml_name in ML_ALGOS:
            model = _ml_model(ml_name, seed)
            model.fit(ds.X_train[:200], ds.y_train[:200])
            cp = model.compute_profile(ds.n_train)
            if ml_name == "dnn":
                cp = cp.scaled(5.0)  # architecture-search multiplier
            workloads[ml_name] = {
                "infer": ml_inference_workload(cp, ml_name),
                "train": ml_training_workload(cp, ml_name).scaled(1.0 / ds.n_train),
                "hdc": False,
            }
        for algo, w in workloads.items():
            entry = per_algo.setdefault(
                algo,
                {d: {"train_e": [], "infer_e": [], "train_t": [], "infer_t": []}
                 for d in DEVICES},
            )
            for dev_name, dev in DEVICES.items():
                entry[dev_name]["train_e"].append(dev.energy_j(w["train"]))
                entry[dev_name]["infer_e"].append(dev.energy_j(w["infer"]))
                entry[dev_name]["train_t"].append(dev.latency_s(w["train"]))
                entry[dev_name]["infer_t"].append(dev.latency_s(w["infer"]))

    # geometric means per device/algorithm
    for algo, devs in per_algo.items():
        results[algo] = {}
        for dev_name, vals in devs.items():
            results[algo][dev_name] = {
                "train_energy_j": geometric_mean(vals["train_e"]),
                "infer_energy_j": geometric_mean(vals["infer_e"]),
                "train_time_s": geometric_mean(vals["train_t"]),
                "infer_time_s": geometric_mean(vals["infer_t"]),
            }

    headers = ["algorithm", "device", "train mJ/input", "infer mJ/input",
               "train ms/input", "infer ms/input"]
    rows = []
    for algo in (*HDC_ALGOS, *ML_ALGOS):
        for dev_name in DEVICES:
            r = results[algo][dev_name]
            rows.append([
                algo,
                dev_name,
                r["train_energy_j"] * 1e3,
                r["infer_energy_j"] * 1e3,
                r["train_time_s"] * 1e3,
                r["infer_time_s"] * 1e3,
            ])

    def infer_e(algo, dev):
        return results[algo][dev]["infer_energy_j"]

    claims = {
        "classic ML cheaper than HDC on the Pi": (
            min(infer_e(a, "Raspberry Pi") for a in ("mlp", "svm", "rf", "lr"))
            < min(infer_e(h, "Raspberry Pi") for h in HDC_ALGOS)
        ),
        "eGPU is the most efficient device for GENERIC HDC": (
            infer_e("generic", "eGPU") < infer_e("generic", "CPU")
            and infer_e("generic", "eGPU") < infer_e("generic", "Raspberry Pi")
        ),
        "eGPU beats the Pi on GENERIC inference by > 50x": (
            infer_e("generic", "Raspberry Pi") / infer_e("generic", "eGPU") > 50
        ),
        "GENERIC encoding costs more than level-id on conventional HW": (
            infer_e("generic", "CPU") > infer_e("level-id", "CPU")
        ),
    }
    return ExperimentResult(
        experiment="Figure 3",
        description="energy and execution time on conventional devices",
        headers=headers,
        rows=rows,
        data={"results": results},
        claims=claims,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render(float_fmt="{:.4g}"))
