"""Fig. 7: area, static power and dynamic power breakdown of the ASIC.

Regenerates the three pie-chart breakdowns from the calibrated energy
model and cross-checks the Section 5.1 silicon anchors:

- total area 0.30 mm^2; class memories dominate (~88%), the level
  memory stays under 10% (so "using more levels does not considerably
  affect the area or power");
- worst-case static power 0.25 mW with every bank on; ~0.09 mW typical
  with application-opportunistic gating over the 11-dataset suite;
- typical dynamic power ~1.79 mW during continuous inference.
"""

from __future__ import annotations

from typing import Dict

from repro.core.encoders import DEFAULT_DIM as FULL_DIM
from repro.datasets import CLASSIFICATION_DATASETS, load_dataset
from repro.eval.harness import ExperimentResult
from repro.hardware import controller
from repro.hardware.counters import Counters
from repro.hardware.energy import (
    EnergyModel,
    TYPICAL_DYNAMIC_W,
    TYPICAL_STATIC_W,
    WORST_STATIC_W,
)
from repro.hardware.params import DEFAULT_PARAMS
from repro.hardware.power_gating import plan_for_spec
from repro.hardware.spec import AppSpec


def _suite_specs(profile: str = "bench"):
    """AppSpecs of the 11 applications at the paper's full dimensionality."""
    specs = []
    for name in CLASSIFICATION_DATASETS:
        ds = load_dataset(name, profile)
        specs.append(
            AppSpec(
                dim=FULL_DIM,
                n_features=ds.n_features,
                n_classes=ds.n_classes,
                use_ids=ds.use_position_ids,
            ).validate()
        )
    return specs


def run(profile: str = "bench") -> ExperimentResult:
    model = EnergyModel(DEFAULT_PARAMS)
    specs = _suite_specs(profile)

    area = model.area_mm2()
    worst_static = model.static_power_w()  # no gating

    # typical static: average over the suite with per-app gating plans
    typical_total = 0.0
    for spec in specs:
        gating = plan_for_spec(spec, DEFAULT_PARAMS)
        typical_total += model.total_static_w(gating)
    typical_static = typical_total / len(specs)

    # typical dynamic power: steady inference on the reference app the
    # model was calibrated against (a representative mid-size spec)
    ref = AppSpec(**EnergyModel.REFERENCE_SPEC).validate(DEFAULT_PARAMS)
    counters = Counters()
    for _ in range(20):
        _, c = controller.inference(ref, DEFAULT_PARAMS)
        counters.add(c)
    report = model.report(counters)
    dyn_components: Dict[str, float] = report.dynamic_components
    dyn_total = sum(dyn_components.values())
    dyn_power = report.dynamic_w

    headers = ["component", "area mm2", "area %", "static uW", "dynamic %"]
    rows = []
    for comp in area:
        rows.append([
            comp,
            area[comp],
            100.0 * area[comp] / sum(area.values()),
            worst_static[comp] * 1e6,
            100.0 * dyn_components[comp] / dyn_total,
        ])
    rows.append(["TOTAL", sum(area.values()),
                 100.0, sum(worst_static.values()) * 1e6, 100.0])

    claims = {
        "total area matches the 0.30 mm2 anchor": abs(sum(area.values()) - 0.30) < 1e-9,
        "class memories dominate area (> 80%)": area["class_mem"] / sum(area.values()) > 0.8,
        "level memory under 10% of area and dynamic power": (
            area["level_mem"] / sum(area.values()) < 0.10
            and dyn_components["level_mem"] / dyn_total < 0.12
        ),
        "worst-case static power matches 0.25 mW": (
            abs(sum(worst_static.values()) - WORST_STATIC_W) < 1e-9
        ),
        "typical gated static power lands near 0.09 mW": (
            0.5 * TYPICAL_STATIC_W < typical_static < 2.0 * TYPICAL_STATIC_W
        ),
        "steady-inference dynamic power lands near 1.79 mW": (
            0.5 * TYPICAL_DYNAMIC_W < dyn_power < 2.0 * TYPICAL_DYNAMIC_W
        ),
    }
    return ExperimentResult(
        experiment="Figure 7",
        description="area / static / dynamic breakdown of the GENERIC ASIC",
        headers=headers,
        rows=rows,
        data={
            "area_mm2": area,
            "worst_static_w": worst_static,
            "typical_static_w": typical_static,
            "dynamic_components_j": dyn_components,
            "dynamic_power_w": dyn_power,
        },
        claims=claims,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render(float_fmt="{:.4g}"))
