"""Headline summary: the abstract's claims, checked in one place.

The paper's abstract condenses the evaluation into a handful of
numbers: 0.30 mm^2, 0.09 mW static / 1.97 mW active at 14 nm, +3.5%
accuracy over HDC baselines, +6.5% over ML, 4.1x less energy than the
inference-only accelerator.  This module collects each from the model
layer that owns it (no dataset runs -- the per-artifact benches cover
those) and reports where it is reproduced.
"""

from __future__ import annotations

from repro.eval.harness import ExperimentResult
from repro.hardware import controller
from repro.hardware.counters import Counters
from repro.hardware.energy import (
    EnergyModel,
    TYPICAL_STATIC_W,
    WORST_STATIC_W,
)
from repro.hardware.params import DEFAULT_PARAMS
from repro.hardware.power_gating import plan_for_spec
from repro.hardware.spec import AppSpec
from repro.platforms.published import (
    PUBLISHED_ACCELERATORS,
    generic_lp_reference_energy_14nm,
)


def run(profile: str = "bench") -> ExperimentResult:
    """Assemble the abstract's claims from the calibrated models."""
    model = EnergyModel(DEFAULT_PARAMS)
    ref = AppSpec(**EnergyModel.REFERENCE_SPEC).validate(DEFAULT_PARAMS)

    area = model.total_area_mm2()
    worst_static = model.total_static_w()
    gated_static = model.total_static_w(plan_for_spec(ref, DEFAULT_PARAMS))

    counters = Counters()
    _, c = controller.inference(ref, DEFAULT_PARAMS)
    counters.add(c)
    report = model.report(counters)
    active_power = report.dynamic_w + gated_static

    lp = generic_lp_reference_energy_14nm()
    tiny_hd = PUBLISHED_ACCELERATORS["tiny-hd-date21"].energy_at_node(14)
    datta = PUBLISHED_ACCELERATORS["datta-jetcas19"].energy_at_node(14)
    id_compression = (
        DEFAULT_PARAMS.uncompressed_id_mem_bits // DEFAULT_PARAMS.id_mem_bits
    )

    headers = ["abstract claim", "paper", "this repo", "owned by"]
    rows = [
        ["die area (14 nm)", "0.30 mm2", f"{area:.2f} mm2", "hardware.energy"],
        ["static power (gated)", "0.09 mW", f"{gated_static * 1e3:.2f} mW",
         "hardware.power_gating"],
        ["static power (worst)", "0.25 mW", f"{worst_static * 1e3:.2f} mW",
         "hardware.energy"],
        ["active power", "1.97 mW", f"{active_power * 1e3:.2f} mW",
         "hardware.energy + controller"],
        ["vs inference-only accel [8]", "4.1x", f"{tiny_hd / lp:.1f}x",
         "platforms.published"],
        ["vs trainable accel [10]", "15.7x", f"{datta / lp:.1f}x",
         "platforms.published"],
        ["id-memory compression", "1024x", f"{id_compression}x",
         "core.ids / hardware.params"],
        ["+3.5% over HDC baselines", "Table 1", "bench_table1 (asserted)",
         "eval.experiments.table1"],
        ["+6.5% over ML baselines", "Table 1", "bench_table1 (asserted)",
         "eval.experiments.table1"],
    ]

    claims = {
        "area anchor holds": abs(area - 0.30) < 1e-9,
        "gated static power lands near 0.09 mW": (
            0.5 * TYPICAL_STATIC_W < gated_static < 2.0 * TYPICAL_STATIC_W
        ),
        "worst-case static power anchor holds": (
            abs(worst_static - WORST_STATIC_W) < 1e-12
        ),
        "active power lands near 1.97 mW": 1.0e-3 < active_power < 3.0e-3,
        "4.1x over tiny-HD by construction": abs(tiny_hd / lp - 4.1) < 1e-6,
        "15.7x over Datta by construction": abs(datta / lp - 15.7) < 1e-6,
        "1024x id compression": id_compression == 1024,
    }
    return ExperimentResult(
        experiment="Headline summary",
        description="the abstract's claims, from the calibrated models",
        headers=headers,
        rows=rows,
        data={
            "area_mm2": area,
            "gated_static_w": gated_static,
            "active_power_w": active_power,
            "tiny_hd_ratio": tiny_hd / lp,
            "datta_ratio": datta / lp,
        },
        claims=claims,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render(float_fmt="{:.4g}"))
