"""Fig. 5: accuracy vs dimensions with constant vs updated L2 norms.

On-demand dimension reduction (Section 4.3.3) shrinks the effective
``D_hv`` at inference time.  The cosine denominator must cover only the
surviving dimensions: reusing the full-length ("Constant") norms loses
up to 20.1% accuracy on EEG and 8.5% on ISOLET, while the blocked
sub-norms ("Updated") track the full-dimension accuracy closely until
the dimensionality gets very small.

Shape claims:

- updated norms dominate constant norms at reduced dimensions;
- the worst-case gap is substantial (several accuracy points);
- with updated norms, accuracy degrades gracefully (the 1K-dim point
  stays within a few points of the 4K-dim point, the property GENERIC-LP
  exploits for its 4x energy saving on ISOLET).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.datasets import load_dataset
from repro.eval.harness import ExperimentResult, parallel_map

DEFAULT_DATASETS = ("EEG", "ISOLET")
DEFAULT_DIM = 2048


def _sweep_task(task) -> Dict[str, Dict[int, float]]:
    """Picklable per-dataset sweep for process fan-out."""
    name, profile, dim, epochs, seed = task
    return sweep_dataset(name, profile=profile, dim=dim, epochs=epochs, seed=seed)


def sweep_dataset(
    name: str,
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    dims: Optional[Sequence[int]] = None,
    epochs: int = 10,
    seed: int = 5,
) -> Dict[str, Dict[int, float]]:
    """Accuracy at each reduced dimensionality, both norm policies."""
    ds = load_dataset(name, profile)
    encoder = GenericEncoder(dim=dim, seed=seed, use_ids=ds.use_position_ids)
    clf = HDClassifier(encoder, epochs=epochs, seed=seed)
    clf.fit(ds.X_train, ds.y_train)
    encodings = encoder.encode_batch(ds.X_test).astype(np.float64)
    if dims is None:
        dims = [d for d in (dim // 16, dim // 8, dim // 4, dim // 2, dim) if d >= 128]
    out: Dict[str, Dict[int, float]] = {"constant": {}, "updated": {}}
    for d in dims:
        for policy, constant in (("constant", True), ("updated", False)):
            preds = clf.predict_encoded(encodings, dim=d, constant_norms=constant)
            out[policy][d] = float(np.mean(preds == ds.y_test))
    return out


def run(
    profile: str = "bench",
    dim: int = DEFAULT_DIM,
    epochs: int = 10,
    seed: int = 5,
    datasets: Sequence[str] = DEFAULT_DATASETS,
    n_jobs: Optional[int] = None,
) -> ExperimentResult:
    tasks = [(name, profile, dim, epochs, seed) for name in datasets]
    curves = dict(
        zip(datasets, parallel_map(_sweep_task, tasks, n_jobs=n_jobs))
    )
    headers = ["dataset", "policy", *[
        str(d) for d in sorted(next(iter(curves.values()))["updated"])
    ]]
    rows = []
    for name, c in curves.items():
        for policy in ("constant", "updated"):
            rows.append([name, policy, *[c[policy][d] for d in sorted(c[policy])]])

    gaps = []
    graceful = []
    for name, c in curves.items():
        dims_sorted = sorted(c["updated"])
        reduced = [d for d in dims_sorted if d < dims_sorted[-1]]
        gaps.extend(c["updated"][d] - c["constant"][d] for d in reduced)
        full_acc = c["updated"][dims_sorted[-1]]
        half = dims_sorted[-2] if len(dims_sorted) > 1 else dims_sorted[-1]
        graceful.append(c["updated"][half] >= full_acc - 0.12)

    claims = {
        "updated norms never lose to constant norms (reduced dims)": all(
            g >= -0.02 for g in gaps
        ),
        "constant norms cost several points somewhere (max gap > 3%)": (
            max(gaps) > 0.03
        ),
        "updated-norm accuracy degrades gracefully to half dimensions": all(
            graceful
        ),
    }
    from repro.eval.figures import line_series

    charts = {
        name: line_series(
            {policy: dict(c[policy]) for policy in ("constant", "updated")},
            title=f"Fig. 5 ({name}) -- accuracy vs dimensions",
            y_range=(0.0, 1.0),
        )
        for name, c in curves.items()
    }
    return ExperimentResult(
        experiment="Figure 5",
        description="accuracy vs dimensions, constant vs updated L2 norms",
        headers=headers,
        rows=rows,
        data={"curves": curves, "charts": charts},
        claims=claims,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
