"""One module per paper artifact (see DESIGN.md's experiment index).

Every module exposes ``run(profile=..., seed=...) -> ExperimentResult``
and prints its table when executed as ``python -m
repro.eval.experiments.<name>``.
"""

EXPERIMENTS = (
    "summary",
    "table1",
    "table2",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablations",
)
