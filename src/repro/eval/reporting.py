"""Full-report generation: run every experiment, emit one markdown file.

``python -m repro.eval.reporting --profile tiny --out report.md`` runs
the complete evaluation (all tables, figures, ablations), collects the
rendered tables, charts and shape-claim checklists, and writes a
self-contained markdown report -- the regenerated counterpart of the
paper's Section 5 plus the ablation appendix this repository adds.
"""

from __future__ import annotations

import argparse
import io
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.eval.harness import ExperimentResult

#: (section title, cli runner key) in the paper's presentation order
REPORT_PLAN: Sequence = (
    ("Headline summary — the abstract's claims", "summary"),
    ("Table 1 — accuracy of HDC and ML algorithms", "table1"),
    ("Figure 3 — efficiency on conventional hardware", "fig3"),
    ("Figure 5 — on-demand dimension reduction", "fig5"),
    ("Figure 6 — voltage over-scaling", "fig6"),
    ("Figure 7 — area and power breakdown", "fig7"),
    ("Figure 8 — training evaluation", "fig8"),
    ("Figure 9 — inference evaluation", "fig9"),
    ("Table 2 — clustering quality", "table2"),
    ("Figure 10 — clustering efficiency", "fig10"),
    ("Ablation A1 — id-memory compression", "ablation-ids"),
    ("Ablation A2 — power gating", "ablation-gating"),
    ("Ablation A3 — window length", "ablation-window"),
    ("Ablation A4 — approximate divider", "ablation-divider"),
    ("Ablation A5 — class bit-width", "ablation-bitwidth"),
    ("Ablation A6 — bank count", "ablation-banks"),
    ("Ablation A7 — burst throughput", "ablation-burst"),
    ("Ablation A8 — level scheme", "ablation-levels"),
    ("Ablation A9 — retraining convergence", "ablation-convergence"),
)


def _section_markdown(title: str, result: ExperimentResult, seconds: float) -> str:
    out = io.StringIO()
    out.write(f"## {title}\n\n")
    out.write(f"*{result.experiment}: {result.description}"
              f" — regenerated in {seconds:.1f}s*\n\n")
    out.write("```\n")
    out.write(result.render())
    out.write("\n```\n")
    charts: List[str] = []
    if "chart" in result.data:
        charts.append(result.data["chart"])
    charts.extend(result.data.get("charts", {}).values())
    for chart in charts:
        out.write("\n```\n")
        out.write(chart)
        out.write("\n```\n")
    out.write("\n")
    return out.getvalue()


def generate_report(
    profile: str = "bench",
    sections: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = None,
) -> str:
    """Run the evaluation and return the markdown report text."""
    from repro.eval.cli import _runners

    runners = _runners()
    plan = [
        (title, key)
        for title, key in REPORT_PLAN
        if sections is None or key in sections
    ]
    if not plan:
        raise ValueError("no sections selected")

    parts: List[str] = [
        "# GENERIC reproduction — full evaluation report\n",
        f"\nProfile: `{profile}`.  Every section regenerates one paper "
        "artifact and checks its shape claims.\n\n",
    ]
    summary: Dict[str, bool] = {}
    for title, key in plan:
        start = time.monotonic()
        result = runners[key](profile, n_jobs)
        elapsed = time.monotonic() - start
        summary[title] = result.all_claims_hold
        parts.append(_section_markdown(title, result, elapsed))

    checklist = "\n".join(
        f"- [{'x' if ok else ' '}] {title}" for title, ok in summary.items()
    )
    parts.insert(2, f"## Shape-claim summary\n\n{checklist}\n\n")
    return "".join(parts)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.eval.reporting",
        description="Generate the full markdown evaluation report.",
    )
    parser.add_argument("--profile", default="bench",
                        choices=("tiny", "bench", "full"))
    parser.add_argument("--out", type=Path, default=Path("report.md"))
    parser.add_argument(
        "--sections", nargs="*", default=None,
        help="subset of runner keys (default: everything)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="process fan-out for experiments that support it (-1 = all cores)",
    )
    args = parser.parse_args(argv)
    report = generate_report(profile=args.profile, sections=args.sections,
                             n_jobs=args.jobs)
    args.out.write_text(report)
    print(f"wrote {args.out} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
