"""Evaluation metrics: accuracy, NMI (Table 2), geometric mean (Fig. 3)."""

from __future__ import annotations

from typing import Iterable

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if len(y_true) == 0:
        raise ValueError("accuracy of zero samples is undefined")
    return float(np.mean(y_true == y_pred))


def _entropy(counts: np.ndarray) -> float:
    p = counts[counts > 0] / counts.sum()
    return float(-(p * np.log(p)).sum())


def normalized_mutual_information(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """NMI with arithmetic-mean normalization (Table 2's score).

    Returns 1.0 for identical partitions (up to relabeling) and ~0 for
    independent ones.  Both inputs may use arbitrary label values.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if len(a) == 0:
        raise ValueError("NMI of zero samples is undefined")
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    n_a = ai.max() + 1
    n_b = bi.max() + 1
    contingency = np.zeros((n_a, n_b), dtype=np.float64)
    np.add.at(contingency, (ai, bi), 1.0)
    n = contingency.sum()

    h_a = _entropy(contingency.sum(axis=1))
    h_b = _entropy(contingency.sum(axis=0))
    if h_a == 0.0 and h_b == 0.0:
        return 1.0  # both partitions are single clusters
    pij = contingency / n
    pa = contingency.sum(axis=1) / n
    pb = contingency.sum(axis=0) / n
    outer = pa[:, None] * pb[None, :]
    mask = pij > 0
    mi = float((pij[mask] * np.log(pij[mask] / outer[mask])).sum())
    denom = 0.5 * (h_a + h_b)
    if denom == 0.0:
        return 0.0
    return float(np.clip(mi / denom, 0.0, 1.0))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the aggregation the paper uses across datasets."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("geometric mean of nothing is undefined")
    if (arr <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
