"""Experiment result container and shared harness helpers."""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.eval.tables import format_table
from repro.obs import distributed as obs_distributed
from repro.obs import trace as obs_trace


class _Shipped:
    """A job result plus the span records the worker produced for it."""

    __slots__ = ("result", "spans")

    def __init__(self, result, spans):
        self.result = result
        self.spans = spans


class _TracedJob:
    """Picklable wrapper adding an ``eval.job`` span per mapped item.

    Only installed when tracing is enabled in the submitting process, so
    the untraced ``parallel_map`` path is byte-identical to before.

    The wrapper also fixes the old "process workers trace nothing"
    hole: it pickles the parent's tracing state (``ship=True``) and the
    submitting thread's :class:`~repro.obs.distributed.TraceContext`.
    In a pool *worker* process (detected by pid) it enables tracing
    into a local buffer, runs the job under the shipped context so the
    ``eval.job`` span parents into the submitting trace, and returns a
    :class:`_Shipped` carrying the finished records; the parent unwraps
    and re-emits them (:func:`repro.obs.trace.emit_foreign`) into its
    own sinks and registry.  Thread pools and the serial path hit the
    in-process branch and behave exactly as before.
    """

    __slots__ = ("fn", "task", "ship", "wire_ctx", "parent_pid")

    def __init__(self, fn: Callable, task: str):
        self.fn = fn
        self.task = task
        self.ship = obs_trace.tracing_enabled()
        ctx = obs_distributed.current_context()
        self.wire_ctx = None if ctx is None else ctx.to_wire()
        self.parent_pid = os.getpid()

    def __call__(self, indexed_item):
        index, item = indexed_item
        if os.getpid() == self.parent_pid or not self.ship:
            with obs_trace.span("eval.job", task=self.task, index=index):
                return self.fn(item)
        # pool-worker process: trace locally, ship the records home
        buf = []

        class _Sink:
            def emit(self, record):
                buf.append(record)

        # a fork-started worker inherits the parent's sinks (e.g. its
        # JSONL file handle); drop them so records reach the parent
        # exactly once, via the shipped buffer
        obs_trace.reset()
        sink = _Sink()
        obs_trace.enable_tracing(sink)
        try:
            ctx = obs_distributed.TraceContext.from_wire(self.wire_ctx)
            with obs_distributed.use_context(ctx):
                with obs_trace.span("eval.job", task=self.task,
                                    index=index):
                    result = self.fn(item)
        finally:
            obs_trace.remove_sink(sink)
        return _Shipped(result, buf)


def _unwrap_shipped(out):
    """Re-emit worker-shipped spans; return the bare results."""
    results = []
    for entry in out:
        if isinstance(entry, _Shipped):
            for record in entry.spans:
                # aggregate=True: the worker's registry dies with the
                # pool, so span_seconds/ops must fold in here
                obs_trace.emit_foreign(record, aggregate=True)
            results.append(entry.result)
        else:
            results.append(entry)
    return results


def resolve_jobs(n_jobs: Optional[int] = None) -> int:
    """Normalize an ``n_jobs`` flag: ``None``/``0`` -> 1, ``-1`` -> all cores."""
    if not n_jobs:
        return 1
    n = int(n_jobs)
    if n < 0:
        return max(1, os.cpu_count() or 1)
    return n


def parallel_map(
    fn: Callable,
    items: Iterable,
    n_jobs: Optional[int] = None,
    mode: str = "process",
) -> List:
    """Map ``fn`` over ``items``, optionally fanned out across workers.

    Results come back in input order, and every task is independent (the
    experiment runners seed each cell separately), so the output is
    identical for any ``n_jobs``.  ``mode="process"`` (default) uses a
    process pool -- ``fn`` and the items must then be picklable, i.e.
    module-level functions over plain tuples; ``mode="thread"`` suits
    tasks that release the GIL.  Falls back to a serial map when the
    platform refuses to spawn workers (e.g. sandboxed CI).
    """
    if mode not in ("process", "thread"):
        raise ValueError(f"unknown parallel mode {mode!r}")
    items = list(items)
    jobs = min(resolve_jobs(n_jobs), len(items))
    if obs_trace.tracing_enabled():
        task = getattr(fn, "__name__", type(fn).__name__)
        traced = _TracedJob(fn, task)
        with obs_trace.span(
            "eval.map", task=task, items=len(items), jobs=jobs, mode=mode,
        ):
            if jobs <= 1:
                return [traced(pair) for pair in enumerate(items)]
            pool_cls = (ProcessPoolExecutor if mode == "process"
                        else ThreadPoolExecutor)
            try:
                with pool_cls(max_workers=jobs) as pool:
                    return _unwrap_shipped(
                        list(pool.map(traced, enumerate(items)))
                    )
            except (OSError, PermissionError):
                return [traced(pair) for pair in enumerate(items)]
    if jobs <= 1:
        return [fn(item) for item in items]
    pool_cls = ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
    try:
        with pool_cls(max_workers=jobs) as pool:
            return list(pool.map(fn, items))
    except (OSError, PermissionError):
        return [fn(item) for item in items]


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction.

    ``data`` holds the raw numbers keyed exactly like the paper's rows
    and series; ``claims`` records shape assertions (claim text ->
    bool) so benchmarks can fail loudly when the reproduction drifts.
    """

    experiment: str
    description: str
    headers: Sequence[str]
    rows: List[Sequence]
    data: Dict = field(default_factory=dict)
    claims: Dict[str, bool] = field(default_factory=dict)

    def render(self, float_fmt: str = "{:.3f}") -> str:
        body = format_table(
            self.headers, self.rows, title=f"{self.experiment}: {self.description}",
            float_fmt=float_fmt,
        )
        if self.claims:
            checks = "\n".join(
                f"  [{'ok' if ok else 'FAIL'}] {claim}" for claim, ok in self.claims.items()
            )
            body += f"\n\nshape claims:\n{checks}"
        return body

    def assert_claims(self) -> None:
        """Raise if any recorded shape claim does not hold."""
        failed = [claim for claim, ok in self.claims.items() if not ok]
        if failed:
            raise AssertionError(
                f"{self.experiment}: shape claims failed: {failed}"
            )

    @property
    def all_claims_hold(self) -> bool:
        return all(self.claims.values())

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment": self.experiment,
                "description": self.description,
                "headers": list(self.headers),
                "rows": [list(r) for r in self.rows],
                "data": self.data,
                "claims": self.claims,
            },
            indent=2,
            default=float,
        )
