"""Experiment result container and shared harness helpers."""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.eval.tables import format_table
from repro.obs import trace as obs_trace


class _TracedJob:
    """Picklable wrapper adding an ``eval.job`` span per mapped item.

    Only installed when tracing is enabled in the submitting process, so
    the untraced ``parallel_map`` path is byte-identical to before.  In
    ``mode="process"`` the workers start with tracing disabled, so the
    wrapper no-ops there and the parent records only the outer
    ``eval.map`` span -- spans never cross the process boundary.
    """

    __slots__ = ("fn", "task")

    def __init__(self, fn: Callable, task: str):
        self.fn = fn
        self.task = task

    def __call__(self, indexed_item):
        index, item = indexed_item
        with obs_trace.span("eval.job", task=self.task, index=index):
            return self.fn(item)


def resolve_jobs(n_jobs: Optional[int] = None) -> int:
    """Normalize an ``n_jobs`` flag: ``None``/``0`` -> 1, ``-1`` -> all cores."""
    if not n_jobs:
        return 1
    n = int(n_jobs)
    if n < 0:
        return max(1, os.cpu_count() or 1)
    return n


def parallel_map(
    fn: Callable,
    items: Iterable,
    n_jobs: Optional[int] = None,
    mode: str = "process",
) -> List:
    """Map ``fn`` over ``items``, optionally fanned out across workers.

    Results come back in input order, and every task is independent (the
    experiment runners seed each cell separately), so the output is
    identical for any ``n_jobs``.  ``mode="process"`` (default) uses a
    process pool -- ``fn`` and the items must then be picklable, i.e.
    module-level functions over plain tuples; ``mode="thread"`` suits
    tasks that release the GIL.  Falls back to a serial map when the
    platform refuses to spawn workers (e.g. sandboxed CI).
    """
    if mode not in ("process", "thread"):
        raise ValueError(f"unknown parallel mode {mode!r}")
    items = list(items)
    jobs = min(resolve_jobs(n_jobs), len(items))
    if obs_trace.tracing_enabled():
        task = getattr(fn, "__name__", type(fn).__name__)
        traced = _TracedJob(fn, task)
        with obs_trace.span(
            "eval.map", task=task, items=len(items), jobs=jobs, mode=mode,
        ):
            if jobs <= 1:
                return [traced(pair) for pair in enumerate(items)]
            pool_cls = (ProcessPoolExecutor if mode == "process"
                        else ThreadPoolExecutor)
            try:
                with pool_cls(max_workers=jobs) as pool:
                    return list(pool.map(traced, enumerate(items)))
            except (OSError, PermissionError):
                return [traced(pair) for pair in enumerate(items)]
    if jobs <= 1:
        return [fn(item) for item in items]
    pool_cls = ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
    try:
        with pool_cls(max_workers=jobs) as pool:
            return list(pool.map(fn, items))
    except (OSError, PermissionError):
        return [fn(item) for item in items]


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction.

    ``data`` holds the raw numbers keyed exactly like the paper's rows
    and series; ``claims`` records shape assertions (claim text ->
    bool) so benchmarks can fail loudly when the reproduction drifts.
    """

    experiment: str
    description: str
    headers: Sequence[str]
    rows: List[Sequence]
    data: Dict = field(default_factory=dict)
    claims: Dict[str, bool] = field(default_factory=dict)

    def render(self, float_fmt: str = "{:.3f}") -> str:
        body = format_table(
            self.headers, self.rows, title=f"{self.experiment}: {self.description}",
            float_fmt=float_fmt,
        )
        if self.claims:
            checks = "\n".join(
                f"  [{'ok' if ok else 'FAIL'}] {claim}" for claim, ok in self.claims.items()
            )
            body += f"\n\nshape claims:\n{checks}"
        return body

    def assert_claims(self) -> None:
        """Raise if any recorded shape claim does not hold."""
        failed = [claim for claim, ok in self.claims.items() if not ok]
        if failed:
            raise AssertionError(
                f"{self.experiment}: shape claims failed: {failed}"
            )

    @property
    def all_claims_hold(self) -> bool:
        return all(self.claims.values())

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment": self.experiment,
                "description": self.description,
                "headers": list(self.headers),
                "rows": [list(r) for r in self.rows],
                "data": self.data,
                "claims": self.claims,
            },
            indent=2,
            default=float,
        )
