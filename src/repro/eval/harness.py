"""Experiment result container and shared harness helpers."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.eval.tables import format_table


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction.

    ``data`` holds the raw numbers keyed exactly like the paper's rows
    and series; ``claims`` records shape assertions (claim text ->
    bool) so benchmarks can fail loudly when the reproduction drifts.
    """

    experiment: str
    description: str
    headers: Sequence[str]
    rows: List[Sequence]
    data: Dict = field(default_factory=dict)
    claims: Dict[str, bool] = field(default_factory=dict)

    def render(self, float_fmt: str = "{:.3f}") -> str:
        body = format_table(
            self.headers, self.rows, title=f"{self.experiment}: {self.description}",
            float_fmt=float_fmt,
        )
        if self.claims:
            checks = "\n".join(
                f"  [{'ok' if ok else 'FAIL'}] {claim}" for claim, ok in self.claims.items()
            )
            body += f"\n\nshape claims:\n{checks}"
        return body

    def assert_claims(self) -> None:
        """Raise if any recorded shape claim does not hold."""
        failed = [claim for claim, ok in self.claims.items() if not ok]
        if failed:
            raise AssertionError(
                f"{self.experiment}: shape claims failed: {failed}"
            )

    @property
    def all_claims_hold(self) -> bool:
        return all(self.claims.values())

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment": self.experiment,
                "description": self.description,
                "headers": list(self.headers),
                "rows": [list(r) for r in self.rows],
                "data": self.data,
                "claims": self.claims,
            },
            indent=2,
            default=float,
        )
