"""Command-line entry point for the experiment suite.

Regenerate any paper artifact without touching pytest::

    python -m repro.eval.cli table1 --profile tiny
    python -m repro.eval.cli fig9
    python -m repro.eval.cli all --profile bench --json results/

Each run prints the paper-style table plus the shape-claim checklist;
``--json`` additionally dumps machine-readable results per experiment.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.eval.harness import ExperimentResult


def _runners() -> Dict[str, Callable[..., ExperimentResult]]:
    from repro.eval.experiments import (
        ablations,
        fig3,
        fig5,
        fig6,
        fig7,
        fig8,
        fig9,
        fig10,
        summary,
        table1,
        table2,
    )

    return {
        "summary": lambda profile, jobs: summary.run(profile=profile),
        "table1": lambda profile, jobs: table1.run(profile=profile, n_jobs=jobs),
        "table2": lambda profile, jobs: table2.run(),
        "fig3": lambda profile, jobs: fig3.run(profile=profile),
        "fig5": lambda profile, jobs: fig5.run(profile=profile, n_jobs=jobs),
        "fig6": lambda profile, jobs: fig6.run(profile=profile),
        "fig7": lambda profile, jobs: fig7.run(profile=profile),
        "fig8": lambda profile, jobs: fig8.run(profile=profile),
        "fig9": lambda profile, jobs: fig9.run(profile=profile),
        "fig10": lambda profile, jobs: fig10.run(),
        "ablation-ids": lambda profile, jobs: ablations.run_id_compression(profile=profile),
        "ablation-gating": lambda profile, jobs: ablations.run_power_gating(profile=profile),
        "ablation-window": lambda profile, jobs: ablations.run_window_sweep(
            profile=profile, n_jobs=jobs),
        "ablation-divider": lambda profile, jobs: ablations.run_divider(profile=profile),
        "ablation-bitwidth": lambda profile, jobs: ablations.run_bitwidth(profile=profile),
        "ablation-banks": lambda profile, jobs: ablations.run_bank_sweep(),
        "ablation-burst": lambda profile, jobs: ablations.run_burst_throughput(),
        "ablation-levels": lambda profile, jobs: ablations.run_level_scheme(
            profile=profile, n_jobs=jobs),
        "ablation-convergence": lambda profile, jobs: ablations.run_convergence(
            profile=profile, n_jobs=jobs),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.eval.cli",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*sorted(_runners()), "all"],
        help="which artifact to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--profile",
        default="bench",
        choices=("tiny", "bench", "full"),
        help="dataset size profile (default: bench)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="DIR",
        help="also write <DIR>/<experiment>.json per result",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any shape claim fails",
    )
    parser.add_argument(
        "--jobs", "-j",
        type=int,
        default=None,
        help="process fan-out for experiments that support it "
             "(-1 = all cores; results are identical to serial runs)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="OUT.jsonl",
        help="record repro.obs spans (encode/train/eval stages) to a "
             "JSONL trace; summarize with 'python -m repro.obs report'",
    )
    return parser


def run_one(
    name: str,
    profile: str,
    json_dir: Optional[Path] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    result = _runners()[name](profile, jobs)
    print(result.render())
    print()
    if json_dir is not None:
        json_dir.mkdir(parents=True, exist_ok=True)
        (json_dir / f"{name}.json").write_text(result.to_json())
    return result


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(_runners()) if args.experiment == "all" else [args.experiment]
    from repro.obs import trace as obs_trace

    sink = None
    if args.trace is not None:
        from repro.obs.export import JsonlSink

        sink = JsonlSink(args.trace)
        obs_trace.enable_tracing(sink)
    ok = True
    try:
        for name in names:
            with obs_trace.span("experiment", experiment=name,
                                profile=args.profile):
                result = run_one(name, args.profile, args.json,
                                 jobs=args.jobs)
            ok = ok and result.all_claims_hold
    finally:
        if sink is not None:
            obs_trace.disable_tracing()
            obs_trace.remove_sink(sink)
            sink.close()
            print(f"trace: {sink.emitted} spans -> {args.trace}")
            print(f"       summarize: python -m repro.obs report {args.trace}")
    if args.strict and not ok:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
