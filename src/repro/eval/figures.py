"""Text rendering of figure-like artifacts (bars and series).

The paper's figures are log-scale bar charts (energy per input) and
line plots (accuracy vs dimensions / error rate).  The benches print
tables for exact numbers; these helpers add a terminal-friendly visual
so the regenerated artifact *reads* like the figure:

- :func:`bar_chart` -- horizontal bars, optionally log-scaled (Figs. 3,
  8, 9, 10);
- :func:`line_series` -- multi-series sparkline grid (Figs. 5, 6).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

_BLOCKS = " .:-=+*#%@"


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    if log:
        value, lo, hi = (math.log10(max(v, 1e-30)) for v in (value, lo, hi))
    if hi <= lo:
        return 1.0
    return (value - lo) / (hi - lo)


def bar_chart(
    data: Dict[str, float],
    title: str = "",
    width: int = 50,
    log: bool = True,
    unit: str = "",
    baseline: Optional[str] = None,
) -> str:
    """Horizontal bar chart; values must be positive for log scale.

    ``baseline`` names an entry whose ratio is annotated on every bar
    (e.g. GENERIC-LP in Fig. 9).
    """
    if not data:
        raise ValueError("nothing to plot")
    values = list(data.values())
    if log and any(v <= 0 for v in values):
        raise ValueError("log-scale bars need positive values")
    lo, hi = min(values), max(values)
    label_width = max(len(k) for k in data)
    lines = []
    if title:
        lines.append(title)
    base = data.get(baseline) if baseline else None
    for name, value in data.items():
        frac = _scale(value, lo, hi, log)
        bar = "#" * max(1, int(round(frac * width)))
        note = f" {value:.4g}{unit}"
        if base:
            note += f" ({value / base:.3g}x)"
        lines.append(f"{name.ljust(label_width)} |{bar}{note}")
    return "\n".join(lines)


def line_series(
    series: Dict[str, Dict[float, float]],
    title: str = "",
    width: int = 40,
    y_range: Optional[tuple] = None,
) -> str:
    """One sparkline row per series over a shared x grid.

    ``series`` maps series name -> {x: y}; x values are sorted and
    resampled by nearest-neighbour onto ``width`` columns.
    """
    if not series:
        raise ValueError("nothing to plot")
    all_y = [y for s in series.values() for y in s.values()]
    lo, hi = y_range if y_range else (min(all_y), max(all_y))
    span = (hi - lo) or 1.0
    label_width = max(len(k) for k in series)
    lines = []
    if title:
        lines.append(title)
    for name, points in series.items():
        xs = sorted(points)
        cols = []
        for c in range(width):
            # nearest x for this column
            target = xs[0] + (xs[-1] - xs[0]) * c / max(1, width - 1)
            nearest = min(xs, key=lambda x: abs(x - target))
            frac = (points[nearest] - lo) / span
            level = int(round(frac * (len(_BLOCKS) - 1)))
            cols.append(_BLOCKS[max(0, min(level, len(_BLOCKS) - 1))])
        lines.append(
            f"{name.ljust(label_width)} |{''.join(cols)}| "
            f"{points[xs[0]]:.3g}..{points[xs[-1]]:.3g}"
        )
    lines.append(
        f"{''.ljust(label_width)}  x: {min(min(s) for s in series.values()):.3g}"
        f" .. {max(max(s) for s in series.values()):.3g}, "
        f"y: {lo:.3g} .. {hi:.3g}"
    )
    return "\n".join(lines)
