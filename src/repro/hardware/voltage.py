"""Voltage over-scaling model (paper Section 4.3.4, Fig. 6 right axes).

Scaling the class-memory supply below nominal saves static power
(super-linearly) and dynamic power (quadratically) at the cost of SRAM
bit-flip errors; HDC absorbs a surprising amount of those (Fig. 6 left
axes).  The silicon voltage-vs-error curve the paper cites (Yang &
Murmann, ISQED'17) is not reproducible here, so the model below is a
monotone digitization of Fig. 6's right axes: a table of
(bit-error-rate, supply voltage, static-saving, dynamic-saving) anchor
points with log-linear interpolation in between.  The *resilience*
result is real -- faults are injected into the simulated class memory by
:mod:`repro.hardware.faults` -- only the power mapping is tabulated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

NOMINAL_VDD = 0.90


def __getattr__(name):  # pragma: no cover - thin re-export
    # The unified fault model lives in repro.hardware.faultspec (which
    # builds on this module); re-export it lazily to avoid the cycle.
    if name == "FaultSpec":
        from repro.hardware.faultspec import FaultSpec

        return FaultSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

# (bit error rate, vdd, static power saving x, dynamic power saving x)
_ANCHORS = np.array(
    [
        (0.000, 0.90, 1.0, 1.0),
        (0.001, 0.82, 1.5, 1.20),
        (0.005, 0.76, 2.1, 1.40),
        (0.010, 0.72, 2.6, 1.56),
        (0.020, 0.68, 3.3, 1.75),
        (0.040, 0.64, 4.4, 1.98),
        (0.060, 0.61, 5.3, 2.18),
        (0.080, 0.585, 6.2, 2.37),
        (0.100, 0.565, 7.0, 2.54),
    ]
)
MAX_ERROR_RATE = float(_ANCHORS[-1, 0])


@dataclass(frozen=True)
class VoltagePoint:
    """Operating point of the over-scaled class memory."""

    error_rate: float
    vdd: float
    static_saving: float
    dynamic_saving: float

    @property
    def static_factor(self) -> float:
        """Multiplier applied to class-memory static power (<= 1)."""
        return 1.0 / self.static_saving

    @property
    def dynamic_factor(self) -> float:
        """Multiplier applied to class-memory dynamic energy (<= 1)."""
        return 1.0 / self.dynamic_saving


def operating_point(error_rate: float) -> VoltagePoint:
    """Interpolate the operating point for a target bit-error rate."""
    if not 0.0 <= error_rate <= MAX_ERROR_RATE:
        raise ValueError(
            f"error rate {error_rate} outside modeled range [0, {MAX_ERROR_RATE}]"
        )
    rates = _ANCHORS[:, 0]
    vdd = float(np.interp(error_rate, rates, _ANCHORS[:, 1]))
    static = float(np.interp(error_rate, rates, _ANCHORS[:, 2]))
    dynamic = float(np.interp(error_rate, rates, _ANCHORS[:, 3]))
    return VoltagePoint(
        error_rate=float(error_rate),
        vdd=vdd,
        static_saving=static,
        dynamic_saving=dynamic,
    )


def error_rate_for_voltage(vdd: float) -> float:
    """Inverse map: expected bit-error rate at a given supply voltage."""
    lo = float(_ANCHORS[-1, 1])
    if not lo <= vdd <= NOMINAL_VDD:
        raise ValueError(f"vdd {vdd} outside modeled range [{lo}, {NOMINAL_VDD}]")
    # anchors are monotone decreasing in vdd; flip for np.interp
    vdds = _ANCHORS[::-1, 1]
    rates = _ANCHORS[::-1, 0]
    return float(np.interp(vdd, vdds, rates))
