"""Functional model of the GENERIC encoder pipeline (Fig. 4, left).

The hardware encodes one input at a time: features are fetched from the
feature memory, quantized to a level bin, the level hypervector slides
through the window register stack (reg n..1), the permuted levels are
XOR-folded into a window hypervector, bound with the on-the-fly
generated id (seed row + tmp register), and accumulated into the
encoding.  This model computes the same function vectorized over the
dimension axis per input, and is bit-exact with
:class:`repro.core.encoders.GenericEncoder` given the same tables
(asserted in the tests).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class EncoderUnit:
    """Window encoder with a level table and an optional seed id."""

    def __init__(
        self,
        level_table: np.ndarray,
        seed_id: Optional[np.ndarray],
        window: int,
        lo: np.ndarray,
        hi: np.ndarray,
    ):
        self.level_table = np.asarray(level_table, dtype=np.int8)
        self.num_levels, self.dim = self.level_table.shape
        self.seed_id = None if seed_id is None else np.asarray(seed_id, dtype=np.int8)
        if self.seed_id is not None and len(self.seed_id) != self.dim:
            raise ValueError("seed id length must match the level-table dimension")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Feature-to-bin quantization (the ``bin`` unit of Fig. 4)."""
        span = np.where(self.hi > self.lo, self.hi - self.lo, 1.0)
        scaled = (np.asarray(x, dtype=np.float64) - self.lo) / span
        bins = np.floor(scaled * self.num_levels).astype(np.int64)
        return np.clip(bins, 0, self.num_levels - 1)

    def ids_for(self, n_windows: int) -> np.ndarray:
        """Materialized ids: rho^k(seed) or the binding identity."""
        if self.seed_id is None:
            return np.ones((n_windows, self.dim), dtype=np.int8)
        shifts = np.arange(n_windows) % self.dim
        cols = (np.arange(self.dim)[None, :] - shifts[:, None]) % self.dim
        return self.seed_id[cols]

    def encode(self, x: np.ndarray, dim: Optional[int] = None) -> np.ndarray:
        """Encode one input; optionally stop after ``dim`` dimensions.

        On-demand dimension reduction (Section 4.3.3) simply updates the
        pass counter's exit condition, i.e. the encoding is a prefix.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"the hardware encodes one input at a time, got {x.shape}")
        n_windows = len(x) - self.window + 1
        if n_windows < 1:
            raise ValueError(
                f"input of {len(x)} features shorter than window {self.window}"
            )
        bins = self.quantize(x)
        prod = np.ones((n_windows, self.dim), dtype=np.int8)
        for j in range(self.window):
            lv = self.level_table[bins[j : j + n_windows]]
            if j:
                lv = np.roll(lv, j, axis=1)
            prod *= lv
        bound = prod * self.ids_for(n_windows)
        encoding = bound.sum(axis=0, dtype=np.int32)
        if dim is not None:
            if not 0 < dim <= self.dim:
                raise ValueError(f"reduced dim {dim} out of range (0, {self.dim}]")
            encoding = encoding[:dim]
        return encoding
