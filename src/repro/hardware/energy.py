"""Area/power model calibrated to the paper's 14 nm silicon anchors.

Published anchors (Section 5.1 and Fig. 7):

- total area 0.30 mm^2 at 14 nm, 500 MHz;
- worst-case static power 0.25 mW (all class-memory banks powered);
- typical static power 0.09 mW with application-opportunistic gating;
- typical dynamic power 1.79 mW during operation;
- breakdowns dominated by the class memories (~88% of area, ~91% of
  static power, ~80% of dynamic power), with the level memory under 10%.

The model assigns each component a per-access (or per-cycle) energy such
that a steady-state reference run reproduces the dynamic-power anchor
and its Fig. 7 split, then charges any workload's actual
:class:`~repro.hardware.counters.Counters`.  Static power splits the
0.25 mW worst case by the Fig. 7 static fractions; the class-memory
share scales with the gating plan's active-bank fraction and with the
voltage over-scaling factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.counters import Counters
from repro.hardware.params import DEFAULT_PARAMS, ArchParams
from repro.hardware.power_gating import GatingPlan
from repro.hardware.voltage import VoltagePoint

#: approximate Fig. 7 fractions (class memories dominate everything)
AREA_FRACTIONS = {
    "class_mem": 0.884,
    "level_mem": 0.073,
    "feature_mem": 0.015,
    "base_mem": 0.010,  # norm2 + score memories
    "datapath": 0.012,
    "control": 0.006,
}
STATIC_FRACTIONS = {
    "class_mem": 0.912,
    "level_mem": 0.050,
    "feature_mem": 0.012,
    "base_mem": 0.008,
    "datapath": 0.012,
    "control": 0.006,
}
DYNAMIC_FRACTIONS = {
    "class_mem": 0.799,
    "level_mem": 0.096,
    "feature_mem": 0.007,
    "base_mem": 0.005,
    "datapath": 0.085,
    "control": 0.008,
}

#: silicon anchors from Section 5.1
TOTAL_AREA_MM2 = 0.30
WORST_STATIC_W = 0.25e-3
TYPICAL_STATIC_W = 0.09e-3
TYPICAL_DYNAMIC_W = 1.79e-3


@dataclass(frozen=True)
class PowerReport:
    """Static power (W), dynamic energy (J) and their component splits."""

    static_w: float
    dynamic_j: float
    time_s: float
    static_components: Dict[str, float] = field(default_factory=dict)
    dynamic_components: Dict[str, float] = field(default_factory=dict)

    @property
    def static_j(self) -> float:
        return self.static_w * self.time_s

    @property
    def total_j(self) -> float:
        return self.static_j + self.dynamic_j

    @property
    def dynamic_w(self) -> float:
        return self.dynamic_j / self.time_s if self.time_s > 0 else 0.0


class EnergyModel:
    """Charge counters with calibrated per-access energies.

    Calibration: a *reference application* (a representative mid-size
    spec at the paper's full dimensionality) is pushed through the
    controller cycle model; the per-access energies are solved so that
    this reference run draws exactly the 1.79 mW dynamic anchor split by
    the Fig. 7 fractions.  Every other workload then scales with its own
    counters.
    """

    #: representative application used to anchor the dynamic calibration
    REFERENCE_SPEC = dict(dim=4096, n_features=200, n_classes=10)

    def __init__(self, params: ArchParams = DEFAULT_PARAMS):
        self.params = params
        f = params.clock_hz
        dyn = TYPICAL_DYNAMIC_W

        from repro.hardware import controller  # deferred: avoids cycle
        from repro.hardware.spec import AppSpec

        ref = AppSpec(**self.REFERENCE_SPEC).validate(params)
        _, c = controller.inference(ref, params)
        cycles = max(1, c.cycles)

        def rate(count: int) -> float:
            return max(count, 1) / cycles

        self.e_class_word = DYNAMIC_FRACTIONS["class_mem"] * dyn / (
            rate(c.class_reads + c.class_writes) * f
        )
        self.e_level_read = DYNAMIC_FRACTIONS["level_mem"] * dyn / (
            rate(c.level_reads) * f
        )
        self.e_feature_access = DYNAMIC_FRACTIONS["feature_mem"] * dyn / (
            rate(c.feature_reads + c.feature_writes) * f
        )
        self.e_datapath_cycle = DYNAMIC_FRACTIONS["datapath"] * dyn / (
            rate(c.datapath_cycles) * f
        )
        base_accesses = c.norm2_reads + c.norm2_writes + c.score_reads + c.score_writes
        self.e_base_access = DYNAMIC_FRACTIONS["base_mem"] * dyn / (
            rate(base_accesses) * f
        )
        # control share covers the sequencer plus the tiny seed-id row
        self.e_seed_read = 0.2 * DYNAMIC_FRACTIONS["control"] * dyn / (
            rate(c.seed_reads) * f
        )
        self.e_control_cycle = 0.8 * DYNAMIC_FRACTIONS["control"] * dyn / f

    # -- area ---------------------------------------------------------------

    def area_mm2(self) -> Dict[str, float]:
        """Component areas; values sum to the 0.30 mm^2 anchor."""
        return {k: v * TOTAL_AREA_MM2 for k, v in AREA_FRACTIONS.items()}

    def total_area_mm2(self) -> float:
        return TOTAL_AREA_MM2

    # -- static power ---------------------------------------------------------

    def static_power_w(
        self,
        gating: Optional[GatingPlan] = None,
        vos: Optional[VoltagePoint] = None,
    ) -> Dict[str, float]:
        """Component static power, honoring gating and voltage scaling."""
        split = {k: v * WORST_STATIC_W for k, v in STATIC_FRACTIONS.items()}
        if gating is not None:
            split["class_mem"] *= gating.active_fraction
        if vos is not None:
            split["class_mem"] *= vos.static_factor
        return split

    def total_static_w(
        self,
        gating: Optional[GatingPlan] = None,
        vos: Optional[VoltagePoint] = None,
    ) -> float:
        return sum(self.static_power_w(gating, vos).values())

    # -- dynamic energy ---------------------------------------------------------

    def dynamic_energy_j(
        self,
        counters: Counters,
        bitwidth: int = 16,
        vos: Optional[VoltagePoint] = None,
    ) -> Dict[str, float]:
        """Component dynamic energy for a run's counters.

        ``bitwidth`` scales class-memory and datapath switching: masked
        ``bw``-bit words toggle proportionally fewer bit lines
        (Section 4.3.4: "quantized elements also reduce the dynamic power
        of dot-product").
        """
        bw_factor = bitwidth / self.params.class_word_bits
        class_j = (counters.class_reads + counters.class_writes) * (
            self.e_class_word * bw_factor
        )
        if vos is not None:
            class_j *= vos.dynamic_factor
        return {
            "class_mem": class_j,
            "level_mem": counters.level_reads * self.e_level_read,
            "feature_mem": (counters.feature_reads + counters.feature_writes)
            * self.e_feature_access,
            "base_mem": (
                counters.norm2_reads
                + counters.norm2_writes
                + counters.score_reads
                + counters.score_writes
            )
            * self.e_base_access,
            "datapath": counters.datapath_cycles
            * self.e_datapath_cycle
            * (0.5 + 0.5 * bw_factor),
            "control": counters.cycles * self.e_control_cycle
            + counters.seed_reads * self.e_seed_read,
        }

    def report(
        self,
        counters: Counters,
        gating: Optional[GatingPlan] = None,
        vos: Optional[VoltagePoint] = None,
        bitwidth: int = 16,
    ) -> PowerReport:
        """Full power report for a run."""
        time_s = counters.cycles / self.params.clock_hz
        static = self.static_power_w(gating, vos)
        dynamic = self.dynamic_energy_j(counters, bitwidth=bitwidth, vos=vos)
        return PowerReport(
            static_w=sum(static.values()),
            dynamic_j=sum(dynamic.values()),
            time_s=time_s,
            static_components=static,
            dynamic_components=dynamic,
        )
