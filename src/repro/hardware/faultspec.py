"""One fault model for the hardware sim and the serving chaos harness.

PR 1-4 growth left two disjoint fault surfaces: the bit-flip machinery
of :mod:`repro.hardware.faults` (quantize + independent per-bit flips,
Fig. 6 left axes) and the voltage over-scaling table of
:mod:`repro.hardware.voltage` (error rate <-> vdd <-> power saving,
Fig. 6 right axes).  :class:`FaultSpec` is the single description both
consumers share -- the Fig. 6 experiment sweeps it over the simulated
class memory, and :class:`repro.serve.resilience.ChaosPolicy` injects
it into a live :class:`~repro.serve.server.InferenceServer` -- so
"what fault is being injected" is one value, not two conventions.

Both legacy modules are re-exported here; new code should import from
this module::

    from repro.hardware.faultspec import FaultSpec, operating_point

A spec is frozen (hashable, usable as a dict key in sweep reports) and
holds:

- ``error_rate`` -- independent per-bit flip probability;
- ``bits``      -- stored word width of the target memory;
- ``target``    -- which memory: ``"class"`` (associative search),
  ``"level"`` or ``"id"`` (encoder tables);
- ``vdd``      -- optional VOS supply point; when given without an
  explicit ``error_rate`` the rate is derived from the voltage model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

# re-exported: the two legacy fault surfaces now route through here
from repro.hardware.faults import (  # noqa: F401
    corrupt_model,
    inject_bitflips,
    quantize_to_bits,
)
from repro.hardware.voltage import (  # noqa: F401
    MAX_ERROR_RATE,
    NOMINAL_VDD,
    VoltagePoint,
    error_rate_for_voltage,
    operating_point,
)

__all__ = [
    "FaultSpec",
    "FAULT_TARGETS",
    # legacy re-exports
    "corrupt_model",
    "inject_bitflips",
    "quantize_to_bits",
    "MAX_ERROR_RATE",
    "NOMINAL_VDD",
    "VoltagePoint",
    "error_rate_for_voltage",
    "operating_point",
]

FAULT_TARGETS = ("class", "level", "id")


@dataclass(frozen=True)
class FaultSpec:
    """A single memory-fault description (rate, width, target, voltage)."""

    error_rate: float = 0.0
    bits: int = 8
    target: str = "class"
    vdd: Optional[float] = field(default=None)

    def __post_init__(self) -> None:
        if self.target not in FAULT_TARGETS:
            raise ValueError(
                f"unknown fault target {self.target!r}; "
                f"choose from {FAULT_TARGETS}"
            )
        if self.bits < 1:
            raise ValueError(f"bit-width must be >= 1, got {self.bits}")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError(
                f"error rate must be in [0, 1], got {self.error_rate}"
            )

    # -- construction --------------------------------------------------------

    @classmethod
    def from_voltage(cls, vdd: float, bits: int = 8,
                     target: str = "class") -> "FaultSpec":
        """Spec for running the target memory at supply ``vdd``.

        The bit-error rate is the voltage model's inverse map
        (:func:`~repro.hardware.voltage.error_rate_for_voltage`).
        """
        return cls(error_rate=error_rate_for_voltage(vdd), bits=bits,
                   target=target, vdd=vdd)

    # -- the VOS side --------------------------------------------------------

    @property
    def voltage_point(self) -> Optional[VoltagePoint]:
        """The VOS operating point, or ``None`` outside the modeled range.

        When the spec was built :meth:`from_voltage` this inverts back to
        (approximately) the requested ``vdd``; otherwise it is the supply
        at which SRAM would exhibit this spec's error rate.
        """
        if self.error_rate > MAX_ERROR_RATE:
            return None
        return operating_point(self.error_rate)

    # -- the bit-flip side ---------------------------------------------------

    @property
    def active(self) -> bool:
        return self.error_rate > 0.0

    def corrupt_matrix(self, matrix: np.ndarray,
                       rng: np.random.Generator) -> np.ndarray:
        """Quantize ``matrix`` to ``bits`` and flip stored bits.

        Exactly the legacy :func:`~repro.hardware.faults.corrupt_model`
        pipeline (same rng stream), returned as floats for scoring.
        """
        return corrupt_model(matrix, self.bits, self.error_rate, rng)

    def corrupt_quantized(self, quantized: np.ndarray,
                          rng: np.random.Generator) -> np.ndarray:
        """Flip bits of an already-quantized integer matrix."""
        return inject_bitflips(quantized, self.bits, self.error_rate, rng)

    def corrupt_words(self, words: np.ndarray,
                      rng: np.random.Generator) -> np.ndarray:
        """Flip bits of a packed uint64 hypervector memory.

        The 1-bit binary analogue of :meth:`corrupt_matrix`: every one
        of the 64 stored bits per word flips independently with
        ``error_rate`` (``bits`` does not apply -- packed models store
        one bit per dimension).
        """
        words = np.asarray(words, dtype=np.uint64)
        if self.error_rate == 0.0:
            return words.copy()
        flip = np.zeros(words.shape, dtype=np.uint64)
        for b in range(64):
            hits = rng.random(words.shape) < self.error_rate
            flip |= hits.astype(np.uint64) << np.uint64(b)
        return words ^ flip

    def corrupt_classifier(self, clf, rng: np.random.Generator):
        """A ``with_model`` clone of ``clf`` scored on faulted memory."""
        return clf.with_model(self.corrupt_matrix(clf.model_, rng))

    def describe(self) -> dict:
        """JSON-serializable summary (used by reports and benches)."""
        point = self.voltage_point
        return {
            "error_rate": self.error_rate,
            "bits": self.bits,
            "target": self.target,
            "vdd": point.vdd if point is not None else self.vdd,
            "static_saving": (point.static_saving
                              if point is not None else None),
            "dynamic_saving": (point.dynamic_saving
                               if point is not None else None),
        }
