"""Architectural constants of the GENERIC ASIC (paper Sections 4.1, 5.1).

The numbers below are the paper's published configuration:

- ``m = 16`` lanes: each pass over the stored input produces 16 encoding
  dimensions, and 16 class memories serve 16 consecutive dimensions per
  cycle to the dot-product pipeline;
- level memory: 64 levels x 4 K bits = 32 KB;
- feature (input) memory: 1024 rows x 8 bits;
- class memories: 16 x (8 K rows x 16 bits) = 256 KB total, enough for
  ``D_hv = 4K`` x 32 classes at 16-bit words, banked 4 ways for the
  application-opportunistic power gating of Section 4.3.2;
- id memory: one 4 Kbit seed row (the 1024x compression of Section 4.3.1);
- norm2 memory: squared L2 norms at 128-dimension granularity (2 KB for
  32 classes);
- 500 MHz clock at the 14 nm node.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArchParams:
    """Immutable architecture configuration."""

    lanes: int = 16  # m: dimensions produced / searched per cycle
    clock_hz: float = 500e6
    technology_nm: int = 14

    num_levels: int = 64
    max_dim: int = 4096  # D_hv at the default 32-class layout
    max_classes: int = 32
    max_features: int = 1024
    feature_bits: int = 8
    class_word_bits: int = 16
    class_mem_rows: int = 8192  # rows per class memory
    class_banks: int = 4  # power-gating banks per class memory
    norm_block: int = 128  # sub-norm granularity (Section 4.3.3)
    retrain_update_passes: int = 3  # paper: each update takes 3 x D_hv/m cycles

    # pipeline fill cycles charged once per pass over the input
    pass_overhead_cycles: int = 4

    @property
    def class_capacity_words(self) -> int:
        """Total class-memory capacity in 16-bit words (D_hv x classes)."""
        return self.lanes * self.class_mem_rows

    @property
    def rows_per_bank(self) -> int:
        return self.class_mem_rows // self.class_banks

    @property
    def level_mem_bits(self) -> int:
        return self.num_levels * self.max_dim

    @property
    def id_mem_bits(self) -> int:
        """Compressed id memory: a single seed row (Section 4.3.1)."""
        return self.max_dim

    @property
    def uncompressed_id_mem_bits(self) -> int:
        """What a naive id memory would need (1 K ids x D_hv)."""
        return self.max_features * self.max_dim

    @property
    def feature_mem_bits(self) -> int:
        return self.max_features * self.feature_bits

    @property
    def norm2_mem_bits(self) -> int:
        # one 32-bit word per class per 128-dim block
        return self.max_classes * (self.max_dim // self.norm_block) * 32

    def validate(self) -> None:
        if self.max_dim % self.lanes:
            raise ValueError("max_dim must be a multiple of the lane count")
        if self.class_mem_rows % self.class_banks:
            raise ValueError("class_mem_rows must split evenly into banks")
        if self.max_dim % self.norm_block:
            raise ValueError("max_dim must be a multiple of norm_block")


DEFAULT_PARAMS = ArchParams()
