"""Application spec registers (the ``spec`` port of Fig. 4).

GENERIC is programmed per application through a handful of registers
rather than an instruction set: hypervector dimensionality ``D_hv``,
features per input ``d``, window length ``n``, number of classes or
centroids ``n_C``, effective class bit-width ``bw``, and the mode
(training, inference, or clustering).  The class-memory layout trades
``D_hv`` against ``n_C``: with the default geometry, ``D_hv x n_C`` may
not exceed 4K x 32 words (e.g. 8K dimensions for 16 classes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.hardware.params import DEFAULT_PARAMS, ArchParams

VALID_BITWIDTHS = (1, 2, 4, 8, 16)


class Mode(enum.Enum):
    """Operating mode selected through the spec port."""

    TRAIN = "train"
    INFERENCE = "inference"
    CLUSTER = "cluster"


@dataclass(frozen=True)
class AppSpec:
    """Per-application configuration loaded through the spec port."""

    dim: int  # D_hv: hypervector dimensionality in use
    n_features: int  # d: elements per input
    window: int = 3  # n: window length of the GENERIC encoding
    n_classes: int = 2  # n_C: classes (classification) or centroids (clustering)
    bitwidth: int = 16  # bw: effective class bit-width (masked, Section 4.3.4)
    mode: Mode = Mode.INFERENCE
    use_ids: bool = True  # global binding; off for order-free apps (LANG)

    def validate(self, params: ArchParams = DEFAULT_PARAMS) -> "AppSpec":
        """Check the spec against the architecture; returns self for chaining."""
        if self.dim <= 0 or self.dim % params.lanes:
            raise ValueError(
                f"D_hv={self.dim} must be a positive multiple of m={params.lanes}"
            )
        if self.dim % params.norm_block:
            raise ValueError(
                f"D_hv={self.dim} must be a multiple of the norm block "
                f"({params.norm_block}) for on-demand dimension reduction"
            )
        if not 1 <= self.n_features <= params.max_features:
            raise ValueError(
                f"d={self.n_features} outside 1..{params.max_features} "
                "(feature memory rows)"
            )
        if not 1 <= self.window <= self.n_features:
            raise ValueError(
                f"window n={self.window} must be in 1..d ({self.n_features})"
            )
        if not 1 <= self.n_classes <= params.max_classes:
            raise ValueError(
                f"n_C={self.n_classes} outside 1..{params.max_classes}"
            )
        if self.dim * self.n_classes > params.class_capacity_words:
            raise ValueError(
                f"D_hv x n_C = {self.dim * self.n_classes} words exceeds the "
                f"class memory capacity ({params.class_capacity_words}); "
                "trade dimensions for classes (Section 4.1)"
            )
        if self.bitwidth not in VALID_BITWIDTHS:
            raise ValueError(
                f"bw={self.bitwidth} not in {VALID_BITWIDTHS}"
            )
        return self

    @property
    def n_windows(self) -> int:
        return self.n_features - self.window + 1

    def with_dim(self, dim: int) -> "AppSpec":
        """On-demand dimension reduction: same app, fewer dimensions."""
        return replace(self, dim=dim)

    def with_mode(self, mode: Mode) -> "AppSpec":
        return replace(self, mode=mode)

    def class_rows_used(self, params: ArchParams = DEFAULT_PARAMS) -> int:
        """Rows occupied in each of the m class memories (striped layout)."""
        return (self.dim // params.lanes) * self.n_classes
