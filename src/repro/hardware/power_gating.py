"""Application-opportunistic power gating (paper Section 4.3.2).

The class layout stripes dimensions across the ``m`` class memories so an
application with ``n_C`` classes at ``D_hv`` dimensions always occupies
the *first* ``n_C * D_hv / (32 * 4K)`` fraction of every class memory.
Unused banks (4 per memory in the shipped configuration) are therefore a
suffix and can be permanently gated for the application: no wake-up
latency or energy is ever paid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import math

from repro.hardware.params import DEFAULT_PARAMS, ArchParams
from repro.hardware.spec import AppSpec


@dataclass(frozen=True)
class GatingPlan:
    """Which fraction of the class-memory banks stays powered."""

    banks_total: int
    banks_active: int
    rows_used: int
    rows_total: int

    @property
    def occupancy(self) -> float:
        """Fraction of class-memory rows the application fills."""
        return self.rows_used / self.rows_total

    @property
    def active_fraction(self) -> float:
        """Fraction of banks (hence class-memory leakage) still powered."""
        return self.banks_active / self.banks_total

    @property
    def leakage_saving(self) -> float:
        """Fraction of class-memory static power removed by gating."""
        return 1.0 - self.active_fraction


def plan_for_spec(spec: AppSpec, params: ArchParams = DEFAULT_PARAMS) -> GatingPlan:
    """Gating decision for one application spec."""
    rows_total = params.class_mem_rows
    rows_used = spec.class_rows_used(params)
    if rows_used > rows_total:
        raise ValueError(
            f"spec needs {rows_used} class rows, memory has {rows_total}"
        )
    banks_active = max(1, math.ceil(rows_used / params.rows_per_bank))
    return GatingPlan(
        banks_total=params.class_banks,
        banks_active=banks_active,
        rows_used=rows_used,
        rows_total=rows_total,
    )


def average_active_banks(
    specs: Iterable[AppSpec], params: ArchParams = DEFAULT_PARAMS
) -> float:
    """Mean active banks over a suite of applications (paper: 1.6 of 4)."""
    plans = [plan_for_spec(s, params) for s in specs]
    if not plans:
        raise ValueError("need at least one spec")
    return sum(p.banks_active for p in plans) / len(plans)


def gating_area_overhead(banks: int) -> float:
    """Relative class-memory area overhead of bank partitioning.

    The paper reports 20% for 4 banks and 55% for 8; interpolate in
    between with a linear per-bank cost anchored at those two points.
    """
    if banks < 1:
        raise ValueError("banks must be >= 1")
    if banks == 1:
        return 0.0
    # anchored: 4 banks -> 0.20, 8 banks -> 0.55
    return max(0.0, 0.20 + (banks - 4) * (0.55 - 0.20) / 4)
