"""Cycle model of the GENERIC controller (paper Section 4).

The controller orchestrates passes over the stored input: each pass
produces ``m`` encoding dimensions while the search unit consumes the
previous pass's dimensions, so encoding and dot-product are pipelined.
The formulas below follow the dataflow of Fig. 4:

- **input load**: one serial element per cycle into the feature memory;
- **pass**: ``d`` feature reads drive the window pipeline; reading the
  ``n_C`` class rows (one per cycle from each of the ``m`` class
  memories) overlaps, so a pass costs ``max(d, n_C)`` plus a small
  pipeline-fill overhead;
- **finalize**: the accumulated scores are normalized class-by-class
  through the Mitchell divider (reads the blocked norm2 rows);
- **training init**: accumulating the encoded dimensions into the label's
  class row adds a read-modify-write per pass;
- **retraining update**: the paper states each class update costs
  ``3 x D_hv / m`` cycles (read class row, read temporary encoding row,
  write back); a misprediction updates two classes;
- **clustering**: inference-style search plus a temporary store of the
  encoding and a copy-centroid read-modify-write for the winner.

Each function returns ``(cycles, Counters)`` so the energy model can
charge per-access energies.
"""

from __future__ import annotations

from typing import Tuple

from repro.hardware.counters import Counters
from repro.hardware.params import ArchParams
from repro.hardware.spec import AppSpec


def _passes(spec: AppSpec, params: ArchParams) -> int:
    return spec.dim // params.lanes


def load_input(spec: AppSpec, params: ArchParams) -> Tuple[int, Counters]:
    """Serial input load: one element per cycle into the feature memory."""
    c = Counters(
        cycles=spec.n_features,
        feature_writes=spec.n_features,
    )
    return c.cycles, c


def encode_pass(spec: AppSpec, params: ArchParams, with_search: bool) -> Tuple[int, Counters]:
    """One pass producing ``m`` dimensions, optionally overlapped with search."""
    d = spec.n_features
    n_c = spec.n_classes
    busy = max(d, n_c) if with_search else d
    cycles = busy + params.pass_overhead_cycles
    c = Counters(
        cycles=cycles,
        datapath_cycles=busy,
        feature_reads=d,
        level_reads=d,
        # the tmp register refills from the seed-id row every m windows
        seed_reads=-(-spec.n_windows // params.lanes) if spec.use_ids else 0,
    )
    if with_search:
        c.class_reads += n_c * params.lanes  # n_C rows from each of m memories
        c.score_reads += n_c  # accumulate partial dot products
        c.score_writes += n_c
    return cycles, c


def finalize_scores(spec: AppSpec, params: ArchParams) -> Tuple[int, Counters]:
    """Normalize the n_C scores through the Mitchell divider."""
    blocks = spec.dim // params.norm_block
    c = Counters(
        cycles=spec.n_classes,
        datapath_cycles=spec.n_classes,
        norm2_reads=spec.n_classes * blocks,
        score_reads=spec.n_classes,
    )
    return c.cycles, c


def inference(spec: AppSpec, params: ArchParams) -> Tuple[int, Counters]:
    """Full inference on one input: load, passes with search, finalize."""
    total = Counters()
    cycles, c = load_input(spec, params)
    total.add(c)
    n_passes = _passes(spec, params)
    _, per_pass = encode_pass(spec, params, with_search=True)
    for f, v in per_pass.as_dict().items():
        setattr(total, f, getattr(total, f) + v * n_passes)
    _, fin = finalize_scores(spec, params)
    total.add(fin)
    total.inputs_processed = 1
    return total.cycles, total


def train_init(spec: AppSpec, params: ArchParams) -> Tuple[int, Counters]:
    """Initialization: encode and accumulate into the label's class rows."""
    total = Counters()
    _, c = load_input(spec, params)
    total.add(c)
    n_passes = _passes(spec, params)
    _, per_pass = encode_pass(spec, params, with_search=False)
    for f, v in per_pass.as_dict().items():
        setattr(total, f, getattr(total, f) + v * n_passes)
    # read-modify-write of one class row per pass
    total.cycles += 2 * n_passes
    total.class_reads += n_passes * params.lanes
    total.class_writes += n_passes * params.lanes
    total.inputs_processed = 1
    return total.cycles, total


def retrain_sample(
    spec: AppSpec, params: ArchParams, mispredicted: bool
) -> Tuple[int, Counters]:
    """One retraining sample: inference + temp store (+ update on a miss)."""
    total = Counters()
    _, c = inference(spec, params)
    total.add(c)
    n_passes = _passes(spec, params)
    # the encoding is stored in temporary class-memory rows while scoring
    total.class_writes += n_passes * params.lanes
    if mispredicted:
        update_cycles = params.retrain_update_passes * n_passes
        blocks = spec.dim // params.norm_block
        for _ in range(2):  # subtract from wrong class, add to right class
            total.cycles += update_cycles
            total.class_reads += 2 * n_passes * params.lanes  # class + temp rows
            total.class_writes += n_passes * params.lanes
            total.norm2_writes += blocks
        total.model_updates = 1
    return total.cycles, total


def cluster_sample(spec: AppSpec, params: ArchParams) -> Tuple[int, Counters]:
    """One clustering sample: similarity search + copy-centroid update."""
    total = Counters()
    _, c = inference(spec, params)
    total.add(c)
    n_passes = _passes(spec, params)
    # temp store of the encoding during scoring
    total.class_writes += n_passes * params.lanes
    # add the stored encoding into the winner's copy centroid
    total.cycles += 2 * n_passes
    total.class_reads += 2 * n_passes * params.lanes
    total.class_writes += n_passes * params.lanes
    total.model_updates = 1
    return total.cycles, total
