"""Mitchell's log-based approximate multiplication/division (1962).

The GENERIC similarity pipeline divides the squared dot product by the
class norm with an approximate divider (Fig. 4, marker 9) instead of a
full divider: ``log2`` of an integer is approximated as
``k + (x / 2^k - 1)`` where ``k = floor(log2 x)`` (the leading-one
position plus the mantissa bits read as a fraction), the logs are
subtracted, and the antilog is approximated the same way.  The relative
error is bounded by about 11.1%, which HDC's arg-max absorbs.
"""

from __future__ import annotations

import numpy as np

#: worst-case relative error of plain Mitchell's approximation
MAX_RELATIVE_ERROR = 0.1111
#: worst-case relative error with the LUT-interpolated refinement
MAX_RELATIVE_ERROR_CORRECTED = 1e-3
#: mantissa-correction LUT resolution (16 segments, as in hardware
#: log-converters: a 16-entry ROM plus one linear interpolation)
_LUT_SEGMENTS = 16
_LUT_X = np.linspace(0.0, 1.0, _LUT_SEGMENTS + 1)
#: residual log2(1+f) - f sampled at the segment boundaries
_LOG_LUT = np.log2(1.0 + _LUT_X) - _LUT_X
#: residual 2^f - (1+f) sampled at the segment boundaries
_EXP_LUT = np.exp2(_LUT_X) - (1.0 + _LUT_X)


def mitchell_log2(x: np.ndarray, correct: bool = False) -> np.ndarray:
    """Piecewise-linear log2 approximation (exact at powers of two).

    ``correct=True`` selects the refined converter: a 16-entry mantissa
    correction ROM with linear interpolation -- the standard hardware
    upgrade of Mitchell's method -- shrinking the worst-case log error
    from ~0.086 to below 1e-4.  Inputs must be positive; zeros map to
    ``-inf``.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.full(x.shape, -np.inf)
    pos = x > 0
    k = np.floor(np.log2(x, where=pos, out=np.zeros_like(x)))
    frac = x / np.exp2(k) - 1.0
    approx = k + frac
    if correct:
        approx = approx + np.interp(frac, _LUT_X, _LOG_LUT)
    out[pos] = approx[pos]
    return out


def mitchell_exp2(y: np.ndarray, correct: bool = False) -> np.ndarray:
    """Inverse of :func:`mitchell_log2` (piecewise-linear antilog).

    The corrected variant adds the antilog residual from its own
    16-entry ROM (``2^f`` lies *below* the chord ``1 + f``, so the
    stored residuals are positive and get added back).
    """
    y = np.asarray(y, dtype=np.float64)
    k = np.floor(y)
    frac = y - k
    mantissa = 1.0 + frac
    if correct:
        mantissa = mantissa + np.interp(frac, _LUT_X, _EXP_LUT)
    return np.exp2(k) * mantissa


def mitchell_divide(
    numerator: np.ndarray,
    denominator: np.ndarray,
    correct: bool = False,
) -> np.ndarray:
    """Approximate ``numerator / denominator`` via log-domain subtraction.

    Zero numerators yield 0; infinite denominators (used by callers to
    neutralize empty classes) also yield 0.  ``correct=True`` selects
    the LUT-refined log/antilog pair; the GENERIC search unit uses it
    because the synthetic benchmark suite produces class hypervectors
    whose score margins (often ~1%) sit below plain Mitchell's ~11%
    error, whereas the paper's real datasets tolerated the plain
    divider.  Ablation A4 quantifies the difference.
    """
    num = np.asarray(numerator, dtype=np.float64)
    den = np.asarray(denominator, dtype=np.float64)
    num, den = np.broadcast_arrays(num, den)
    result = np.zeros(num.shape, dtype=np.float64)
    valid = (num > 0) & np.isfinite(den) & (den > 0)
    if valid.any():
        logs = mitchell_log2(num[valid], correct) - mitchell_log2(den[valid], correct)
        result[valid] = mitchell_exp2(logs, correct)
    return result
