"""Event counters produced by the simulator and consumed by the energy model."""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Counters:
    """Cycle and memory-access counts accumulated over a run."""

    cycles: int = 0
    datapath_cycles: int = 0
    feature_reads: int = 0
    feature_writes: int = 0
    level_reads: int = 0
    seed_reads: int = 0
    class_reads: int = 0
    class_writes: int = 0
    norm2_reads: int = 0
    norm2_writes: int = 0
    score_reads: int = 0
    score_writes: int = 0
    inputs_processed: int = 0
    model_updates: int = 0

    def add(self, other: "Counters") -> "Counters":
        """Accumulate another counter set into this one (in place)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "Counters":
        return Counters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}
