"""Multi-application management on one GENERIC device.

The paper's flexibility pitch: "GENERIC is flexible in the input size
(hence it can run various applications)" -- one chip serves many
workloads by reloading spec + config state.  This module manages that
time-multiplexing on the simulated accelerator:

- :class:`AppSlot` holds a named application's config bitstream and
  per-app statistics;
- :class:`AppManager` owns one :class:`GenericAccelerator`, swaps
  applications on demand (charging the config-port reprogramming time
  and energy), and routes inference requests, so a gateway-style
  workload mix can be analyzed end to end.

Reprogramming cost model: streaming the bitstream over the config port
at the given baud rate, with the device drawing its gated static power
while being flashed (the datapath is idle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.model_io import ConfigImage
from repro.hardware import driver
from repro.hardware.accelerator import GenericAccelerator, RunReport
from repro.hardware.params import DEFAULT_PARAMS, ArchParams


@dataclass
class AppSlot:
    """One resident application."""

    name: str
    image: ConfigImage
    bitstream: bytes
    bitwidth: int = 16
    inferences: int = 0
    energy_j: float = 0.0
    swaps: int = 0

    @property
    def stream_bytes(self) -> int:
        return len(self.bitstream)


@dataclass
class SwapRecord:
    """Cost of one reprogramming event."""

    app: str
    time_s: float
    energy_j: float


class AppManager:
    """Time-multiplex several applications on one accelerator."""

    def __init__(
        self,
        params: ArchParams = DEFAULT_PARAMS,
        config_baud_bits_per_s: float = 10e6,
    ):
        if config_baud_bits_per_s <= 0:
            raise ValueError("config baud rate must be positive")
        self.accelerator = GenericAccelerator(params)
        self.baud = config_baud_bits_per_s
        self.apps: Dict[str, AppSlot] = {}
        self.active: Optional[str] = None
        self.swap_log: list = []

    # -- registration -----------------------------------------------------------

    def register(self, name: str, image: ConfigImage, bitwidth: int = 16) -> AppSlot:
        """Validate and store an application (serializes its bitstream)."""
        if name in self.apps:
            raise ValueError(f"application {name!r} already registered")
        slot = AppSlot(
            name=name,
            image=image,
            bitstream=driver.serialize(image),
            bitwidth=bitwidth,
        )
        self.apps[name] = slot
        return slot

    def unregister(self, name: str) -> None:
        if name not in self.apps:
            raise KeyError(f"unknown application {name!r}")
        if self.active == name:
            self.active = None
        del self.apps[name]

    # -- swapping ------------------------------------------------------------------

    def _swap_cost(self, slot: AppSlot) -> SwapRecord:
        time_s = slot.stream_bytes * 8 / self.baud
        static_w = self.accelerator.energy_model.total_static_w(
            self.accelerator.gating
        )
        return SwapRecord(app=slot.name, time_s=time_s,
                          energy_j=static_w * time_s)

    def activate(self, name: str) -> Optional[SwapRecord]:
        """Make an application current; returns the swap cost (None if
        it was already active)."""
        if name not in self.apps:
            raise KeyError(f"unknown application {name!r}")
        if self.active == name:
            return None
        slot = self.apps[name]
        image = driver.deserialize(slot.bitstream)  # integrity-checked load
        self.accelerator.load_image(image, bitwidth=slot.bitwidth)
        record = self._swap_cost(slot)
        slot.swaps += 1
        self.active = name
        self.swap_log.append(record)
        return record

    # -- serving ----------------------------------------------------------------------

    def infer(self, name: str, X: np.ndarray) -> RunReport:
        """Route a batch to an application, swapping first if needed."""
        self.activate(name)
        report = self.accelerator.infer(np.atleast_2d(X))
        slot = self.apps[name]
        slot.inferences += report.n_inputs
        slot.energy_j += report.energy_j
        return report

    # -- accounting --------------------------------------------------------------------

    def total_swap_energy_j(self) -> float:
        return sum(r.energy_j for r in self.swap_log)

    def total_swap_time_s(self) -> float:
        return sum(r.time_s for r in self.swap_log)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-application serving statistics."""
        return {
            name: {
                "inferences": slot.inferences,
                "energy_j": slot.energy_j,
                "swaps": slot.swaps,
                "bitstream_kb": slot.stream_bytes / 1024,
            }
            for name, slot in self.apps.items()
        }
