"""Top-level GENERIC accelerator model (paper Section 4).

Composes the encoder unit, search unit, controller cycle model, power
gating, voltage over-scaling and the energy model into a device you can
program through an :class:`~repro.hardware.spec.AppSpec`, load through a
config image (offline training) or train on-device, and run in the three
modes of the paper: training, inference, clustering.

Every run returns a :class:`RunReport` with predictions, cycle counts,
and a calibrated energy estimate, so the benchmark harness regenerates
Figures 8-10 directly from simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.model_io import ConfigImage
from repro.hardware import controller
from repro.hardware.counters import Counters
from repro.hardware.encoder_unit import EncoderUnit
from repro.hardware.energy import EnergyModel, PowerReport
from repro.hardware.params import DEFAULT_PARAMS, ArchParams
from repro.hardware.power_gating import GatingPlan, plan_for_spec
from repro.hardware.search_unit import SearchUnit
from repro.hardware.spec import AppSpec, Mode
from repro.hardware.voltage import VoltagePoint, operating_point


@dataclass
class RunReport:
    """Outcome of a simulated run."""

    mode: Mode
    n_inputs: int
    counters: Counters
    power: PowerReport
    predictions: Optional[np.ndarray] = None
    extras: dict = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.counters.cycles

    @property
    def time_s(self) -> float:
        return self.power.time_s

    @property
    def energy_j(self) -> float:
        return self.power.total_j

    @property
    def energy_per_input_j(self) -> float:
        return self.energy_j / max(1, self.n_inputs)

    @property
    def time_per_input_s(self) -> float:
        return self.time_s / max(1, self.n_inputs)


class GenericAccelerator:
    """Programmable HDC engine: train, infer, cluster.

    Parameters
    ----------
    params:
        Architecture configuration; the default matches the paper.
    """

    def __init__(self, params: ArchParams = DEFAULT_PARAMS):
        params.validate()
        self.params = params
        self.energy_model = EnergyModel(params)
        self.spec: Optional[AppSpec] = None
        self.encoder: Optional[EncoderUnit] = None
        self.search: Optional[SearchUnit] = None
        self.gating: Optional[GatingPlan] = None
        self.vos: Optional[VoltagePoint] = None
        self.class_labels: Optional[np.ndarray] = None
        self.rng = np.random.default_rng(0)

    # -- programming -----------------------------------------------------------

    def configure(self, spec: AppSpec) -> "GenericAccelerator":
        """Load the spec registers and plan the power gating."""
        spec.validate(self.params)
        self.spec = spec
        self.gating = plan_for_spec(spec, self.params)
        self.search = SearchUnit(
            spec.n_classes, spec.dim, norm_block=self.params.norm_block
        )
        return self

    def load_tables(
        self,
        level_table: np.ndarray,
        seed_id: Optional[np.ndarray],
        lo: np.ndarray,
        hi: np.ndarray,
    ) -> None:
        """Load the level memory, seed id and quantizer range (config port)."""
        self._require_spec()
        level_table = np.asarray(level_table, dtype=np.int8)
        if level_table.shape[0] > self.params.num_levels:
            raise ValueError(
                f"{level_table.shape[0]} levels exceed the level memory "
                f"({self.params.num_levels} rows)"
            )
        if level_table.shape[1] < self.spec.dim:
            raise ValueError(
                f"level rows of {level_table.shape[1]} bits shorter than "
                f"D_hv={self.spec.dim}"
            )
        self.encoder = EncoderUnit(
            level_table,
            seed_id if self.spec.use_ids else None,
            self.spec.window,
            np.asarray(lo),
            np.asarray(hi),
        )

    def load_image(self, image: ConfigImage, bitwidth: Optional[int] = None) -> AppSpec:
        """Program spec + tables + offline-trained classes from an image."""
        spec = AppSpec(
            dim=image.dim,
            n_features=image.n_features,
            window=image.window,
            n_classes=image.n_classes,
            bitwidth=bitwidth if bitwidth is not None else 16,
            mode=Mode.INFERENCE,
            use_ids=image.use_ids,
        )
        self.configure(spec)
        lo = image.quantizer_lo if image.quantizer_lo.size > 1 else image.quantizer_lo[0]
        hi = image.quantizer_hi if image.quantizer_hi.size > 1 else image.quantizer_hi[0]
        self.load_tables(image.level_table, image.seed_id, lo, hi)
        self.search.load_classes(image.class_matrix, bitwidth=spec.bitwidth)
        self.class_labels = np.asarray(image.class_labels)
        return spec

    def set_voltage_overscaling(self, error_rate: float) -> VoltagePoint:
        """Engage voltage over-scaling at a target bit-error rate."""
        self.vos = operating_point(error_rate) if error_rate > 0 else None
        return self.vos or operating_point(0.0)

    def reduce_dimensions(self, dim: int) -> None:
        """On-demand dimension reduction: update the spec's D_hv."""
        self._require_spec()
        if dim % self.params.norm_block or dim % self.params.lanes:
            raise ValueError(
                f"reduced D_hv={dim} must be a multiple of the lane count and "
                f"of {self.params.norm_block}"
            )
        if dim > self.search.dim:
            raise ValueError(
                f"cannot raise dimensions above the trained {self.search.dim}"
            )
        self.spec = self.spec.with_dim(dim)
        self.gating = plan_for_spec(self.spec, self.params)

    def _require_spec(self) -> None:
        if self.spec is None:
            raise RuntimeError("accelerator used before configure()")

    def _require_ready(self) -> None:
        self._require_spec()
        if self.encoder is None:
            raise RuntimeError("load_tables()/load_image() must run before this")

    def _label_of(self, index: int):
        if self.class_labels is None:
            return index
        return self.class_labels[index]

    # -- modes --------------------------------------------------------------------

    def train(
        self,
        X: np.ndarray,
        y: Sequence,
        epochs: int = 20,
        seed: int = 0,
    ) -> RunReport:
        """On-device training: initialization plus retraining epochs."""
        self._require_ready()
        spec = self.spec
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y)
        labels, y_idx = np.unique(y, return_inverse=True)
        if len(labels) > spec.n_classes:
            raise ValueError(
                f"{len(labels)} labels exceed the configured n_C={spec.n_classes}"
            )
        self.class_labels = labels
        rng = np.random.default_rng(seed)

        total = Counters()
        encodings = np.empty((len(X), spec.dim), dtype=np.float64)
        # initialization: accumulate every encoding into its class
        for i, x in enumerate(X):
            encodings[i] = self.encoder.encode(x, dim=spec.dim)
            self.search.accumulate(int(y_idx[i]), encodings[i])
            _, c = controller.train_init(spec, self.params)
            total.add(c)
        # retraining epochs (per-sample online updates)
        order = np.arange(len(X))
        for _ in range(epochs):
            rng.shuffle(order)
            updates = 0
            for i in order:
                pred = self.search.predict(encodings[i])
                truth = int(y_idx[i])
                miss = pred != truth
                if miss:
                    self.search.accumulate(pred, encodings[i], sign=-1)
                    self.search.accumulate(truth, encodings[i], sign=+1)
                    updates += 1
                _, c = controller.retrain_sample(spec, self.params, miss)
                total.add(c)
            if updates == 0:
                break

        power = self.energy_model.report(
            total, gating=self.gating, vos=self.vos, bitwidth=spec.bitwidth
        )
        return RunReport(
            mode=Mode.TRAIN,
            n_inputs=len(X),
            counters=total,
            power=power,
            extras={"epochs_requested": epochs},
        )

    def infer(
        self,
        X: np.ndarray,
        exact_divider: bool = False,
        constant_norms: bool = False,
    ) -> RunReport:
        """Classify a batch of inputs, one at a time like the hardware."""
        self._require_ready()
        spec = self.spec
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        total = Counters()
        preds = []
        for x in X:
            encoding = self.encoder.encode(x, dim=spec.dim)
            idx = self.search.predict(
                encoding,
                dim=spec.dim,
                exact_divider=exact_divider,
                constant_norms=constant_norms,
            )
            preds.append(self._label_of(idx))
            _, c = controller.inference(spec, self.params)
            total.add(c)
        power = self.energy_model.report(
            total, gating=self.gating, vos=self.vos, bitwidth=spec.bitwidth
        )
        return RunReport(
            mode=Mode.INFERENCE,
            n_inputs=len(X),
            counters=total,
            power=power,
            predictions=np.asarray(preds),
        )

    def cluster(self, X: np.ndarray, k: int, epochs: int = 10) -> RunReport:
        """Unsupervised clustering (Section 4.2.3)."""
        self._require_ready()
        spec = self.spec
        if k > spec.n_classes:
            raise ValueError(f"k={k} exceeds the configured n_C={spec.n_classes}")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if len(X) < k:
            raise ValueError(f"need at least k={k} inputs, got {len(X)}")

        total = Counters()
        encodings = np.empty((len(X), spec.dim), dtype=np.float64)
        for i, x in enumerate(X):
            encodings[i] = self.encoder.encode(x, dim=spec.dim)
            _, c = controller.train_init(spec, self.params)
            total.add(c)
        centroids = encodings[:k].copy()
        labels = np.zeros(len(X), dtype=np.int64)
        for epoch in range(epochs):
            copies = np.zeros_like(centroids)
            new_labels = np.empty(len(X), dtype=np.int64)
            for i in range(len(X)):
                # hardware metric against the current (frozen) centroids
                dots = centroids[:, : spec.dim] @ encodings[i, : spec.dim]
                norm2 = (centroids[:, : spec.dim] ** 2).sum(axis=1)
                safe = np.where(norm2 <= 0.0, np.inf, norm2)
                scores = np.sign(dots) * np.where(
                    np.isfinite(safe), dots * dots / safe, 0.0
                )
                winner = int(np.argmax(scores))
                new_labels[i] = winner
                copies[winner] += encodings[i]
                _, c = controller.cluster_sample(spec, self.params)
                total.add(c)
            counts = np.bincount(new_labels, minlength=k)
            copies[counts == 0] = centroids[counts == 0]
            converged = epoch > 0 and np.array_equal(new_labels, labels)
            labels = new_labels
            centroids = copies
            if converged:
                break

        power = self.energy_model.report(
            total, gating=self.gating, vos=self.vos, bitwidth=spec.bitwidth
        )
        return RunReport(
            mode=Mode.CLUSTER,
            n_inputs=len(X),
            counters=total,
            power=power,
            predictions=labels,
            extras={"centroids": centroids},
        )
