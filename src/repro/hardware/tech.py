"""Technology-node scaling (Stillmaker & Baas, Integration'17 style).

The paper scales the published numbers of Datta et al. [10] and tiny-HD
[8] to 14 nm "according to [21]" before comparing.  We implement the same
step with a per-node table of normalized CMOS energy-per-operation and
delay, fitted to the shape of the Stillmaker-Baas data (general-purpose
scaling at nominal voltage).  Only *ratios* between nodes are used.
"""

from __future__ import annotations

import numpy as np

# node (nm) -> (relative energy per op, relative delay), normalized to 45 nm.
_NODE_TABLE = {
    180: (11.3, 3.39),
    130: (5.60, 2.20),
    90: (2.60, 1.57),
    65: (1.60, 1.25),
    45: (1.00, 1.00),
    32: (0.62, 0.81),
    22: (0.36, 0.65),
    14: (0.191, 0.521),
    10: (0.138, 0.462),
    7: (0.091, 0.405),
}


def known_nodes() -> tuple:
    return tuple(sorted(_NODE_TABLE))


def _lookup(node_nm: int) -> tuple:
    try:
        return _NODE_TABLE[node_nm]
    except KeyError:
        nodes = np.array(sorted(_NODE_TABLE))
        if not nodes.min() <= node_nm <= nodes.max():
            raise ValueError(
                f"node {node_nm} nm outside modeled range "
                f"[{nodes.min()}, {nodes.max()}]"
            )
        energies = np.array([_NODE_TABLE[n][0] for n in nodes])
        delays = np.array([_NODE_TABLE[n][1] for n in nodes])
        # interpolate in log-log space: scaling laws are power-law-ish
        e = np.exp(np.interp(np.log(node_nm), np.log(nodes), np.log(energies)))
        d = np.exp(np.interp(np.log(node_nm), np.log(nodes), np.log(delays)))
        return float(e), float(d)


def scale_energy(value: float, from_nm: int, to_nm: int) -> float:
    """Scale an energy from one node to another."""
    e_from, _ = _lookup(from_nm)
    e_to, _ = _lookup(to_nm)
    return value * e_to / e_from


def scale_delay(value: float, from_nm: int, to_nm: int) -> float:
    """Scale a delay/latency from one node to another."""
    _, d_from = _lookup(from_nm)
    _, d_to = _lookup(to_nm)
    return value * d_to / d_from


def scale_power(value: float, from_nm: int, to_nm: int) -> float:
    """Scale power = energy/delay between nodes."""
    return scale_energy(value, from_nm, to_nm) / (
        scale_delay(1.0, from_nm, to_nm)
    )
