"""Cycle-approximate simulator of the GENERIC ASIC (paper Sections 4-5).

The simulator is *functionally faithful* (its predictions match the
algorithmic library bit-for-bit given the same tables, modulo the
hardware similarity metric and quantization) and *structurally faithful*
(cycles, memory traffic and bank activation follow the architecture of
Fig. 4).  Absolute energy/area numbers come from an analytical model
calibrated to the paper's reported 14 nm figures; see
:mod:`repro.hardware.energy`.
"""

from repro.hardware.accelerator import GenericAccelerator, RunReport
from repro.hardware.energy import EnergyModel
from repro.hardware.faultspec import FaultSpec
from repro.hardware.multiplex import AppManager
from repro.hardware.params import ArchParams
from repro.hardware.serial import InputPort, burst_analysis
from repro.hardware.spec import AppSpec, Mode

__all__ = [
    "AppManager",
    "AppSpec",
    "ArchParams",
    "EnergyModel",
    "FaultSpec",
    "GenericAccelerator",
    "InputPort",
    "Mode",
    "RunReport",
    "burst_analysis",
]
