"""SRAM macro models with access counting and bank power gating.

The simulator does not model bit cells; each :class:`Sram` records its
geometry and counts word reads/writes so the energy model can charge
per-access energies, and exposes the 4-way banking used by the
application-opportunistic power gating of Section 4.3.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass
class Sram:
    """One SRAM macro: geometry plus access counters."""

    name: str
    rows: int
    width_bits: int
    banks: int = 1
    reads: int = 0
    writes: int = 0

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.width_bits <= 0:
            raise ValueError(f"{self.name}: rows and width must be positive")
        if self.banks < 1 or self.rows % self.banks:
            raise ValueError(f"{self.name}: rows must split evenly into banks")

    @property
    def bits(self) -> int:
        return self.rows * self.width_bits

    @property
    def bytes(self) -> int:
        return self.bits // 8

    @property
    def rows_per_bank(self) -> int:
        return self.rows // self.banks

    def count_reads(self, n: int = 1) -> None:
        self.reads += int(n)

    def count_writes(self, n: int = 1) -> None:
        self.writes += int(n)

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0

    def banks_for_rows(self, rows_used: int) -> int:
        """Banks that must stay powered to cover ``rows_used`` rows.

        The striped class layout fills rows from the bottom, so the active
        banks are a prefix; unused banks are power gated permanently for
        the application (no wake-up cost, Section 4.3.2).
        """
        if rows_used <= 0:
            return 0
        if rows_used > self.rows:
            raise ValueError(
                f"{self.name}: {rows_used} rows requested, only {self.rows} exist"
            )
        return math.ceil(rows_used / self.rows_per_bank)


@dataclass
class MemorySet:
    """All SRAM macros of the GENERIC design, keyed by their Fig. 4 role."""

    level: Sram
    feature: Sram
    seed_id: Sram
    classes: Sram  # aggregated view of the m class memories
    norm2: Sram
    score: Sram

    def all(self) -> Dict[str, Sram]:
        return {
            "level": self.level,
            "feature": self.feature,
            "seed_id": self.seed_id,
            "classes": self.classes,
            "norm2": self.norm2,
            "score": self.score,
        }

    def reset_counters(self) -> None:
        for sram in self.all().values():
            sram.reset_counters()

    def total_bits(self) -> int:
        return sum(s.bits for s in self.all().values())


def build_memories(params) -> MemorySet:
    """Instantiate the paper's memory geometry from :class:`ArchParams`."""
    return MemorySet(
        level=Sram("level", rows=params.num_levels * (params.max_dim // params.lanes),
                   width_bits=params.lanes),
        feature=Sram("feature", rows=params.max_features, width_bits=params.feature_bits),
        seed_id=Sram("seed_id", rows=params.max_dim // params.lanes,
                     width_bits=params.lanes),
        classes=Sram(
            "classes",
            rows=params.lanes * params.class_mem_rows,
            width_bits=params.class_word_bits,
            banks=params.class_banks,
        ),
        norm2=Sram("norm2", rows=params.max_classes * (params.max_dim // params.norm_block),
                   width_bits=32),
        score=Sram("score", rows=params.max_classes, width_bits=32),
    )
