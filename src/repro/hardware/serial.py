"""Serial input port and burst-inference analysis (paper Sections 1, 4.1).

GENERIC reads inputs "from the serial interface element by element" into
the feature memory before encoding starts, and the paper sizes the
design to be "fast enough during training and burst inference, e.g.,
when it serves as an IoT gateway".  This module models that front end:

- :class:`InputPort` -- a byte-serial link with a FIFO; computes how
  long one input takes to arrive and whether the link can keep the
  engine busy;
- :func:`burst_analysis` -- steady-state throughput of the
  load/compute pipeline: input ``i+1`` streams in while input ``i`` is
  encoded and searched (double-buffered feature memory), so the engine
  sustains ``1 / max(t_load, t_compute)`` inputs per second.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import controller
from repro.hardware.params import DEFAULT_PARAMS, ArchParams
from repro.hardware.spec import AppSpec


@dataclass(frozen=True)
class InputPort:
    """Byte-serial front end feeding the feature memory."""

    baud_bits_per_s: float = 10e6  # a typical SPI-class link
    bits_per_element: int = 8
    fifo_elements: int = 64

    def load_time_s(self, n_features: int) -> float:
        """Wall-clock time for one input to arrive over the link."""
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        return n_features * self.bits_per_element / self.baud_bits_per_s

    def element_rate_per_s(self) -> float:
        return self.baud_bits_per_s / self.bits_per_element


@dataclass(frozen=True)
class BurstReport:
    """Steady-state pipeline analysis for one application."""

    t_load_s: float
    t_compute_s: float
    inputs_per_s: float
    bound: str  # "link" or "compute"
    link_utilization: float
    engine_utilization: float


def burst_analysis(
    spec: AppSpec,
    port: InputPort = InputPort(),
    params: ArchParams = DEFAULT_PARAMS,
) -> BurstReport:
    """Throughput of double-buffered load/compute for burst inference."""
    spec.validate(params)
    t_load = port.load_time_s(spec.n_features)
    cycles, _ = controller.inference(spec, params)
    # the serial load overlaps with compute; discount its cycles
    load_cycles, _ = controller.load_input(spec, params)
    t_compute = (cycles - load_cycles) / params.clock_hz
    period = max(t_load, t_compute)
    return BurstReport(
        t_load_s=t_load,
        t_compute_s=t_compute,
        inputs_per_s=1.0 / period,
        bound="link" if t_load >= t_compute else "compute",
        link_utilization=t_load / period,
        engine_utilization=t_compute / period,
    )


def required_baud_for_engine(
    spec: AppSpec,
    params: ArchParams = DEFAULT_PARAMS,
    bits_per_element: int = 8,
) -> float:
    """Link speed (bits/s) at which the engine stops waiting on input."""
    spec.validate(params)
    cycles, _ = controller.inference(spec, params)
    load_cycles, _ = controller.load_input(spec, params)
    t_compute = (cycles - load_cycles) / params.clock_hz
    if t_compute <= 0:
        raise ValueError("degenerate spec: no compute time")
    return spec.n_features * bits_per_element / t_compute
