"""Host driver: the config/spec-port wire format.

The accelerator is programmed through two ports (Section 4.1): the
*spec* port carries the per-application registers (``D_hv``, ``d``,
``n``, ``n_C``, ``bw``, mode, id enable) and the *config* port streams
the memories (level table, seed id, class words, quantizer range).
This module defines a concrete byte-level bitstream for that
programming sequence, so a host MCU could flash a trained model from a
file:

``[magic][version][spec words][quantizer][level bits][seed bits?]``
``[class words][crc32]``

- spec registers are packed little-endian ``uint32``;
- level and id rows are bit-packed (8 hypervector bits per byte);
- class words are signed 16-bit, striped in row order;
- the stream ends with a CRC-32 over everything before it.

:func:`serialize` produces the stream from a
:class:`~repro.core.model_io.ConfigImage`; :func:`deserialize` parses
and validates it back; ``GenericAccelerator`` and ``GenericRTL`` can
then be programmed from the parsed image.
"""

from __future__ import annotations

import struct
import zlib
import numpy as np

from repro.core.hypervector import to_binary, to_bipolar
from repro.core.model_io import ConfigImage

MAGIC = b"GNRC"
VERSION = 1

_MODE_BITS = {"dot": 0, "cosine": 1, "hardware": 2}
_MODE_NAMES = {v: k for k, v in _MODE_BITS.items()}


class BitstreamError(ValueError):
    """Raised when a config bitstream is malformed or corrupt."""


def _pack_bits(bits: np.ndarray) -> bytes:
    """Pack a {0,1} array into bytes, LSB-first within each byte."""
    return np.packbits(np.asarray(bits, dtype=np.uint8), bitorder="little").tobytes()


def _unpack_bits(data: bytes, count: int) -> np.ndarray:
    out = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8), bitorder="little"
    )
    if len(out) < count:
        raise BitstreamError(f"bit payload too short: {len(out)} < {count}")
    return out[:count]


def serialize(image: ConfigImage) -> bytes:
    """Encode a config image as the programming bitstream."""
    if image.metric not in _MODE_BITS:
        raise BitstreamError(f"unsupported metric {image.metric!r}")
    lo = np.atleast_1d(np.asarray(image.quantizer_lo, dtype=np.float64))
    hi = np.atleast_1d(np.asarray(image.quantizer_hi, dtype=np.float64))
    if lo.size != 1 or hi.size != 1:
        raise BitstreamError("the wire format carries a global quantizer range")

    head = bytearray()
    head += MAGIC
    head += struct.pack(
        "<7I",
        VERSION,
        image.dim,
        image.num_levels,
        image.window,
        image.n_features,
        image.n_classes,
        (_MODE_BITS[image.metric] << 1) | int(image.use_ids),
    )
    head += struct.pack("<2d", float(lo[0]), float(hi[0]))

    body = bytearray()
    body += _pack_bits(to_binary(image.level_table).reshape(-1))
    if image.use_ids:
        if image.seed_id is None:
            raise BitstreamError("image declares ids but has no seed")
        body += _pack_bits(to_binary(image.seed_id))

    classes = np.rint(np.asarray(image.class_matrix)).astype(np.int64)
    if np.abs(classes).max(initial=0) > 32767:
        raise BitstreamError("class words exceed the 16-bit storage range")
    body += classes.astype("<i2").tobytes()

    labels = np.asarray(image.class_labels)
    label_blob = "\x00".join(str(v) for v in labels).encode()
    body += struct.pack("<I", len(label_blob)) + label_blob

    stream = bytes(head) + bytes(body)
    return stream + struct.pack("<I", zlib.crc32(stream) & 0xFFFFFFFF)


def deserialize(stream: bytes) -> ConfigImage:
    """Parse and CRC-check a programming bitstream back into an image."""
    if len(stream) < 4 + 28 + 16 + 4:
        raise BitstreamError("stream truncated")
    payload, crc_bytes = stream[:-4], stream[-4:]
    (crc,) = struct.unpack("<I", crc_bytes)
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise BitstreamError("CRC mismatch: stream corrupt")
    if payload[:4] != MAGIC:
        raise BitstreamError(f"bad magic {payload[:4]!r}")

    offset = 4
    version, dim, num_levels, window, d, n_c, flags = struct.unpack_from(
        "<7I", payload, offset
    )
    offset += 28
    if version != VERSION:
        raise BitstreamError(f"unsupported bitstream version {version}")
    lo, hi = struct.unpack_from("<2d", payload, offset)
    offset += 16
    use_ids = bool(flags & 1)
    metric = _MODE_NAMES.get(flags >> 1)
    if metric is None:
        raise BitstreamError(f"unknown metric code {flags >> 1}")

    level_bytes = (num_levels * dim + 7) // 8
    level_bits = _unpack_bits(
        payload[offset : offset + level_bytes], num_levels * dim
    )
    offset += level_bytes
    level_table = to_bipolar(level_bits.reshape(num_levels, dim))

    seed = None
    if use_ids:
        seed_bytes = (dim + 7) // 8
        seed = to_bipolar(_unpack_bits(payload[offset : offset + seed_bytes], dim))
        offset += seed_bytes

    class_bytes = n_c * dim * 2
    classes = np.frombuffer(
        payload[offset : offset + class_bytes], dtype="<i2"
    ).astype(np.float64).reshape(n_c, dim)
    offset += class_bytes

    (label_len,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    label_blob = payload[offset : offset + label_len].decode()
    labels = np.array(label_blob.split("\x00")) if label_blob else np.arange(n_c)
    if len(labels) != n_c:
        raise BitstreamError(
            f"{len(labels)} labels for {n_c} classes"
        )
    # labels serialize as strings; restore integer labels when possible
    try:
        labels = labels.astype(np.int64)
    except ValueError:
        pass

    return ConfigImage(
        dim=dim,
        num_levels=num_levels,
        window=window,
        use_ids=use_ids,
        n_features=d,
        n_classes=n_c,
        metric=metric,
        level_table=level_table,
        seed_id=seed,
        class_matrix=classes,
        class_labels=labels,
        quantizer_lo=np.atleast_1d(lo),
        quantizer_hi=np.atleast_1d(hi),
    )


def stream_size_bytes(image: ConfigImage) -> int:
    """Exact size of the stream :func:`serialize` would produce."""
    return len(serialize(image))


def programming_time_s(
    image: ConfigImage, baud_bits_per_s: float = 10e6
) -> float:
    """How long flashing the model takes over a serial config port."""
    if baud_bits_per_s <= 0:
        raise ValueError("baud rate must be positive")
    return stream_size_bytes(image) * 8 / baud_bits_per_s
