"""Bit-flip fault injection into the class memories (Fig. 6 left axes).

The class words are stored as ``bw``-bit two's-complement integers; under
voltage over-scaling each stored bit flips independently with the target
error rate.  :func:`inject_bitflips` corrupts a quantized class matrix
accordingly and returns the corrupted values, which the classifier (or
the accelerator) then uses unmodified -- accuracy under faults is
measured, not modeled.
"""

from __future__ import annotations

import numpy as np


def __getattr__(name):  # pragma: no cover - thin re-export
    # The unified fault model lives in repro.hardware.faultspec (which
    # builds on this module); re-export it lazily to avoid the cycle.
    if name == "FaultSpec":
        from repro.hardware.faultspec import FaultSpec

        return FaultSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def quantize_to_bits(model: np.ndarray, bits: int) -> np.ndarray:
    """Symmetric linear quantization of class values to ``bits``-bit ints.

    The scale is a high percentile of the magnitudes rather than the
    global maximum: bundled class hypervectors have heavy-tailed entries,
    and max-scaling would collapse almost everything to zero at low
    bit-widths.  Values beyond the scale saturate (as a fixed-point
    accumulator would).  Returns integers in
    ``[-(2^(b-1) - 1), 2^(b-1) - 1]``; 1-bit models map to the sign.
    """
    model = np.asarray(model, dtype=np.float64)
    if bits < 1:
        raise ValueError(f"bit-width must be >= 1, got {bits}")
    if bits == 1:
        return np.where(model >= 0, 1, -1).astype(np.int64)
    qmax = 2 ** (bits - 1) - 1
    scale = np.percentile(np.abs(model), 99.0)
    if scale == 0.0:
        scale = np.abs(model).max()
    if scale == 0.0:
        return np.zeros(model.shape, dtype=np.int64)
    q = np.rint(model / scale * qmax)
    return np.clip(q, -qmax, qmax).astype(np.int64)


def inject_bitflips(
    quantized: np.ndarray,
    bits: int,
    error_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Flip each stored bit independently with probability ``error_rate``.

    ``quantized`` holds ``bits``-bit signed integers (1-bit models hold
    +/-1).  Returns the corrupted integers with the same convention.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError(f"error rate must be in [0, 1], got {error_rate}")
    q = np.asarray(quantized, dtype=np.int64)
    if error_rate == 0.0:
        return q.copy()
    if bits == 1:
        # one stored bit: the sign
        flips = rng.random(q.shape) < error_rate
        out = q.copy()
        out[flips] = -out[flips]
        return out
    # two's-complement words of `bits` bits
    mask = (1 << bits) - 1
    words = (q & mask).astype(np.uint64)
    flip_bits = np.zeros(q.shape, dtype=np.uint64)
    for b in range(bits):
        flips = rng.random(q.shape) < error_rate
        flip_bits |= flips.astype(np.uint64) << np.uint64(b)
    corrupted = words ^ flip_bits
    # sign-extend back to int64
    sign_bit = np.uint64(1 << (bits - 1))
    signed = corrupted.astype(np.int64)
    negative = (corrupted & sign_bit) != 0
    signed[negative] -= 1 << bits
    return signed


def corrupt_model(
    model: np.ndarray,
    bits: int,
    error_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Quantize, inject faults, and return a float model for scoring."""
    q = quantize_to_bits(model, bits)
    corrupted = inject_bitflips(q, bits, error_rate, rng)
    return corrupted.astype(np.float64)
