"""Functional model of the GENERIC search unit (Fig. 4, bottom).

Holds the class matrix (striped across the ``m`` class memories in the
real design), the blocked norm2 memory, and the score pipeline with the
Mitchell approximate divider.  Class words are masked to the spec's
``bw`` effective bits (Fig. 4 marker 5) and can be corrupted by the
voltage over-scaling fault model before scoring.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.norms import SubNormTable
from repro.hardware.faults import quantize_to_bits
from repro.hardware.mitchell import mitchell_divide


class SearchUnit:
    """Class memories + norm2 memory + score pipeline."""

    def __init__(self, n_classes: int, dim: int, norm_block: int = 128):
        self.n_classes = n_classes
        self.dim = dim
        self.norm_block = norm_block
        self.classes = np.zeros((n_classes, dim), dtype=np.float64)
        self.norms = SubNormTable(n_classes, dim, block=norm_block)
        self.bitwidth = 16

    # -- model loading / update ------------------------------------------------

    def load_classes(self, matrix: np.ndarray, bitwidth: int = 16) -> None:
        """Load (possibly offline-trained) class hypervectors.

        The stored words are 16-bit; a smaller ``bitwidth`` masks the
        low-order bits out of the dot product, which we model by
        re-quantizing the loaded model to ``bitwidth`` bits.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (self.n_classes, self.dim):
            raise ValueError(
                f"class matrix {matrix.shape} != ({self.n_classes}, {self.dim})"
            )
        self.bitwidth = bitwidth
        if bitwidth < 16:
            self.classes = quantize_to_bits(matrix, bitwidth).astype(np.float64)
        else:
            self.classes = matrix.copy()
        self.norms.recompute(self.classes)

    def accumulate(self, class_index: int, encoding: np.ndarray, sign: int = 1) -> None:
        """Add (or subtract) an encoding into a class row and refresh norms."""
        if not 0 <= class_index < self.n_classes:
            raise IndexError(f"class index {class_index} out of range")
        self.classes[class_index] += sign * np.asarray(encoding, dtype=np.float64)
        self.norms.update_class(class_index, self.classes[class_index])

    def overwrite(self, matrix: np.ndarray) -> None:
        """Replace the raw class values (fault injection path)."""
        self.classes = np.asarray(matrix, dtype=np.float64).copy()
        self.norms.recompute(self.classes)

    # -- scoring --------------------------------------------------------------

    def scores(
        self,
        encoding: np.ndarray,
        dim: Optional[int] = None,
        exact_divider: bool = False,
        constant_norms: bool = False,
    ) -> np.ndarray:
        """Hardware similarity: ``sign(dot) * dot^2 / ||C||^2``.

        ``dim`` enables on-demand dimension reduction; ``constant_norms``
        reproduces the stale-norm failure mode of Fig. 5.
        """
        encoding = np.asarray(encoding, dtype=np.float64)
        use_dim = self.dim if dim is None else dim
        if encoding.shape[-1] < use_dim:
            raise ValueError(
                f"encoding has {encoding.shape[-1]} dims, need {use_dim}"
            )
        q = encoding[:use_dim]
        c = self.classes[:, :use_dim]
        if constant_norms or use_dim == self.dim:
            norm2 = self.norms.full_norm2() if constant_norms else self.norms.norm2(use_dim)
        else:
            norm2 = self.norms.norm2(use_dim)
        dots = c @ q
        num = dots * dots
        safe = np.where(norm2 <= 0.0, np.inf, norm2)
        if exact_divider:
            ratio = np.where(np.isfinite(safe), num / safe, 0.0)
        else:
            ratio = mitchell_divide(num, safe, correct=True)
        return np.sign(dots) * ratio

    def predict(self, encoding: np.ndarray, **kwargs) -> int:
        """Winning class index for one encoding."""
        return int(np.argmax(self.scores(encoding, **kwargs)))
