"""Trace sinks and exposition helpers.

Three exporters cover the repo's needs:

- :class:`JsonlSink` -- append each finished span as one JSON line
  (machine-readable; what ``--trace out.jsonl`` on the eval CLI and the
  obs benchmark write);
- :class:`CollectorSink` -- keep spans in memory (tests, ad-hoc
  analysis, the report tool's in-process mode);
- :func:`render_prometheus` -- the Prometheus text exposition of a
  :class:`~repro.obs.registry.Registry` (also available as a tiny HTTP
  endpoint via :func:`serve_prometheus`, which the serve server mounts).

:func:`load_trace` and :func:`summarize` turn a JSONL trace back into
the per-stage aggregate the console report and the energy bridge
consume.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.obs.registry import REGISTRY, Registry

__all__ = [
    "JsonlSink",
    "CollectorSink",
    "render_prometheus",
    "serve_prometheus",
    "PrometheusEndpoint",
    "load_trace",
    "summarize",
]

OP_KEYS = ("xor_ops", "add_ops", "mul_ops", "mem_bytes")


class JsonlSink:
    """Append finished spans to ``path``, one JSON object per line."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")
        self.emitted = 0

    def emit(self, record: Dict) -> None:
        line = json.dumps(record, default=str)
        with self._lock:
            self._fh.write(line + "\n")
            self.emitted += 1

    def flush(self) -> None:
        with self._lock:
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CollectorSink:
    """Keep finished spans in an in-memory list (bounded if asked)."""

    def __init__(self, maxlen: Optional[int] = None):
        self.spans: List[Dict] = []
        self.maxlen = maxlen
        self.emitted = 0
        self._lock = threading.Lock()

    def emit(self, record: Dict) -> None:
        with self._lock:
            self.emitted += 1
            if self.maxlen is None or len(self.spans) < self.maxlen:
                self.spans.append(record)

    def clear(self) -> None:
        with self._lock:
            self.spans = []
            self.emitted = 0


# -- Prometheus exposition ---------------------------------------------------


def render_prometheus(registry: Optional[Registry] = None) -> str:
    """Text-format exposition of ``registry`` (default: the global one)."""
    return (registry or REGISTRY).render_prometheus()


class PrometheusEndpoint:
    """A daemon-thread HTTP server exposing one registry at ``/metrics``."""

    def __init__(self, registry: Registry, host: str = "127.0.0.1",
                 port: int = 0):
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (stdlib API)
                if self.path.split("?")[0] not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                body = endpoint.registry.render_prometheus().encode()
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr spam
                pass

        self.registry = registry
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="obs-prometheus",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)


def serve_prometheus(registry: Optional[Registry] = None,
                     host: str = "127.0.0.1",
                     port: int = 0) -> PrometheusEndpoint:
    """Expose ``registry`` over HTTP; returns the live endpoint handle."""
    return PrometheusEndpoint(registry or REGISTRY, host=host, port=port)


# -- trace loading / aggregation --------------------------------------------


def load_trace(path: Union[str, Path]) -> List[Dict]:
    """Read a JSONL trace back into a list of span records."""
    spans = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def summarize(spans: Iterable[Dict]) -> Dict[str, Dict]:
    """Aggregate spans by name: counts, wall time, op totals.

    Nested spans keep their own rows (``train`` and ``train.epoch`` both
    appear); ``wall_s`` is the sum over spans of that name, so a
    parent's wall time already contains its children's.

    Spans carrying primitive labels (a ``primitives`` attr mapping IR
    primitive name -> logical ops, attached by planner-lowered encoders)
    additionally aggregate into a ``primitives`` sub-dict per stage, so
    reports can attribute work per primitive instead of per monolith.
    """
    stages: Dict[str, Dict] = {}
    for rec in spans:
        name = rec.get("name", "?")
        agg = stages.get(name)
        if agg is None:
            agg = stages[name] = {
                "spans": 0, "wall_s": 0.0, "errors": 0,
                **{k: 0 for k in OP_KEYS},
            }
        agg["spans"] += 1
        agg["wall_s"] += float(rec.get("seconds", 0.0))
        if rec.get("error"):
            agg["errors"] += 1
        ops = rec.get("ops") or {}
        for key in OP_KEYS:
            agg[key] += int(ops.get(key, 0))
        prims = (rec.get("attrs") or {}).get("primitives")
        if isinstance(prims, dict):
            pagg = agg.setdefault("primitives", {})
            for prim, count in prims.items():
                try:
                    pagg[prim] = pagg.get(prim, 0) + int(count)
                except (TypeError, ValueError):
                    continue
    return stages
