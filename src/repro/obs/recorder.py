"""Flight recorder: always-on ring of recent spans + structured events.

Tracing answers "how long did each stage take" *when someone asked for
a trace*.  The flight recorder answers the postmortem question -- "what
was happening right before the worker died?" -- without anyone having
asked in advance.  It is cheap enough to leave on: two bounded
:class:`collections.deque` rings (finished span records, structured
events), appended under a lock, no I/O until a trigger fires.

The serving layers each own one recorder and feed it two ways:

- as a **trace sink** (it implements ``emit(record)``), so the last
  ~2k finished spans are always available -- including the worker-
  process spans re-emitted through
  :func:`repro.obs.trace.emit_foreign`;
- through :meth:`record_event` at the resilience choke points: breaker
  transitions, deadline expiries, worker kills/respawns, drift fires,
  model swaps, degradation-ladder tier changes.

When a trigger fires (chaos kill, breaker opening, an explicit
``dump()``), the recorder writes one self-contained JSON **bundle**:
trigger metadata, the event ring, the span ring, and -- when the
trigger names a ``trace_id`` -- that trace's spans pulled to the front
so "the affected request" is the first thing a human sees.  Bundles
land in ``dir`` as ``flight-<trigger>-<seq>.json``; the newest
``max_bundles`` are kept.

Everything here is stdlib-only and JSON-serializable by construction:
callers pass only str/int/float fields into events (enforced by
stringifying anything else).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["FlightRecorder", "load_bundle"]

#: bundle schema version, checked by the lint CLI
SCHEMA = "repro.obs.flight/1"


class FlightRecorder:
    """Bounded in-memory ring of spans and events with JSON dump."""

    def __init__(self, dir: Optional[str] = None, *,
                 capacity_spans: int = 2048, capacity_events: int = 1024,
                 max_bundles: int = 8, clock=time.time) -> None:
        self.dir = dir
        self._spans: deque = deque(maxlen=int(capacity_spans))
        self._events: deque = deque(maxlen=int(capacity_events))
        self._lock = threading.Lock()
        self._clock = clock
        self._seq = 0
        self._max_bundles = int(max_bundles)
        self.bundles_written = 0

    # -- ingestion -----------------------------------------------------------

    def emit(self, record: Dict) -> None:
        """Trace-sink interface: retain a finished span record."""
        with self._lock:
            self._spans.append(record)

    def record_event(self, kind: str, **fields) -> Dict:
        """Append a structured event (breaker flip, kill, swap, ...).

        Non-scalar field values are stringified so the ring is always
        JSON-serializable; a ``t`` wall-clock timestamp is stamped here.
        Returns the event dict (useful in tests).
        """
        event = {"kind": str(kind), "t": self._clock()}
        for key, val in fields.items():
            if val is None or isinstance(val, (str, int, float, bool)):
                event[key] = val
            else:
                event[key] = str(val)
        with self._lock:
            self._events.append(event)
        return event

    # -- inspection ----------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "spans": len(self._spans),
                "events": len(self._events),
                "bundles_written": self.bundles_written,
                "recent_events": list(self._events)[-5:],
            }

    def events(self, kind: Optional[str] = None) -> List[Dict]:
        with self._lock:
            evs = list(self._events)
        if kind is not None:
            evs = [e for e in evs if e["kind"] == kind]
        return evs

    def spans(self) -> List[Dict]:
        with self._lock:
            return list(self._spans)

    # -- postmortem bundles --------------------------------------------------

    def build_bundle(self, trigger: str, *, trace_id: Optional[str] = None,
                     extra: Optional[Dict] = None) -> Dict:
        """Assemble (but do not write) a postmortem bundle dict."""
        with self._lock:
            spans = list(self._spans)
            events = list(self._events)
        if trace_id is not None:
            # the affected request's spans first, rest of the ring after
            hit = [s for s in spans if s.get("trace_id") == trace_id]
            miss = [s for s in spans if s.get("trace_id") != trace_id]
            spans = hit + miss
        bundle = {
            "schema": SCHEMA,
            "trigger": trigger,
            "dumped_at": self._clock(),
            "pid": os.getpid(),
            "trace_id": trace_id,
            "events": events,
            "spans": spans,
        }
        if extra:
            bundle["extra"] = extra
        return bundle

    def dump(self, trigger: str, *, trace_id: Optional[str] = None,
             extra: Optional[Dict] = None,
             path: Optional[str] = None) -> Optional[str]:
        """Write a postmortem bundle; returns its path (None if nowhere
        to write: no ``path`` given and no ``dir`` configured)."""
        bundle = self.build_bundle(trigger, trace_id=trace_id, extra=extra)
        if path is None:
            if self.dir is None:
                return None
            os.makedirs(self.dir, exist_ok=True)
            with self._lock:
                self._seq += 1
                seq = self._seq
            safe = "".join(c if (c.isalnum() or c in "-_.") else "_"
                           for c in trigger)
            path = os.path.join(self.dir, f"flight-{safe}-{seq:04d}.json")
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(bundle, fh)
        os.replace(tmp, path)
        self.bundles_written += 1
        if self.dir is not None:
            self._prune()
        return path

    def _prune(self) -> None:
        try:
            names = sorted(
                n for n in os.listdir(self.dir)
                if n.startswith("flight-") and n.endswith(".json")
            )
        except OSError:
            return
        for name in names[:-self._max_bundles] if self._max_bundles else names:
            try:
                os.remove(os.path.join(self.dir, name))
            except OSError:
                pass

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._events.clear()


def load_bundle(path: str) -> Dict:
    """Read a postmortem bundle back (raises on schema mismatch)."""
    with open(path) as fh:
        bundle = json.load(fh)
    if bundle.get("schema") != SCHEMA:
        raise ValueError(
            f"not a flight-recorder bundle (schema={bundle.get('schema')!r})"
        )
    return bundle
