"""Promtool-style parser/validator for Prometheus text exposition.

The repo exposes metrics in the Prometheus text format
(:meth:`~repro.obs.registry.Registry.render_prometheus`) but cannot
depend on ``promtool`` in CI, so this module reimplements the subset of
its ``check metrics`` pass the tests need: parse an exposition into
metric families, then check the structural invariants a scraper relies
on -- label syntax, histogram bucket monotonicity, ``+Inf`` bucket ==
``_count``, ``_sum``/``_count`` presence.

Used three ways:

- the promtool-style conformance test (``tests/obs/test_promparse.py``)
  parses live server expositions and asserts zero findings;
- ``python -m repro.obs top`` scrapes an endpoint and renders the
  parsed samples;
- ad-hoc debugging (``parse_text`` on any scrape body).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Sample", "MetricFamily", "ParseError", "parse_text", "validate"]

_METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# one label pair inside the braces: name="value" with \" \\ \n escapes
_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class ParseError(ValueError):
    """A line the text format does not allow (carries the line number)."""

    def __init__(self, lineno: int, line: str, reason: str):
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


@dataclass
class Sample:
    """One time series sample: name + label set + value."""

    name: str
    labels: Dict[str, str]
    value: float

    def label_key(self, drop: Tuple[str, ...] = ()) -> Tuple:
        return tuple(sorted(
            (k, v) for k, v in self.labels.items() if k not in drop
        ))


@dataclass
class MetricFamily:
    """All samples sharing one base metric name, plus TYPE/HELP."""

    name: str
    kind: Optional[str] = None        # counter | gauge | histogram | ...
    help: Optional[str] = None
    samples: List[Sample] = field(default_factory=list)


def _base_name(sample_name: str, kind: Optional[str]) -> str:
    if kind == "histogram":
        for suffix in _HISTOGRAM_SUFFIXES:
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
    return sample_name


def _unescape(value: str) -> str:
    return (value.replace("\\\\", "\x00").replace('\\"', '"')
            .replace("\\n", "\n").replace("\x00", "\\"))


def _parse_labels(body: str, lineno: int, line: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _PAIR_RE.match(body, pos)
        if match is None:
            raise ParseError(lineno, line, "malformed label pair")
        labels[match.group(1)] = _unescape(match.group(2))
        pos = match.end()
        if pos < len(body) and body[pos] == ",":
            pos += 1
    return labels


def _parse_value(text: str, lineno: int, line: str) -> float:
    text = text.strip()
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise ParseError(lineno, line, "unparsable sample value") from None


def parse_text(text: str) -> Dict[str, MetricFamily]:
    """Parse a text exposition into ``{base_name: MetricFamily}``.

    Raises :class:`ParseError` on any line that is not a comment, a
    ``# TYPE``/``# HELP`` directive, a blank, or a well-formed sample.
    Histogram component series (``_bucket``/``_sum``/``_count``) fold
    into the base family declared by their ``# TYPE`` line.
    """
    families: Dict[str, MetricFamily] = {}
    # metric name -> declared kind, so samples find their family even
    # when the histogram suffix changes the sample name
    declared: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                name = parts[2]
                if not _METRIC_RE.match(name):
                    raise ParseError(lineno, raw, "bad metric name")
                fam = families.setdefault(name, MetricFamily(name))
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    fam.kind = kind
                    declared[name] = kind
                else:
                    fam.help = parts[3] if len(parts) > 3 else ""
            continue
        # sample line: name[{labels}] value [timestamp]
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ParseError(lineno, raw, "unbalanced braces")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1:close], lineno, raw)
            rest = line[close + 1:]
        else:
            bits = line.split(None, 1)
            if len(bits) != 2:
                raise ParseError(lineno, raw, "missing sample value")
            name, rest = bits
            labels = {}
        if not _METRIC_RE.match(name):
            raise ParseError(lineno, raw, "bad metric name")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ParseError(lineno, raw, "bad label name")
        value = _parse_value(rest.split()[0] if rest.split() else "",
                             lineno, raw)
        base = name
        for candidate in (_base_name(name, "histogram"), name):
            if declared.get(candidate) == "histogram":
                base = candidate
                break
        fam = families.setdefault(base, MetricFamily(base))
        fam.samples.append(Sample(name, labels, value))
    return families


def validate(families: Dict[str, MetricFamily]) -> List[str]:
    """Promtool-style lint: return a list of findings (empty = clean).

    Checks, per family:

    - every sample family has a ``# TYPE`` line;
    - counter/gauge samples use the bare family name;
    - histogram series per label set: ``le`` present and parsable on
      every ``_bucket``, cumulative counts non-decreasing in ``le``
      order, a ``+Inf`` bucket exists and equals ``_count``, and both
      ``_sum`` and ``_count`` are present;
    - counter values are finite and non-negative.
    """
    findings: List[str] = []
    for base, fam in families.items():
        if fam.kind is None:
            findings.append(f"{base}: no # TYPE line")
            continue
        if fam.kind in ("counter", "gauge"):
            for sample in fam.samples:
                if sample.name != base:
                    findings.append(
                        f"{base}: unexpected series {sample.name!r} "
                        f"for a {fam.kind}"
                    )
                elif fam.kind == "counter" and (
                    sample.value < 0 or math.isnan(sample.value)
                ):
                    findings.append(
                        f"{base}: counter value {sample.value} "
                        f"(labels {sample.labels})"
                    )
            continue
        if fam.kind != "histogram":
            continue
        # histogram: group component series by the non-le label set
        series: Dict[Tuple, Dict] = {}
        for sample in fam.samples:
            key = sample.label_key(drop=("le",))
            group = series.setdefault(
                key, {"buckets": [], "sum": None, "count": None}
            )
            if sample.name == base + "_bucket":
                le = sample.labels.get("le")
                if le is None:
                    findings.append(
                        f"{base}: _bucket without le (labels "
                        f"{sample.labels})"
                    )
                    continue
                bound = math.inf if le == "+Inf" else None
                if bound is None:
                    try:
                        bound = float(le)
                    except ValueError:
                        findings.append(f"{base}: unparsable le={le!r}")
                        continue
                group["buckets"].append((bound, sample.value))
            elif sample.name == base + "_sum":
                group["sum"] = sample.value
            elif sample.name == base + "_count":
                group["count"] = sample.value
            else:
                findings.append(
                    f"{base}: unexpected series {sample.name!r} "
                    f"for a histogram"
                )
        for key, group in series.items():
            where = f"{base}{dict(key) if key else ''}"
            buckets = sorted(group["buckets"])
            if not buckets:
                findings.append(f"{where}: histogram with no buckets")
                continue
            last = -1.0
            for bound, cum in buckets:
                if cum < last:
                    findings.append(
                        f"{where}: bucket counts not cumulative at "
                        f"le={bound}"
                    )
                last = cum
            if buckets[-1][0] != math.inf:
                findings.append(f"{where}: missing le=\"+Inf\" bucket")
            if group["count"] is None:
                findings.append(f"{where}: missing _count")
            elif buckets[-1][0] == math.inf and (
                buckets[-1][1] != group["count"]
            ):
                findings.append(
                    f"{where}: +Inf bucket ({buckets[-1][1]}) != _count "
                    f"({group['count']})"
                )
            if group["sum"] is None:
                findings.append(f"{where}: missing _sum")
    return findings
