"""``python -m repro.obs`` -- observability CLI (see repro.obs.report)."""

import sys

from repro.obs.report import main

if __name__ == "__main__":
    sys.exit(main())
