"""Process-wide metric registry: counters, gauges, histograms, families.

This is the one metrics implementation in the repo.  The serving
layer's :class:`~repro.serve.metrics.MetricsHub` delegates here, the
tracing layer (:mod:`repro.obs.trace`) aggregates finished spans here,
and :func:`Registry.render_prometheus` exposes everything in the
Prometheus text format.

Design constraints, in order:

1. **Thread-safe.**  Every instrument is hammered from worker threads
   (the serve :class:`~repro.serve.workers.WorkerPool`, encode thread
   pools), so every read-modify-write holds a per-instrument lock.
2. **Lock-cheap.**  The locks are plain uncontended
   :class:`threading.Lock` acquisitions around a handful of scalar ops
   -- tens of nanoseconds -- and family/child lookup after creation is
   a dict hit cached by the caller.  Nothing global serializes two
   different instruments.
3. **Labeled families.**  ``registry.counter("encode_samples",
   labels=("engine",)).labels(engine="packed").inc()`` keeps one time
   series per label combination, mirroring the Prometheus data model
   without the dependency.

All snapshots are plain JSON-serializable dicts.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "Registry",
    "REGISTRY",
    "get_registry",
]


# -- instruments (the per-label-set children) --------------------------------


class Counter:
    """Monotonically increasing event counter (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        # locked fast path: one add under an uncontended lock.  A bare
        # ``self._value += n`` is a read-modify-write that loses counts
        # under concurrent workers (and CPython only makes it atomic by
        # accident of the eval loop, not by contract).
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def state(self) -> Dict[str, float]:
        """Serializable full state (see :meth:`Registry.state`)."""
        with self._lock:
            return {"value": self._value}

    def load_state(self, state: Dict[str, float]) -> None:
        """Replace this instrument's state with a serialized one."""
        with self._lock:
            self._value = int(state["value"])


class Gauge:
    """A point-in-time value (queue depth, shed level); tracks its max."""

    __slots__ = ("_lock", "_value", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += float(n)
            if self._value > self._max:
                self._max = self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    def state(self) -> Dict[str, float]:
        with self._lock:
            return {"value": self._value, "max": self._max}

    def load_state(self, state: Dict[str, float]) -> None:
        with self._lock:
            self._value = float(state["value"])
            self._max = float(state.get("max", self._value))


class Histogram:
    """Log-bucketed histogram over non-negative values (thread-safe).

    Buckets grow geometrically from ``least`` by ``growth`` per bucket
    (the defaults cover 1 us .. ~100 s at ~24 buckets per decade);
    values above the top bucket land in a final overflow bucket whose
    reported bound is the largest recorded value.  ``record`` sits
    under every enabled span (the ``span_seconds`` aggregate), so the
    bucket index is computed in O(1) from the geometric structure --
    one ``math.log`` plus a float-error fix-up against the real bounds
    -- instead of a Python-loop binary search.  Percentile queries
    never retain raw samples.
    """

    def __init__(self, least: float = 1e-6, growth: float = 1.35,
                 buckets: int = 64) -> None:
        self._lock = threading.Lock()
        self._bounds = [least * growth ** i for i in range(buckets)]
        self._counts = [0] * (buckets + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0
        self._log_least = math.log(least)
        self._log_growth = math.log(growth)

    def record(self, value: float) -> None:
        s = max(0.0, float(value))
        # first bucket whose bound >= s: log-estimate, then nudge to
        # absorb float error (and stay correct for load_state'd bounds
        # that only approximately follow the geometric formula)
        bounds = self._bounds
        n = len(bounds)
        if s <= bounds[0]:
            lo = 0
        else:
            lo = int((math.log(s) - self._log_least) / self._log_growth)
            if lo > n - 1:
                lo = n - 1
            while lo > 0 and bounds[lo - 1] >= s:
                lo -= 1
            while lo < n and bounds[lo] < s:
                lo += 1
        with self._lock:
            self._counts[lo] += 1
            self._count += 1
            self._sum += s
            self._min = min(self._min, s)
            self._max = max(self._max, s)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (0..100) from bucket bounds."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = p / 100.0 * self._count
            seen = 0.0
            for i, c in enumerate(self._counts):
                seen += c
                if seen >= rank and c:
                    upper = (self._bounds[i] if i < len(self._bounds)
                             else self._max)
                    return min(upper, self._max)
            return self._max

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "min_s": 0.0 if self.count == 0 else self._min,
            "max_s": self._max,
        }

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs for exposition.

        Prometheus-style: counts are cumulative and the final pair has
        bound ``math.inf`` (rendered as ``+Inf``) carrying the total
        count.  Empty buckets that do not change the cumulative count
        are skipped -- for a 64-bucket log histogram with a handful of
        occupied buckets this keeps exposition near-minimal while
        remaining valid (Prometheus only requires the ``+Inf`` bucket
        and monotone cumulative counts).
        """
        with self._lock:
            pairs: List[Tuple[float, int]] = []
            running = 0
            for i, c in enumerate(self._counts):
                if c:
                    running += c
                    bound = (self._bounds[i] if i < len(self._bounds)
                             else math.inf)
                    if bound is not math.inf:
                        pairs.append((bound, running))
            pairs.append((math.inf, self._count))
            return pairs

    def state(self) -> Dict[str, object]:
        """Full bucket state, enough to reconstruct the histogram."""
        with self._lock:
            return {
                "bounds": list(self._bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": None if self._count == 0 else self._min,
                "max": self._max,
            }

    def load_state(self, state: Dict[str, object]) -> None:
        with self._lock:
            self._bounds = [float(b) for b in state["bounds"]]
            self._counts = [int(c) for c in state["counts"]]
            self._count = int(state["count"])
            self._sum = float(state["sum"])
            mn = state.get("min")
            self._min = math.inf if mn is None else float(mn)
            self._max = float(state["max"])
            # re-derive the log-index estimate from the loaded bounds;
            # record()'s fix-up loops keep it exact even if they only
            # approximately follow a geometric progression
            if self._bounds and self._bounds[0] > 0:
                self._log_least = math.log(self._bounds[0])
                if len(self._bounds) > 1 and self._bounds[1] > self._bounds[0]:
                    self._log_growth = math.log(
                        self._bounds[1] / self._bounds[0]
                    )


# -- families ----------------------------------------------------------------


def _label_key(label_names: Tuple[str, ...], labels: Dict[str, str]) -> Tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Family:
    """One named metric with zero or more label dimensions.

    ``labels(**kv)`` returns (creating on first use) the child
    instrument for that label combination; with no label names the
    family has a single default child and the instrument methods
    (``inc``/``set``/``record`` ...) proxy straight to it.
    """

    _child_cls: type = Counter
    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 label_names: Iterable[str] = (), **child_kwargs):
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._child_kwargs = child_kwargs
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.label_names:
            self._children[()] = self._child_cls(**child_kwargs)

    def labels(self, **labels):
        key = _label_key(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(
                    key, self._child_cls(**self._child_kwargs)
                )
        return child

    @property
    def default(self):
        """The unlabeled child (only valid for label-less families)."""
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} has labels {self.label_names}; "
                "use .labels(...)"
            )
        return self._children[()]

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return list(self._children.items())

    def __getattr__(self, attr):
        # proxy instrument methods/properties of label-less families
        # (families store only private/_-prefixed state, so this only
        # triggers for instrument API names like inc/set/record/value)
        return getattr(self.default, attr)


class CounterFamily(_Family):
    _child_cls = Counter
    kind = "counter"


class GaugeFamily(_Family):
    _child_cls = Gauge
    kind = "gauge"


class HistogramFamily(_Family):
    _child_cls = Histogram
    kind = "histogram"


# -- registry ----------------------------------------------------------------


def _sanitize(name: str) -> str:
    """Make a metric name legal for the Prometheus text format."""
    out = [c if (c.isalnum() or c in "_:") else "_" for c in name]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


class Registry:
    """Named collection of metric families.

    ``counter``/``gauge``/``histogram`` get-or-create a family; asking
    again with the same name returns the same family (label names must
    match).  The process-global instance is :data:`REGISTRY`; the serve
    layer instantiates private registries per server so concurrent
    servers do not mix their metrics.
    """

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        #: bumped by :meth:`clear`; callers that cache family/child
        #: lookups (the span aggregation fast path) compare this to
        #: invalidate without re-doing the dict walk per event
        self.generation = 0

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Iterable[str], **child_kwargs):
        labels = tuple(labels)
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = cls(name, help=help, label_names=labels, **child_kwargs)
                self._families[name] = fam
                return fam
        if not isinstance(fam, cls):
            raise ValueError(
                f"metric {name!r} already registered as a {fam.kind}"
            )
        if labels and fam.label_names != labels:
            raise ValueError(
                f"metric {name!r} registered with labels {fam.label_names}, "
                f"requested {labels}"
            )
        return fam

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> CounterFamily:
        return self._get_or_create(CounterFamily, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> GaugeFamily:
        return self._get_or_create(GaugeFamily, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (), **hist_kwargs) -> HistogramFamily:
        return self._get_or_create(
            HistogramFamily, name, help, labels, **hist_kwargs
        )

    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    def clear(self) -> None:
        """Drop every family (test isolation helper)."""
        with self._lock:
            self._families.clear()
            self.generation += 1

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict dump of every metric (JSON-serializable).

        Label-less children appear under the bare family name; labeled
        children under ``name{k=v,...}``.
        """
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for fam in self.families():
            section = out[fam.kind + "s"]
            for key, child in fam.children():
                if key:
                    label_str = ",".join(
                        f"{k}={v}" for k, v in zip(fam.label_names, key)
                    )
                    cname = f"{fam.name}{{{label_str}}}"
                else:
                    cname = fam.name
                if fam.kind == "counter":
                    section[cname] = child.value
                elif fam.kind == "gauge":
                    section[cname] = {"value": child.value, "max": child.max}
                else:
                    section[cname] = child.snapshot()
        return out

    # -- cross-process aggregation -------------------------------------------

    def state(self) -> Dict[str, object]:
        """Full serializable state of every family and child.

        Unlike :meth:`snapshot` (a human/JSON summary), ``state``
        round-trips exactly: histogram bucket counts travel whole, so a
        parent process can :meth:`absorb_state` a worker's registry and
        still answer percentile queries.  Used by the sharded serving
        layer, where each worker process keeps a local registry and the
        parent periodically pulls and re-labels it.
        """
        fams = []
        for fam in self.families():
            children = [
                {"labels": list(key), "state": child.state()}
                for key, child in fam.children()
            ]
            fams.append({
                "name": fam.name, "kind": fam.kind, "help": fam.help,
                "label_names": list(fam.label_names), "children": children,
            })
        return {"namespace": self.namespace, "families": fams}

    def absorb_state(self, state: Dict[str, object],
                     extra_labels: Optional[Dict[str, str]] = None) -> None:
        """Merge another registry's :meth:`state` into this one.

        ``extra_labels`` (e.g. ``{"shard": "2"}``) are appended as
        label dimensions, keeping each source process's series
        distinct.  Semantics are **replacement**, not accumulation: a
        child series from the source overwrites the same-labeled child
        here, so absorbing successive snapshots from a live worker is
        idempotent and never double-counts.
        """
        extra = {k: str(v) for k, v in (extra_labels or {}).items()}
        extra_names = tuple(extra)
        extra_values = tuple(extra.values())
        cls_by_kind = {"counter": CounterFamily, "gauge": GaugeFamily,
                       "histogram": HistogramFamily}
        for fstate in state.get("families", []):
            cls = cls_by_kind[fstate["kind"]]
            label_names = tuple(fstate.get("label_names", ())) + extra_names
            fam = self._get_or_create(
                cls, fstate["name"], fstate.get("help", ""), label_names
            )
            for cstate in fstate.get("children", []):
                key = tuple(str(v) for v in cstate["labels"]) + extra_values
                with fam._lock:
                    child = fam._children.get(key)
                    if child is None:
                        child = fam._child_cls(**fam._child_kwargs)
                        fam._children[key] = child
                child.load_state(cstate["state"])

    def render_prometheus(self) -> str:
        """Prometheus text-format exposition of every family.

        Counters and gauges render directly.  Histograms render as
        proper ``TYPE histogram`` families: cumulative ``_bucket``
        series with ``le`` upper bounds (ending at ``le="+Inf"``) plus
        ``_sum`` and ``_count`` -- the scrape-conformant shape
        ``histogram_quantile()`` expects.  Empty log buckets are elided
        (cumulative counts are unchanged by them), keeping the output
        compact for 64-bucket histograms.
        """
        prefix = _sanitize(self.namespace) + "_" if self.namespace else ""
        lines: List[str] = []
        for fam in self.families():
            name = prefix + _sanitize(fam.name)
            if fam.help:
                lines.append(f"# HELP {name} {fam.help}")
            lines.append(f"# TYPE {name} {fam.kind}")
            for key, child in fam.children():
                pairs = [
                    f'{_sanitize(k)}="{_escape_label(v)}"'
                    for k, v in zip(fam.label_names, key)
                ]

                def fmt(extra: str = "", value: float = 0.0,
                        metric: str = name) -> str:
                    all_pairs = pairs + ([extra] if extra else [])
                    label_str = "{" + ",".join(all_pairs) + "}" if all_pairs else ""
                    return f"{metric}{label_str} {value}"

                if fam.kind == "counter":
                    lines.append(fmt(value=child.value))
                elif fam.kind == "gauge":
                    lines.append(fmt(value=child.value))
                else:
                    for bound, cum in child.cumulative_buckets():
                        le = "+Inf" if bound == math.inf else repr(bound)
                        lines.append(
                            fmt(f'le="{le}"', cum, metric=name + "_bucket")
                        )
                    lines.append(fmt(value=child.sum, metric=name + "_sum"))
                    lines.append(fmt(value=child.count, metric=name + "_count"))
        return "\n".join(lines) + ("\n" if lines else "")


#: the process-global default registry (tracing aggregates land here)
REGISTRY = Registry()


def get_registry() -> Registry:
    return REGISTRY
