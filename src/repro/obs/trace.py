"""Nestable spans with op/byte accounting and near-zero disabled cost.

Tracing is **off by default**.  Every instrumented hot path calls
``trace.span(...)``; while disabled this returns a shared no-op object
whose ``__enter__``/``__exit__``/``add_ops`` do nothing, so the cost of
shipping instrumentation is one module-attribute call and a branch --
:mod:`benchmarks.bench_obs` pins it below 2% on the encode and retrain
hot paths.

When enabled (:func:`enable_tracing`), each span records wall time, the
logical operation counts attached via :meth:`Span.add_ops` (XOR / add /
mul ops and bytes moved -- the same currencies as
:class:`repro.core.encoders.base.OpProfile`), and arbitrary attributes.
Finished spans are dispatched to the registered sinks (e.g. the JSONL
sink of :mod:`repro.obs.export`) and aggregated into the process-global
:data:`~repro.obs.registry.REGISTRY` as ``span_seconds`` /
``span_ops_total`` / ``span_bytes_total`` families, which
``render_prometheus`` then exposes.

The enabled path is engineered flat (the ``span_ns.enabled`` number in
``BENCH_obs.json`` gates it in CI): finished :class:`Span` objects are
recycled through a small per-thread free list instead of re-allocated,
the sink list is pre-resolved into a tuple snapshot on every mutation
(no per-span list copy), and the registry instruments spans aggregate
into are resolved once and cached until :meth:`Registry.clear` bumps
the registry generation.  The one observable consequence of pooling: a
``Span`` kept past its ``with`` block may be re-initialized by the next
span on the same thread, so read ``sp.seconds`` before opening another.

Span nesting is tracked per thread: a span opened inside another span
records its parent's dotted path, so the report tool can distinguish
``train/train.epoch`` from a bare ``train.epoch``.  On top of the
path, spans carry **distributed identity** when a
:class:`~repro.obs.distributed.TraceContext` is active (see
:mod:`repro.obs.distributed`): a top-level span opened while a context
is set adopts its ``trace_id`` and parents under its ``span_id``, and
every identified span mints its own 64-bit ``span_id`` -- that is how a
request's spans re-assemble across the serving fleet's threads *and*
processes.  Worker processes start with tracing disabled unless their
parent propagates state at spawn (the sharded server and the eval
harness both do); their spans travel back as plain record dicts and
re-enter the parent's sinks through :func:`emit_foreign`.

Usage::

    with span("encode", engine="packed", samples=256) as sp:
        out = kernel.encode_bins(bins)
        if sp.recording:
            sp.add_ops(xor_ops=..., add_ops=..., mem_bytes=...)

    @traced("policy.tick")
    def observe(...): ...
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import distributed as _distributed
from repro.obs import registry as _registry

__all__ = [
    "Span",
    "span",
    "emit_span",
    "emit_foreign",
    "traced",
    "current_span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "tracing_state",
    "add_sink",
    "remove_sink",
    "reset",
]

_enabled = False
_sinks: List[object] = []
#: pre-resolved snapshot of ``_sinks`` -- rebuilt on every mutation so
#: the per-span dispatch loop never copies the list
_active: Tuple[object, ...] = ()
_state = threading.local()  # per-thread span stack, pool, cached names

#: spans kept on each thread's free list
_POOL_MAX = 32


# -- the disabled path -------------------------------------------------------


class _NoopSpan:
    """Shared, stateless stand-in returned while tracing is disabled."""

    __slots__ = ()
    recording = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add_ops(self, **counts) -> None:
        pass

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


# -- live spans --------------------------------------------------------------


class Span:
    """One timed, op-accounted region of work."""

    __slots__ = ("name", "attrs", "path", "ops", "t0", "seconds",
                 "trace_id", "span_id", "parent_id")
    recording = True

    def __init__(self, name: str, attrs: Dict):
        self.name = name
        self.attrs = attrs
        self.path = name
        self.ops: Dict[str, int] = {}
        self.t0 = 0.0
        self.seconds = 0.0
        self.trace_id: Optional[int] = None
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None

    def _reinit(self, name: str, attrs: Dict) -> "Span":
        self.name = name
        self.attrs = attrs
        self.path = name
        self.ops = {}
        self.t0 = 0.0
        self.seconds = 0.0
        self.trace_id = None
        self.span_id = None
        self.parent_id = None
        return self

    def add_ops(self, *, xor_ops: int = 0, add_ops: int = 0,
                mul_ops: int = 0, mem_bytes: int = 0, **extra) -> None:
        """Accumulate logical operation counts onto this span."""
        for key, val in (("xor_ops", xor_ops), ("add_ops", add_ops),
                         ("mul_ops", mul_ops), ("mem_bytes", mem_bytes)):
            if val:
                self.ops[key] = self.ops.get(key, 0) + int(val)
        for key, val in extra.items():
            self.ops[key] = self.ops.get(key, 0) + int(val)

    def set(self, **attrs) -> None:
        """Attach or overwrite span attributes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = getattr(_state, "stack", None)
        if stack is None:
            stack = _state.stack = []
        if stack:
            parent = stack[-1]
            self.path = parent.path + "/" + self.name
            if parent.trace_id is not None:
                self.trace_id = parent.trace_id
                self.parent_id = parent.span_id
        else:
            ctx = _distributed.current_context()
            if ctx is not None:
                self.trace_id = ctx.trace_id
                self.parent_id = ctx.span_id
        if self.trace_id is not None:
            self.span_id = _distributed.new_span_id()
        stack.append(self)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self.t0
        stack = getattr(_state, "stack", None)
        if stack and stack[-1] is self:
            stack.pop()
        _finish(self, error=exc_type is not None)
        pool = getattr(_state, "pool", None)
        if pool is None:
            pool = _state.pool = []
        if len(pool) < _POOL_MAX:
            pool.append(self)
        return False


def _thread_name() -> str:
    name = getattr(_state, "tname", None)
    if name is None:
        name = _state.tname = threading.current_thread().name
    return name


# instruments the span aggregates land in, resolved once per registry
# generation (Registry.clear bumps it) instead of per span
_agg = {"gen": -1, "hist": None, "ops": None, "bytes": None,
        "hist_children": {}, "ops_children": {}, "bytes_children": {}}


def _refresh_agg(reg) -> None:
    _agg["gen"] = reg.generation
    _agg["hist"] = reg.histogram(
        "span_seconds", help="wall time of traced spans", labels=("name",)
    )
    _agg["ops"] = reg.counter(
        "span_ops_total", help="logical ops recorded by traced spans",
        labels=("name", "op"),
    )
    _agg["bytes"] = reg.counter(
        "span_bytes_total", help="bytes moved by traced spans",
        labels=("name",),
    )
    _agg["hist_children"] = {}
    _agg["ops_children"] = {}
    _agg["bytes_children"] = {}


def _aggregate(name: str, seconds: float,
               ops: Optional[Dict[str, int]]) -> None:
    reg = _registry.REGISTRY
    if _agg["gen"] != reg.generation:
        _refresh_agg(reg)
    child = _agg["hist_children"].get(name)
    if child is None:
        child = _agg["hist_children"][name] = _agg["hist"].labels(name=name)
    child.record(seconds)
    if ops:
        for op in ("xor_ops", "add_ops", "mul_ops"):
            count = ops.get(op)
            if count:
                key = (name, op)
                ctr = _agg["ops_children"].get(key)
                if ctr is None:
                    ctr = _agg["ops_children"][key] = _agg["ops"].labels(
                        name=name, op=op
                    )
                ctr.inc(count)
        mem = ops.get("mem_bytes")
        if mem:
            ctr = _agg["bytes_children"].get(name)
            if ctr is None:
                ctr = _agg["bytes_children"][name] = _agg["bytes"].labels(
                    name=name
                )
            ctr.inc(mem)


def _finish(sp: Span, error: bool) -> None:
    record = {
        "name": sp.name,
        "path": sp.path,
        "seconds": sp.seconds,
        "thread": _thread_name(),
    }
    if sp.trace_id is not None:
        record["trace_id"] = _distributed.fmt_id(sp.trace_id)
        record["span_id"] = _distributed.fmt_id(sp.span_id)
        if sp.parent_id is not None:
            record["parent_span_id"] = _distributed.fmt_id(sp.parent_id)
        record["pid"] = os.getpid()
    if sp.attrs:
        record["attrs"] = sp.attrs
    if sp.ops:
        record["ops"] = sp.ops
    if error:
        record["error"] = True
    _aggregate(sp.name, sp.seconds, sp.ops if sp.ops else None)
    for sink in _active:
        try:
            sink.emit(record)
        except Exception:
            # a broken sink must never take down the traced workload
            pass


# -- public API --------------------------------------------------------------


def span(name: str, **attrs):
    """Open a span named ``name``; no-op unless tracing is enabled."""
    if not _enabled:
        return _NOOP
    pool = getattr(_state, "pool", None)
    if pool:
        return pool.pop()._reinit(name, attrs)
    return Span(name, attrs)


def emit_span(name: str, seconds: float,
              attrs: Optional[Dict] = None,
              ops: Optional[Dict[str, int]] = None,
              ctx=None, span_id: Optional[int] = None) -> None:
    """Record an already-timed region as a finished span.

    For loop-structured hot paths (retraining epochs) where wrapping the
    body in a context manager would force awkward restructuring: the
    caller measures ``seconds`` itself and emits one span per iteration.
    No-op while tracing is disabled.

    ``ctx`` (a :class:`~repro.obs.distributed.TraceContext`) attaches
    distributed identity explicitly -- the serving layer uses this for
    spans whose open and close happen on different threads (the
    ``serve.request`` root and the dispatcher's ``serve.dispatch``
    bracket).  ``span_id`` pins the emitted span's own id so children
    that already referenced it stay correctly parented; by default a
    fresh id is minted.  When ``ctx`` is a root context
    (``span_id == ctx.span_id``), pass ``span_id=ctx.span_id`` and the
    span is emitted as the trace root (no parent).
    """
    if not _enabled:
        return
    sp = Span(name, dict(attrs) if attrs else {})
    stack = getattr(_state, "stack", None)
    if stack:
        sp.path = stack[-1].path + "/" + name
    if ctx is not None:
        sp.trace_id = ctx.trace_id
        if span_id is not None and span_id == ctx.span_id:
            sp.span_id = span_id          # the root span itself
        else:
            sp.parent_id = ctx.span_id
            sp.span_id = (span_id if span_id is not None
                          else _distributed.new_span_id())
    elif stack and stack[-1].trace_id is not None:
        sp.trace_id = stack[-1].trace_id
        sp.parent_id = stack[-1].span_id
        sp.span_id = _distributed.new_span_id()
    sp.seconds = float(seconds)
    if ops:
        sp.ops = {k: int(v) for k, v in ops.items() if v}
    _finish(sp, error=False)


def emit_foreign(record: Dict, aggregate: bool = False) -> None:
    """Re-emit a finished span record produced by *another process*.

    The sharded collector and the eval harness ship worker span records
    (plain dicts) back to the parent; this dispatches them to the
    parent's sinks so one ``--trace out.jsonl`` holds the whole fleet.
    ``aggregate=True`` additionally folds the span into the local
    registry's ``span_seconds``/``span_ops_total`` families -- used by
    the eval harness, whose child registries are discarded; the sharded
    server leaves it off because worker registries are absorbed
    wholesale (with shard labels) through ``shard_stats``.
    """
    if not _enabled:
        return
    if aggregate:
        _aggregate(record.get("name", "?"), float(record.get("seconds", 0.0)),
                   record.get("ops") or None)
    for sink in _active:
        try:
            sink.emit(record)
        except Exception:
            pass


def traced(name: Optional[str] = None, **attrs) -> Callable:
    """Decorator form: trace every call of the wrapped function."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with span(span_name, **attrs):
                return fn(*args, **kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


def current_span():
    """The innermost live span of this thread, or ``None``."""
    stack = getattr(_state, "stack", None)
    return stack[-1] if stack else None


def tracing_enabled() -> bool:
    return _enabled


def tracing_state() -> Dict[str, object]:
    """Picklable description of the tracing setup, for child processes.

    Spawning layers (the sharded server, the eval harness) capture this
    in the parent and re-apply the ``enabled`` flag on the child side,
    so ``--trace out.jsonl`` runs capture worker spans without manual
    re-enable.  Sinks themselves are not shipped -- children buffer
    span records and ship them back for :func:`emit_foreign`.
    """
    return {"enabled": _enabled}


def _rebuild_active() -> None:
    global _active
    _active = tuple(_sinks)


def enable_tracing(*sinks: object) -> None:
    """Turn tracing on, optionally registering sinks (``.emit(dict)``)."""
    global _enabled
    for sink in sinks:
        if sink not in _sinks:
            _sinks.append(sink)
    _rebuild_active()
    _enabled = True


def disable_tracing() -> None:
    """Turn tracing off (sinks stay registered until removed)."""
    global _enabled
    _enabled = False


def add_sink(sink: object) -> None:
    if sink not in _sinks:
        _sinks.append(sink)
        _rebuild_active()


def remove_sink(sink: object) -> None:
    if sink in _sinks:
        _sinks.remove(sink)
        _rebuild_active()


def reset() -> None:
    """Disable tracing and drop every sink (test isolation helper)."""
    global _enabled
    _enabled = False
    del _sinks[:]
    _rebuild_active()
    _agg["gen"] = -1
    if getattr(_state, "stack", None):
        _state.stack = []
    _distributed.clear_context()
