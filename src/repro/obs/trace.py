"""Nestable spans with op/byte accounting and near-zero disabled cost.

Tracing is **off by default**.  Every instrumented hot path calls
``trace.span(...)``; while disabled this returns a shared no-op object
whose ``__enter__``/``__exit__``/``add_ops`` do nothing, so the cost of
shipping instrumentation is one module-attribute call and a branch --
:mod:`benchmarks.bench_obs` pins it below 2% on the encode and retrain
hot paths.

When enabled (:func:`enable_tracing`), each span records wall time, the
logical operation counts attached via :meth:`Span.add_ops` (XOR / add /
mul ops and bytes moved -- the same currencies as
:class:`repro.core.encoders.base.OpProfile`), and arbitrary attributes.
Finished spans are dispatched to the registered sinks (e.g. the JSONL
sink of :mod:`repro.obs.export`) and aggregated into the process-global
:data:`~repro.obs.registry.REGISTRY` as ``span_seconds`` /
``span_ops_total`` / ``span_bytes_total`` families, which
``render_prometheus`` then exposes.

Span nesting is tracked per thread: a span opened inside another span
records its parent's dotted path, so the report tool can distinguish
``train/train.epoch`` from a bare ``train.epoch``.  Worker threads and
forked eval processes start with an empty stack (and child processes
start with tracing disabled -- spans never cross the process boundary).

Usage::

    with span("encode", engine="packed", samples=256) as sp:
        out = kernel.encode_bins(bins)
        if sp.recording:
            sp.add_ops(xor_ops=..., add_ops=..., mem_bytes=...)

    @traced("policy.tick")
    def observe(...): ...
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.obs import registry as _registry

__all__ = [
    "Span",
    "span",
    "emit_span",
    "traced",
    "current_span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "add_sink",
    "remove_sink",
    "reset",
]

_enabled = False
_sinks: List[object] = []
_state = threading.local()  # per-thread span stack


# -- the disabled path -------------------------------------------------------


class _NoopSpan:
    """Shared, stateless stand-in returned while tracing is disabled."""

    __slots__ = ()
    recording = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add_ops(self, **counts) -> None:
        pass

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


# -- live spans --------------------------------------------------------------


class Span:
    """One timed, op-accounted region of work."""

    __slots__ = ("name", "attrs", "path", "ops", "t0", "seconds")
    recording = True

    def __init__(self, name: str, attrs: Dict):
        self.name = name
        self.attrs = attrs
        self.path = name
        self.ops: Dict[str, int] = {}
        self.t0 = 0.0
        self.seconds = 0.0

    def add_ops(self, *, xor_ops: int = 0, add_ops: int = 0,
                mul_ops: int = 0, mem_bytes: int = 0, **extra) -> None:
        """Accumulate logical operation counts onto this span."""
        for key, val in (("xor_ops", xor_ops), ("add_ops", add_ops),
                         ("mul_ops", mul_ops), ("mem_bytes", mem_bytes)):
            if val:
                self.ops[key] = self.ops.get(key, 0) + int(val)
        for key, val in extra.items():
            self.ops[key] = self.ops.get(key, 0) + int(val)

    def set(self, **attrs) -> None:
        """Attach or overwrite span attributes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = getattr(_state, "stack", None)
        if stack is None:
            stack = _state.stack = []
        if stack:
            self.path = stack[-1].path + "/" + self.name
        stack.append(self)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self.t0
        stack = getattr(_state, "stack", None)
        if stack and stack[-1] is self:
            stack.pop()
        _finish(self, error=exc_type is not None)
        return False


def _finish(sp: Span, error: bool) -> None:
    record = {
        "name": sp.name,
        "path": sp.path,
        "seconds": sp.seconds,
        "thread": threading.current_thread().name,
    }
    if sp.attrs:
        record["attrs"] = sp.attrs
    if sp.ops:
        record["ops"] = sp.ops
    if error:
        record["error"] = True
    reg = _registry.REGISTRY
    reg.histogram(
        "span_seconds", help="wall time of traced spans", labels=("name",)
    ).labels(name=sp.name).record(sp.seconds)
    if sp.ops:
        ops_fam = reg.counter(
            "span_ops_total", help="logical ops recorded by traced spans",
            labels=("name", "op"),
        )
        for op in ("xor_ops", "add_ops", "mul_ops"):
            if sp.ops.get(op):
                ops_fam.labels(name=sp.name, op=op).inc(sp.ops[op])
        if sp.ops.get("mem_bytes"):
            reg.counter(
                "span_bytes_total", help="bytes moved by traced spans",
                labels=("name",),
            ).labels(name=sp.name).inc(sp.ops["mem_bytes"])
    for sink in list(_sinks):
        try:
            sink.emit(record)
        except Exception:
            # a broken sink must never take down the traced workload
            pass


# -- public API --------------------------------------------------------------


def span(name: str, **attrs):
    """Open a span named ``name``; no-op unless tracing is enabled."""
    if not _enabled:
        return _NOOP
    return Span(name, attrs)


def emit_span(name: str, seconds: float,
              attrs: Optional[Dict] = None,
              ops: Optional[Dict[str, int]] = None) -> None:
    """Record an already-timed region as a finished span.

    For loop-structured hot paths (retraining epochs) where wrapping the
    body in a context manager would force awkward restructuring: the
    caller measures ``seconds`` itself and emits one span per iteration.
    No-op while tracing is disabled.
    """
    if not _enabled:
        return
    sp = Span(name, dict(attrs) if attrs else {})
    stack = getattr(_state, "stack", None)
    if stack:
        sp.path = stack[-1].path + "/" + name
    sp.seconds = float(seconds)
    if ops:
        sp.ops = {k: int(v) for k, v in ops.items() if v}
    _finish(sp, error=False)


def traced(name: Optional[str] = None, **attrs) -> Callable:
    """Decorator form: trace every call of the wrapped function."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with Span(span_name, dict(attrs)):
                return fn(*args, **kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


def current_span():
    """The innermost live span of this thread, or ``None``."""
    stack = getattr(_state, "stack", None)
    return stack[-1] if stack else None


def tracing_enabled() -> bool:
    return _enabled


def enable_tracing(*sinks: object) -> None:
    """Turn tracing on, optionally registering sinks (``.emit(dict)``)."""
    global _enabled
    for sink in sinks:
        if sink not in _sinks:
            _sinks.append(sink)
    _enabled = True


def disable_tracing() -> None:
    """Turn tracing off (sinks stay registered until removed)."""
    global _enabled
    _enabled = False


def add_sink(sink: object) -> None:
    if sink not in _sinks:
        _sinks.append(sink)


def remove_sink(sink: object) -> None:
    if sink in _sinks:
        _sinks.remove(sink)


def reset() -> None:
    """Disable tracing and drop every sink (test isolation helper)."""
    global _enabled
    _enabled = False
    del _sinks[:]
    if getattr(_state, "stack", None):
        _state.stack = []
