"""Cross-process trace identity: 64-bit trace/span ids and propagation.

Single-process tracing (:mod:`repro.obs.trace`) nests spans by dotted
*path* -- enough to tell ``train/train.epoch`` from ``train.epoch`` but
useless once a request hops threads and processes: the sharded server
dispatches a batch from one thread, a worker *process* encodes it, and
a collector thread resolves the futures.  This module gives every
request a durable identity instead:

- a 64-bit ``trace_id`` minted once per request (at ``submit``);
- a 64-bit ``span_id`` per span, so children can name their parent
  explicitly instead of relying on a thread-local stack;
- :class:`TraceContext` -- the ``(trace_id, parent span_id)`` pair a
  span opens under.  It travels thread-locally inside a process
  (:func:`use_context`) and as a plain tuple across the process
  boundary (:meth:`TraceContext.to_wire` /
  :meth:`TraceContext.from_wire` -- two ints, free to pickle through an
  ``mp.Queue`` next to the batch it describes).

Span records carry the ids as 16-hex-digit strings (``trace_id``,
``span_id``, ``parent_span_id``) plus the emitting ``pid``, so a JSONL
trace merged from N processes reassembles into per-request trees: the
report CLI's critical-path view and the flight recorder's postmortem
bundles are both keyed on ``trace_id``.

Id generation is allocation-free after the first call per thread: a
thread-local counter added to a per-thread random 64-bit base, so
concurrent threads and respawned workers never collide in practice
(the ids are sampling keys, not security tokens).
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "TraceContext",
    "new_trace",
    "new_span_id",
    "fmt_id",
    "parse_id",
    "current_context",
    "set_context",
    "clear_context",
    "use_context",
]

_MASK = (1 << 64) - 1
_ids = threading.local()


def _thread_id_state() -> "_IdState":
    state = getattr(_ids, "state", None)
    if state is None:
        # SystemRandom: never inherits a forked parent's PRNG state, so
        # eval process-pool children (fork on Linux) stay distinct
        base = random.SystemRandom().getrandbits(64) or 1
        state = _ids.state = _IdState(base)
    return state


class _IdState:
    __slots__ = ("base", "count")

    def __init__(self, base: int):
        self.base = base
        self.count = 0


def new_span_id() -> int:
    """A fresh non-zero 64-bit span id (thread-safe, allocation-free)."""
    state = _thread_id_state()
    state.count += 1
    return ((state.base + state.count) & _MASK) or 1


def new_trace_id() -> int:
    """A fresh non-zero 64-bit trace id."""
    return new_span_id()


def fmt_id(value: int) -> str:
    """Render an id the way records and bundles carry it: 16 hex digits."""
    return f"{value & _MASK:016x}"


def parse_id(text: str) -> int:
    """Inverse of :func:`fmt_id` (raises ``ValueError`` on junk)."""
    value = int(text, 16)
    if not 0 < value <= _MASK:
        raise ValueError(f"id out of 64-bit range: {text!r}")
    return value


@dataclass(frozen=True)
class TraceContext:
    """The identity a span opens under: trace id + parent span id."""

    trace_id: int
    span_id: int

    def child(self) -> "TraceContext":
        """A context parenting further work under a fresh span of this
        trace (the caller owns emitting that span's record)."""
        return TraceContext(self.trace_id, new_span_id())

    # -- wire format (sharded proto messages, eval job pickles) -------------

    def to_wire(self) -> Tuple[int, int]:
        return (self.trace_id, self.span_id)

    @classmethod
    def from_wire(cls, wire) -> Optional["TraceContext"]:
        if wire is None:
            return None
        trace_id, span_id = wire
        return cls(int(trace_id), int(span_id))


def new_trace() -> TraceContext:
    """Mint a new trace: fresh trace id, fresh root span id.

    The caller is the root span's owner -- the serving layer calls this
    at ``submit()`` and emits the ``serve.request`` root span when the
    request resolves, with ``span_id == ctx.span_id``.
    """
    return TraceContext(new_trace_id(), new_span_id())


# -- thread-local current context --------------------------------------------

_current = threading.local()


def current_context() -> Optional[TraceContext]:
    """The context top-level spans of this thread open under (or None)."""
    return getattr(_current, "ctx", None)


def set_context(ctx: Optional[TraceContext]) -> None:
    _current.ctx = ctx


def clear_context() -> None:
    _current.ctx = None


@contextmanager
def use_context(ctx: Optional[TraceContext]):
    """Scope ``ctx`` as this thread's current context.

    ``None`` is accepted and scopes "no context" (so call sites don't
    need a conditional around the ``with``); the previous context is
    restored on exit either way.
    """
    prev = getattr(_current, "ctx", None)
    _current.ctx = ctx
    try:
        yield ctx
    finally:
        _current.ctx = prev
