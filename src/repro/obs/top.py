"""``python -m repro.obs top`` -- a live terminal serving dashboard.

Renders a compact, auto-refreshing view of a serving fleet's health:
queue depth, shed level, per-stage latency percentiles, SLO burn
rates, flight-recorder activity, and (for the sharded server) the
per-shard process table.

Two data sources, both poll-based so the dashboard needs no hooks
inside the server process:

- ``--stats-json PATH``: a file periodically rewritten with
  ``json.dumps(server.stats())`` (the serve bench and the smoke rig
  do this).  This is the richest view -- it has the full nested
  snapshot.
- ``--url URL``: a Prometheus endpoint
  (:func:`repro.obs.export.serve_prometheus`); the dashboard scrapes
  and renders the parsed families (:mod:`repro.obs.promparse`).

``--once`` renders a single frame and exits (what the tests drive);
without it the loop clears the screen every ``--interval`` seconds
until interrupted.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["render_dashboard", "render_prometheus_frame", "main"]

_CLEAR = "\x1b[2J\x1b[H"


def _fmt_ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1e3:8.3f}"


def _rule(title: str, width: int = 72) -> str:
    pad = max(width - len(title) - 4, 0)
    return f"-- {title} " + "-" * pad


def _histogram_rows(hists: Dict) -> List[str]:
    rows = []
    for name in sorted(hists):
        entry = hists[name]
        # unlabeled histograms snapshot flat; labeled ones nest one
        # snapshot per label-combination key
        children = ({"": entry} if "count" in entry
                    else {str(k): v for k, v in entry.items()})
        for key, snap in sorted(children.items()):
            if not isinstance(snap, dict) or not snap.get("count"):
                continue
            label = name if not key else f"{name}{key}"
            rows.append(
                f"  {label:<34} n={int(snap['count']):>7}  "
                f"p50={_fmt_ms(snap.get('p50_s'))}ms  "
                f"p95={_fmt_ms(snap.get('p95_s'))}ms  "
                f"p99={_fmt_ms(snap.get('p99_s'))}ms"
            )
    return rows


def render_dashboard(stats: Dict, width: int = 72) -> str:
    """One dashboard frame from a ``server.stats()`` snapshot dict."""
    lines: List[str] = []
    queue = stats.get("queue") or {}
    policy = stats.get("policy") or {}
    lines.append(_rule("serving", width))
    lines.append(
        f"  queue {queue.get('depth', '?')}/{queue.get('maxsize', '?')}"
        f"   shed level {policy.get('level', '?')}"
        f"   recent p95 {_fmt_ms(policy.get('recent_p95_s'))}ms"
    )
    deployments = stats.get("deployments") or {}
    for name, dep in sorted(deployments.items()):
        lines.append(
            f"  model {name:<16} v{dep.get('version', '?')} "
            f"dim {dep.get('serving_dim', dep.get('dim', '?'))}"
            f"/{dep.get('dim', '?')}"
            + ("  DEGRADED" if dep.get("degraded") else "")
        )
    hist_rows = _histogram_rows(stats.get("histograms") or {})
    if hist_rows:
        lines.append(_rule("latency", width))
        lines.extend(hist_rows)
    slo = stats.get("slo")
    lines.append(_rule("slo", width))
    if not slo:
        lines.append("  (no objectives configured)")
    else:
        for name, state in sorted(slo.items()):
            flag = "BREACH" if state.get("breaching") else "ok"
            burns = state.get("burn") or {}
            burn_txt = "  ".join(
                f"{win}:{rate:.2f}" for win, rate in sorted(
                    burns.items(), key=lambda kv: float(kv[0].rstrip("s"))
                )
            )
            lines.append(
                f"  {name:<24} {flag:<7} burn [{burn_txt}]"
                f"  breaches {state.get('breach_count', 0)}"
            )
    recorder = stats.get("recorder")
    if recorder:
        lines.append(_rule("flight recorder", width))
        lines.append(
            f"  spans {recorder.get('spans', 0)}"
            f"   events {recorder.get('events', 0)}"
            f"   bundles {recorder.get('bundles_written', 0)}"
        )
        for event in (recorder.get("recent_events") or [])[-5:]:
            kind = event.get("kind", "?")
            detail = " ".join(
                f"{k}={v}" for k, v in sorted(event.items())
                if k not in ("kind", "t")
            )
            lines.append(f"    {kind:<20} {detail}"[:width])
    shards = stats.get("shards")
    if shards:
        lines.append(_rule("shards", width))
        entries = (shards.values() if isinstance(shards, dict) else shards)
        for shard in sorted(
            (s for s in entries if isinstance(s, dict)),
            key=lambda s: s.get("shard", 0),
        ):
            lines.append(
                f"  shard {shard.get('shard', '?'):>2}"
                f"  pid {shard.get('pid', '?')}"
                f"  served {shard.get('served', 0):>8}"
                f"  busy {shard.get('busy_seconds', 0.0):8.2f}s"
                f"  rss {shard.get('rss_kb', 0) // 1024:>5}MB"
            )
    return "\n".join(lines)


def render_prometheus_frame(text: str, width: int = 72) -> str:
    """One dashboard frame from a Prometheus exposition scrape."""
    from repro.obs.promparse import parse_text

    families = parse_text(text)
    lines: List[str] = [_rule("metrics", width)]
    for base in sorted(families):
        fam = families[base]
        if fam.kind == "histogram":
            # show _count and _sum-derived mean per label set
            counts = {s.label_key(): s.value for s in fam.samples
                      if s.name == base + "_count"}
            sums = {s.label_key(): s.value for s in fam.samples
                    if s.name == base + "_sum"}
            for key, count in sorted(counts.items()):
                if not count:
                    continue
                mean = sums.get(key, 0.0) / count
                label = dict(key)
                lines.append(
                    f"  {base}{label if label else '':<30} "
                    f"n={int(count)} mean={mean * 1e3:.3f}ms"
                )
        else:
            for sample in fam.samples:
                if not sample.value and fam.kind == "counter":
                    continue
                label = sample.labels or ""
                lines.append(
                    f"  {sample.name}{label} {sample.value:g}"
                )
    slo_lines = [ln for ln in lines if "slo_" in ln]
    if slo_lines:
        lines.append(_rule("slo", width))
        lines.extend(f"  {ln.strip()}" for ln in slo_lines)
    return "\n".join(lines)


def _read_frame(stats_json: Optional[Path], url: Optional[str],
                width: int) -> str:
    if stats_json is not None:
        try:
            stats = json.loads(stats_json.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            return f"(stats file unreadable: {exc})"
        return render_dashboard(stats, width=width)
    from urllib.request import urlopen

    try:
        with urlopen(url, timeout=5.0) as resp:  # noqa: S310 - local scrape
            body = resp.read().decode("utf-8", "replace")
    except OSError as exc:
        return f"(scrape failed: {exc})"
    return render_prometheus_frame(body, width=width)


def main(stats_json: Optional[Path] = None, url: Optional[str] = None,
         interval: float = 1.0, once: bool = False,
         width: int = 72) -> int:
    """CLI body for the ``top`` subcommand; returns the exit code."""
    if (stats_json is None) == (url is None):
        print("top: exactly one of --stats-json / --url is required")
        return 2
    try:
        while True:
            frame = _read_frame(stats_json, url, width)
            stamp = time.strftime("%H:%M:%S")
            header = f"repro.obs top  {stamp}  (ctrl-c to exit)"
            if once:
                print(header)
                print(frame)
                return 0
            print(_CLEAR + header)
            print(frame, flush=True)
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
