"""repro.obs -- unified tracing, metrics and op/energy accounting.

One observability layer across the whole stack:

- :mod:`repro.obs.registry` -- process-global (and instantiable)
  registry of counter/gauge/histogram families with labels; the serve
  layer's MetricsHub delegates here.
- :mod:`repro.obs.trace` -- nestable spans (``with span("encode",
  engine="packed"):`` or ``@traced``) recording wall time, logical op
  counts and bytes moved; near-zero overhead while disabled (the
  default -- see ``benchmarks/bench_obs.py``).
- :mod:`repro.obs.distributed` -- 64-bit trace/span ids and the
  :class:`TraceContext` that follows a request across threads and
  processes (sharded workers, eval jobs); spans carry the ids so
  multi-process JSONL traces reassemble into per-request trees.
- :mod:`repro.obs.recorder` -- :class:`FlightRecorder`: always-on
  bounded ring of recent spans + structured resilience events, dumped
  as a trace-linked postmortem JSON bundle when a trigger fires.
- :mod:`repro.obs.slo` -- declarative latency/availability objectives
  with multi-window burn-rate evaluation (:class:`SLOEngine`),
  surfaced via ``stats()["slo"]``/Prometheus and optionally driving
  the serve degradation ladder.
- :mod:`repro.obs.export` -- JSONL trace sink, in-memory collector,
  Prometheus text exposition (+ optional HTTP endpoint).
- :mod:`repro.obs.energy` -- folds traced op counts through the
  paper-calibrated :mod:`repro.hardware.energy` model so a traced run
  emits a per-stage ASIC energy estimate.
- ``python -m repro.obs report trace.jsonl`` -- console per-stage
  summary (time, ops, energy, per-trace critical path);
  ``python -m repro.obs lint trace.jsonl`` -- trace schema validator;
  ``python -m repro.obs top`` -- live terminal dashboard over a
  server's stats.

Quickstart::

    from repro import obs
    sink = obs.JsonlSink("trace.jsonl")
    obs.enable_tracing(sink)
    clf.fit(X, y)                    # encode/train spans land in the sink
    obs.disable_tracing(); sink.close()
    # then: python -m repro.obs report trace.jsonl
"""

from repro.obs.distributed import (
    TraceContext,
    current_context,
    new_trace,
    use_context,
)
from repro.obs.export import (
    CollectorSink,
    JsonlSink,
    PrometheusEndpoint,
    load_trace,
    render_prometheus,
    serve_prometheus,
    summarize,
)
from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLObjective, SLOEngine
from repro.obs.trace import (
    Span,
    add_sink,
    current_span,
    disable_tracing,
    emit_foreign,
    enable_tracing,
    remove_sink,
    span,
    traced,
    tracing_enabled,
    tracing_state,
)

__all__ = [
    "CollectorSink",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "PrometheusEndpoint",
    "REGISTRY",
    "Registry",
    "SLOEngine",
    "SLObjective",
    "Span",
    "TraceContext",
    "add_sink",
    "current_context",
    "current_span",
    "disable_tracing",
    "emit_foreign",
    "enable_tracing",
    "get_registry",
    "load_trace",
    "new_trace",
    "remove_sink",
    "render_prometheus",
    "serve_prometheus",
    "span",
    "summarize",
    "traced",
    "tracing_enabled",
    "tracing_state",
    "use_context",
    # lazy: OpEnergyBridge, trace_report, render_trace_report
    "OpEnergyBridge",
    "trace_report",
    "render_trace_report",
]


def __getattr__(name):
    # the energy bridge and report pull in repro.hardware / repro.eval;
    # load them on first use so `import repro.core` (which imports
    # repro.obs.trace for instrumentation) stays lightweight.
    if name == "OpEnergyBridge":
        from repro.obs.energy import OpEnergyBridge
        return OpEnergyBridge
    if name in ("trace_report", "render_trace_report"):
        from repro.obs import report
        return getattr(report, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
