"""repro.obs -- unified tracing, metrics and op/energy accounting.

One observability layer across the whole stack:

- :mod:`repro.obs.registry` -- process-global (and instantiable)
  registry of counter/gauge/histogram families with labels; the serve
  layer's MetricsHub delegates here.
- :mod:`repro.obs.trace` -- nestable spans (``with span("encode",
  engine="packed"):`` or ``@traced``) recording wall time, logical op
  counts and bytes moved; near-zero overhead while disabled (the
  default -- see ``benchmarks/bench_obs.py``).
- :mod:`repro.obs.export` -- JSONL trace sink, in-memory collector,
  Prometheus text exposition (+ optional HTTP endpoint).
- :mod:`repro.obs.energy` -- folds traced op counts through the
  paper-calibrated :mod:`repro.hardware.energy` model so a traced run
  emits a per-stage ASIC energy estimate.
- ``python -m repro.obs report trace.jsonl`` -- console per-stage
  summary (time, ops, energy).

Quickstart::

    from repro import obs
    sink = obs.JsonlSink("trace.jsonl")
    obs.enable_tracing(sink)
    clf.fit(X, y)                    # encode/train spans land in the sink
    obs.disable_tracing(); sink.close()
    # then: python -m repro.obs report trace.jsonl
"""

from repro.obs.export import (
    CollectorSink,
    JsonlSink,
    PrometheusEndpoint,
    load_trace,
    render_prometheus,
    serve_prometheus,
    summarize,
)
from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
)
from repro.obs.trace import (
    Span,
    add_sink,
    current_span,
    disable_tracing,
    enable_tracing,
    remove_sink,
    span,
    traced,
    tracing_enabled,
)

__all__ = [
    "CollectorSink",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "PrometheusEndpoint",
    "REGISTRY",
    "Registry",
    "Span",
    "add_sink",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "get_registry",
    "load_trace",
    "remove_sink",
    "render_prometheus",
    "serve_prometheus",
    "span",
    "summarize",
    "traced",
    "tracing_enabled",
    # lazy: OpEnergyBridge, trace_report, render_trace_report
    "OpEnergyBridge",
    "trace_report",
    "render_trace_report",
]


def __getattr__(name):
    # the energy bridge and report pull in repro.hardware / repro.eval;
    # load them on first use so `import repro.core` (which imports
    # repro.obs.trace for instrumentation) stays lightweight.
    if name == "OpEnergyBridge":
        from repro.obs.energy import OpEnergyBridge
        return OpEnergyBridge
    if name in ("trace_report", "render_trace_report"):
        from repro.obs import report
        return getattr(report, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
