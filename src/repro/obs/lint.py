"""Trace-schema validator: ``python -m repro.obs lint trace.jsonl``.

A traced run (``--trace out.jsonl`` on the eval CLI, a traced serve
session, the obs benchmark's ``--shard-trace-out``) writes one JSON
span record per line.  Downstream tooling -- the report aggregator,
the critical-path attribution, external trace viewers -- assumes a
schema this module pins down and CI enforces against a real traced
sharded smoke run:

- ``name`` (non-empty str) and ``seconds`` (finite number >= 0) are
  required on every record;
- ``trace_id`` / ``span_id`` / ``parent_span_id``, when present, are
  16-hex-digit strings, and a record carrying any of them must carry
  both ``trace_id`` and ``span_id``;
- ``pid`` is an int, ``thread``/``path``/``error`` are strings,
  ``attrs`` is an object, ``ops`` is an object of finite numbers;
- within one trace, span ids are unique and every ``parent_span_id``
  resolves to a ``span_id`` seen in the same trace (the re-parenting
  invariant the sharded collector maintains).  ``--allow-dangling``
  downgrades unresolved parents to warnings for partial captures;
- every trace has exactly one root (a span without a parent).

:func:`lint_trace` returns structured findings; the CLI prints them
and exits non-zero when any error-severity finding remains.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = ["Finding", "lint_records", "lint_trace", "main"]

_ID_RE = re.compile(r"^[0-9a-f]{16}$")

_STR_FIELDS = ("thread", "path", "error")
_ID_FIELDS = ("trace_id", "span_id", "parent_span_id")


class Finding:
    """One lint finding: severity ("error" | "warning"), line, message."""

    __slots__ = ("severity", "line", "message")

    def __init__(self, severity: str, line: Optional[int], message: str):
        self.severity = severity
        self.line = line
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Finding({self.severity!r}, {self.line!r}, {self.message!r})"

    def render(self) -> str:
        where = f"line {self.line}: " if self.line is not None else ""
        return f"{self.severity}: {where}{self.message}"


def _err(line: Optional[int], message: str) -> Finding:
    return Finding("error", line, message)


def _warn(line: Optional[int], message: str) -> Finding:
    return Finding("warning", line, message)


def _check_record(record: Dict, line: int) -> List[Finding]:
    out: List[Finding] = []
    name = record.get("name")
    if not isinstance(name, str) or not name:
        out.append(_err(line, "missing or empty 'name'"))
    seconds = record.get("seconds")
    if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
        out.append(_err(line, "missing or non-numeric 'seconds'"))
    elif not math.isfinite(seconds) or seconds < 0:
        out.append(_err(line, f"'seconds' out of range: {seconds}"))
    for field in _ID_FIELDS:
        value = record.get(field)
        if value is None:
            continue
        if not isinstance(value, str) or not _ID_RE.match(value):
            out.append(_err(
                line, f"'{field}' is not a 16-hex-digit id: {value!r}"
            ))
    has_any_id = any(record.get(f) is not None for f in _ID_FIELDS)
    if has_any_id and (record.get("trace_id") is None
                       or record.get("span_id") is None):
        out.append(_err(
            line, "traced record must carry both trace_id and span_id"
        ))
    pid = record.get("pid")
    if pid is not None and (not isinstance(pid, int)
                            or isinstance(pid, bool)):
        out.append(_err(line, f"'pid' is not an int: {pid!r}"))
    for field in _STR_FIELDS:
        value = record.get(field)
        if value is not None and not isinstance(value, str):
            out.append(_err(line, f"'{field}' is not a string: {value!r}"))
    attrs = record.get("attrs")
    if attrs is not None and not isinstance(attrs, dict):
        out.append(_err(line, "'attrs' is not an object"))
    ops = record.get("ops")
    if ops is not None:
        if not isinstance(ops, dict):
            out.append(_err(line, "'ops' is not an object"))
        else:
            for key, value in ops.items():
                if (not isinstance(value, (int, float))
                        or isinstance(value, bool)
                        or not math.isfinite(value)):
                    out.append(_err(
                        line, f"ops[{key!r}] is not a finite number"
                    ))
    return out


def lint_records(
    records: Iterable[Tuple[int, Dict]],
    allow_dangling: bool = False,
) -> List[Finding]:
    """Lint ``(line_number, record)`` pairs; returns all findings."""
    findings: List[Finding] = []
    # trace_id -> {span_id: line}, [(line, parent_id)], [root lines]
    spans_by_trace: Dict[str, Dict[str, int]] = {}
    parents_by_trace: Dict[str, List[Tuple[int, str]]] = {}
    roots_by_trace: Dict[str, List[int]] = {}
    for line, record in records:
        findings.extend(_check_record(record, line))
        trace_id = record.get("trace_id")
        span_id = record.get("span_id")
        if not (isinstance(trace_id, str) and _ID_RE.match(trace_id)
                and isinstance(span_id, str) and _ID_RE.match(span_id)):
            continue
        seen = spans_by_trace.setdefault(trace_id, {})
        if span_id in seen:
            findings.append(_err(
                line,
                f"duplicate span_id {span_id} in trace {trace_id} "
                f"(first seen line {seen[span_id]})",
            ))
        else:
            seen[span_id] = line
        parent = record.get("parent_span_id")
        if isinstance(parent, str) and _ID_RE.match(parent):
            parents_by_trace.setdefault(trace_id, []).append((line, parent))
        elif parent is None:
            roots_by_trace.setdefault(trace_id, []).append(line)
    # referential pass: parents must resolve within their trace
    for trace_id, refs in parents_by_trace.items():
        seen = spans_by_trace.get(trace_id, {})
        for line, parent in refs:
            if parent not in seen:
                make = _warn if allow_dangling else _err
                findings.append(make(
                    line,
                    f"parent_span_id {parent} not found in trace "
                    f"{trace_id}",
                ))
    for trace_id, spans in spans_by_trace.items():
        roots = roots_by_trace.get(trace_id, [])
        if not roots:
            make = _warn if allow_dangling else _err
            findings.append(make(
                None, f"trace {trace_id} has no root span"
            ))
        elif len(roots) > 1:
            findings.append(_warn(
                None,
                f"trace {trace_id} has {len(roots)} root spans "
                f"(lines {roots})",
            ))
    return findings


def lint_trace(
    path: Union[str, Path], allow_dangling: bool = False
) -> List[Finding]:
    """Lint a JSONL trace file; malformed JSON lines are errors too."""
    pairs: List[Tuple[int, Dict]] = []
    findings: List[Finding] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                findings.append(_err(lineno, "not valid JSON"))
                continue
            if not isinstance(record, dict):
                findings.append(_err(lineno, "record is not an object"))
                continue
            pairs.append((lineno, record))
    findings.extend(lint_records(pairs, allow_dangling=allow_dangling))
    return findings


def main(path: Union[str, Path], allow_dangling: bool = False,
         quiet: bool = False) -> int:
    """CLI body for the ``lint`` subcommand; returns the exit code."""
    findings = lint_trace(path, allow_dangling=allow_dangling)
    errors = [f for f in findings if f.severity == "error"]
    if not quiet:
        for finding in findings:
            print(finding.render())
        n_spans = sum(1 for _ in open(path, "r", encoding="utf-8"))
        status = "FAIL" if errors else "OK"
        print(
            f"{status}: {path}: {n_spans} lines, "
            f"{len(errors)} errors, {len(findings) - len(errors)} warnings"
        )
    return 1 if errors else 0
