"""Declarative SLOs with multi-window error-budget burn-rate evaluation.

The CI resilience gates assert fleet health offline (≥99% success,
p99 ≤ deadline); this module is their runtime counterpart.  An
:class:`SLObjective` declares what "good" means for a request stream --

- **availability**: the fraction of requests that succeed, and/or
- **latency**: the fraction that complete under ``latency_threshold_s``

-- with a ``target`` like 0.99.  The :class:`SLOEngine` scores every
request (:meth:`SLOEngine.record`) into a ring of coarse time buckets
and evaluates **burn rate** per window: with an error budget of
``1 - target``, ``burn = bad_fraction / (1 - target)``.  Burn 1.0
means the budget is being consumed exactly at the sustainable pace;
14.4 is the classic "page now" multi-hour budget bomb.  Evaluating the
same stream over several windows (default 5 s and 60 s) is the
standard multi-window trick: the short window proves the problem is
*current*, the long window proves it is *material*.

Results surface three ways:

- :meth:`snapshot` feeds ``stats()["slo"]`` in both serving layers;
- gauges (``slo_burn_rate{slo,window}``, ``slo_breaching{slo}``) land
  in the registry passed at construction and ride the existing
  Prometheus exposition;
- optionally, breaches drive the
  :class:`~repro.serve.resilience.degrade.DegradationLadder`
  pre-emptively: when every window of an objective burns at ≥
  ``burn_threshold``, the engine forces the configured degrade tier
  (dim-shed / approx) and releases it once the short window recovers
  -- degradation becomes objective-driven rather than queue-driven.

Stdlib-only, thread-safe, O(windows × buckets) per evaluation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["SLObjective", "SLOEngine"]


@dataclass(frozen=True)
class SLObjective:
    """One service-level objective over the request stream.

    ``target`` is the good-fraction objective (0.99 = "99% of requests
    are good").  A request is *bad* when it errors, or -- if
    ``latency_threshold_s`` is set -- when it completes slower than the
    threshold.  ``windows`` are the evaluation horizons in seconds;
    ``burn_threshold`` is the burn rate at/above which (in **all**
    windows simultaneously) the objective counts as breaching.
    ``degrade_tier`` optionally names the ladder tier to force while
    breaching (see DEGRADATION_TIERS; e.g. 2=approx, 3=dim_shed).
    """

    name: str
    target: float = 0.99
    latency_threshold_s: Optional[float] = None
    windows: Tuple[float, ...] = (5.0, 60.0)
    burn_threshold: float = 2.0
    degrade_tier: Optional[int] = None

    def __post_init__(self):
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if not self.windows:
            raise ValueError("need at least one evaluation window")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")


class _Ring:
    """Time-bucketed good/bad counters covering the longest window."""

    __slots__ = ("width", "n", "good", "bad", "stamp")

    def __init__(self, width: float, n: int):
        self.width = width
        self.n = n
        self.good = [0] * n
        self.bad = [0] * n
        self.stamp = [0] * n  # absolute bucket index last written

    def slot(self, now: float) -> int:
        idx = int(now / self.width)
        pos = idx % self.n
        if self.stamp[pos] != idx:
            self.good[pos] = 0
            self.bad[pos] = 0
            self.stamp[pos] = idx
        return pos

    def totals(self, now: float, window: float) -> Tuple[int, int]:
        """(good, bad) over the trailing ``window`` seconds."""
        idx = int(now / self.width)
        lo = idx - int(round(window / self.width)) + 1
        g = b = 0
        for pos in range(self.n):
            if lo <= self.stamp[pos] <= idx:
                g += self.good[pos]
                b += self.bad[pos]
        return g, b


@dataclass
class _Hold:
    """Per-objective breach latching state."""

    breaching: bool = False
    forced: bool = False
    breach_count: int = 0


class SLOEngine:
    """Scores requests against objectives; evaluates burn rates.

    ``registry`` (a :class:`repro.obs.registry.Registry`) receives the
    burn-rate gauges; ``ladder`` (optional) is driven on breach when an
    objective declares ``degrade_tier``.  ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(self, objectives: Sequence[SLObjective], *,
                 registry=None, ladder=None, clock=time.monotonic) -> None:
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.objectives: Tuple[SLObjective, ...] = tuple(objectives)
        self._ladder = ladder
        self._clock = clock
        self._lock = threading.Lock()
        self._holds: Dict[str, _Hold] = {o.name: _Hold() for o in objectives}
        self._rings: Dict[str, _Ring] = {}
        for obj in self.objectives:
            longest = max(obj.windows)
            width = max(min(obj.windows) / 10.0, 1e-3)
            n = int(longest / width) + 2
            self._rings[obj.name] = _Ring(width, n)
        self._gauge_burn = None
        self._gauge_breach = None
        if registry is not None:
            self._gauge_burn = registry.gauge(
                "slo_burn_rate",
                help="error-budget burn rate per objective and window",
                labels=("slo", "window"),
            )
            self._gauge_breach = registry.gauge(
                "slo_breaching",
                help="1 while the objective burns above threshold in all windows",
                labels=("slo",),
            )

    # -- scoring -------------------------------------------------------------

    def record(self, latency_s: float, ok: bool = True) -> None:
        """Score one finished request against every objective."""
        now = self._clock()
        with self._lock:
            for obj in self.objectives:
                good = ok and (obj.latency_threshold_s is None
                               or latency_s <= obj.latency_threshold_s)
                ring = self._rings[obj.name]
                pos = ring.slot(now)
                if good:
                    ring.good[pos] += 1
                else:
                    ring.bad[pos] += 1

    # -- evaluation ----------------------------------------------------------

    def evaluate(self) -> Dict[str, Dict]:
        """Burn rates per objective/window; drives gauges and ladder.

        Call periodically (the serve supervisors do, ~per tick).  An
        objective *breaches* when every window's burn ≥ its
        ``burn_threshold``; it *recovers* when the shortest window's
        burn drops below half the threshold (hysteresis, so a forced
        degrade tier does not flap).
        """
        now = self._clock()
        out: Dict[str, Dict] = {}
        to_force: List[Tuple[SLObjective, bool]] = []
        with self._lock:
            for obj in self.objectives:
                ring = self._rings[obj.name]
                budget = 1.0 - obj.target
                burns: Dict[str, float] = {}
                short_burn = None
                all_over = True
                for window in obj.windows:
                    good, bad = ring.totals(now, window)
                    total = good + bad
                    bad_frac = (bad / total) if total else 0.0
                    burn = bad_frac / budget
                    burns[f"{window:g}s"] = burn
                    if window == min(obj.windows):
                        short_burn = burn
                    if burn < obj.burn_threshold or total == 0:
                        all_over = False
                hold = self._holds[obj.name]
                if all_over and not hold.breaching:
                    hold.breaching = True
                    hold.breach_count += 1
                elif hold.breaching and short_burn is not None \
                        and short_burn < obj.burn_threshold / 2.0:
                    hold.breaching = False
                out[obj.name] = {
                    "target": obj.target,
                    "latency_threshold_s": obj.latency_threshold_s,
                    "burn": burns,
                    "breaching": hold.breaching,
                    "breach_count": hold.breach_count,
                }
                if obj.degrade_tier is not None and self._ladder is not None:
                    if hold.breaching and not hold.forced:
                        hold.forced = True
                        to_force.append((obj, True))
                    elif not hold.breaching and hold.forced:
                        hold.forced = False
                        to_force.append((obj, False))
        if self._gauge_burn is not None:
            for name, entry in out.items():
                for win, burn in entry["burn"].items():
                    self._gauge_burn.labels(slo=name, window=win).set(burn)
                self._gauge_breach.labels(slo=name).set(
                    1.0 if entry["breaching"] else 0.0
                )
        # ladder calls happen outside the lock: force_tier takes the
        # ladder's own lock and may run dim-shed hooks
        for obj, engage in to_force:
            try:
                self._ladder.force_tier(obj.degrade_tier if engage else 0)
            except Exception:
                pass
        return out

    def snapshot(self) -> Dict[str, Dict]:
        """Evaluate and return the ``stats()["slo"]`` payload."""
        return self.evaluate()
