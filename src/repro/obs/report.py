"""Console summary of a JSONL trace: per-stage time, ops, energy.

``python -m repro.obs report trace.jsonl`` renders one row per span
name -- wall time, span count, logical op totals, and the ASIC energy
estimate from the :class:`~repro.obs.energy.OpEnergyBridge` -- the
paper-style breakdown a traced ``table1`` or serve run boils down to.

When the trace carries distributed ids (a traced serving session:
``serve.request`` roots with re-parented worker spans), the report
additionally renders **critical-path and tail-latency attribution**:
root-latency percentiles, which stage dominates the p99 tail (split
per shard/engine/backend when spans carry those attrs), and the most
common critical paths through the span tree.

The module is also the ``python -m repro.obs`` entry point, hosting
the sibling subcommands: ``lint`` (:mod:`repro.obs.lint`, the trace
schema validator CI runs) and ``top`` (:mod:`repro.obs.top`, the live
serving dashboard).
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.eval.tables import format_table
from repro.obs.export import load_trace, summarize

__all__ = [
    "trace_report",
    "render_trace_report",
    "trace_attribution",
    "render_attribution",
    "main",
]


def _fmt_count(n: float) -> str:
    n = float(n)
    for scale, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(n) >= scale:
            return f"{n / scale:.2f}{suffix}"
    return f"{n:.0f}"


def trace_report(
    path: Union[str, Path], energy: bool = True
) -> Dict[str, Dict]:
    """Aggregate a trace file; optionally fold in energy estimates."""
    stages = summarize(load_trace(path))
    if energy and stages:
        from repro.obs.energy import OpEnergyBridge

        estimates = OpEnergyBridge().estimate_stages(stages)
        for name, est in estimates.items():
            stages[name]["energy"] = est
    return stages


def _percentile(sorted_values: List[float], pct: float) -> float:
    if not sorted_values:
        return 0.0
    idx = (pct / 100.0) * (len(sorted_values) - 1)
    lo = int(idx)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = idx - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def _stage_key(record: Dict) -> str:
    """Span name enriched with the first routing attr it carries."""
    key = record.get("name", "?")
    attrs = record.get("attrs") or {}
    for attr in ("shard", "engine", "backend", "worker"):
        if attr in attrs:
            return f"{key}[{attr}={attrs[attr]}]"
    return key


def trace_attribution(spans: List[Dict],
                      tail_pct: float = 99.0) -> Optional[Dict]:
    """Critical-path / tail-latency attribution over a distributed trace.

    Returns ``None`` when the trace carries no distributed ids.
    Otherwise: root-latency percentiles across traces, the per-stage
    wall-time share inside the >= p-``tail_pct`` tail (stages split per
    shard/engine/backend/worker attr so "search on shard 3 dominates
    p99" is directly readable), and the most common critical paths --
    the root-to-leaf chain following the slowest child at each level.
    """
    traces: Dict[str, List[Dict]] = defaultdict(list)
    for record in spans:
        if record.get("trace_id") and record.get("span_id"):
            traces[record["trace_id"]].append(record)
    if not traces:
        return None
    roots: Dict[str, Dict] = {}
    for trace_id, records in traces.items():
        root = next(
            (r for r in records if not r.get("parent_span_id")), None
        )
        if root is not None:
            roots[trace_id] = root
    if not roots:
        return None
    latencies = sorted(float(r.get("seconds", 0.0)) for r in roots.values())
    threshold = _percentile(latencies, tail_pct)
    tail_ids = [
        t for t, r in roots.items()
        if float(r.get("seconds", 0.0)) >= threshold
    ]
    # per-stage wall time inside the tail traces
    stages: Dict[str, Dict] = {}
    tail_wall = sum(float(roots[t].get("seconds", 0.0)) for t in tail_ids)
    for trace_id in tail_ids:
        for record in traces[trace_id]:
            if record is roots[trace_id]:
                continue
            key = _stage_key(record)
            agg = stages.setdefault(key, {"wall_s": 0.0, "spans": 0})
            agg["wall_s"] += float(record.get("seconds", 0.0))
            agg["spans"] += 1
    for agg in stages.values():
        agg["share_of_tail"] = (
            agg["wall_s"] / tail_wall if tail_wall > 0 else 0.0
        )
    # critical paths: follow the slowest child from each root
    path_count: Dict[str, int] = defaultdict(int)
    path_wall: Dict[str, float] = defaultdict(float)
    for trace_id, root in roots.items():
        children: Dict[str, List[Dict]] = defaultdict(list)
        for record in traces[trace_id]:
            parent = record.get("parent_span_id")
            if parent:
                children[parent].append(record)
        node = root
        names = [node.get("name", "?")]
        visited = set()
        while True:
            span_id = node.get("span_id")
            if not span_id or span_id in visited:
                break
            visited.add(span_id)
            kids = children.get(span_id)
            if not kids:
                break
            node = max(kids, key=lambda r: float(r.get("seconds", 0.0)))
            names.append(_stage_key(node))
        path = " > ".join(names)
        path_count[path] += 1
        path_wall[path] += float(root.get("seconds", 0.0))
    paths = [
        {
            "path": path,
            "count": count,
            "mean_s": path_wall[path] / count,
        }
        for path, count in sorted(
            path_count.items(), key=lambda kv: -path_wall[kv[0]]
        )
    ]
    return {
        "traces": len(traces),
        "roots": len(roots),
        "latency_s": {
            "p50": _percentile(latencies, 50),
            "p95": _percentile(latencies, 95),
            "p99": _percentile(latencies, 99),
            "max": latencies[-1],
        },
        "tail": {
            "pct": tail_pct,
            "threshold_s": threshold,
            "traces": len(tail_ids),
            "stages": stages,
        },
        "critical_paths": paths,
    }


def render_attribution(attribution: Dict, max_paths: int = 5) -> str:
    """Human-readable attribution section (see :func:`trace_attribution`)."""
    lat = attribution["latency_s"]
    lines = [
        f"distributed traces: {attribution['roots']} rooted "
        f"/ {attribution['traces']} total",
        f"root latency: p50 {lat['p50'] * 1e3:.3f}ms  "
        f"p95 {lat['p95'] * 1e3:.3f}ms  p99 {lat['p99'] * 1e3:.3f}ms  "
        f"max {lat['max'] * 1e3:.3f}ms",
    ]
    tail = attribution["tail"]
    lines.append(
        f"tail (>= p{tail['pct']:g}, {tail['threshold_s'] * 1e3:.3f}ms): "
        f"{tail['traces']} trace(s); stage attribution:"
    )
    ranked = sorted(
        tail["stages"].items(), key=lambda kv: -kv[1]["wall_s"]
    )
    if not ranked:
        lines.append("  (tail traces have no child spans)")
    for name, agg in ranked:
        lines.append(
            f"  {name:<40} {agg['wall_s'] * 1e3:9.3f}ms "
            f"({agg['share_of_tail'] * 100:5.1f}% of tail) "
            f"across {agg['spans']} span(s)"
        )
    lines.append("critical paths (by total wall time):")
    for entry in attribution["critical_paths"][:max_paths]:
        lines.append(
            f"  {entry['count']:>5}x  {entry['mean_s'] * 1e3:9.3f}ms  "
            f"{entry['path']}"
        )
    return "\n".join(lines)


def render_trace_report(path: Union[str, Path], energy: bool = True) -> str:
    """Human-readable per-stage table for a JSONL trace."""
    stages = trace_report(path, energy=energy)
    if not stages:
        return f"trace {path}: no spans recorded"
    # the per-primitive column only appears when some span carried
    # primitive labels (planner-lowered encoders attach them)
    has_primitives = any("primitives" in agg for agg in stages.values())
    headers = ["stage", "spans", "wall_s", "xor_ops", "add_ops",
               "mul_ops", "mem_MB"]
    if has_primitives:
        headers.append("primitives")
    if energy:
        headers += ["asic_ms", "dyn_uJ", "total_uJ"]
    rows: List[List] = []
    for name in sorted(stages, key=lambda n: -stages[n]["wall_s"]):
        agg = stages[name]
        row: List = [
            name,
            agg["spans"],
            f"{agg['wall_s']:.4f}",
            _fmt_count(agg["xor_ops"]),
            _fmt_count(agg["add_ops"]),
            _fmt_count(agg["mul_ops"]),
            f"{agg['mem_bytes'] / 2**20:.2f}",
        ]
        if has_primitives:
            prims = agg.get("primitives") or {}
            row.append(" ".join(
                f"{p}={_fmt_count(v)}" for p, v in prims.items() if v
            ) or "-")
        if energy:
            est = agg.get("energy", {})
            row += [
                f"{est.get('asic_time_s', 0.0) * 1e3:.3f}",
                f"{est.get('dynamic_j', 0.0) * 1e6:.3f}",
                f"{est.get('total_j', 0.0) * 1e6:.3f}",
            ]
        rows.append(row)
    title = f"repro.obs report -- {path}"
    out = format_table(headers, rows, title=title)
    attribution = trace_attribution(load_trace(path))
    if attribution is not None:
        out += "\n\n" + render_attribution(attribution)
    return out


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (see :mod:`repro.obs.__main__`)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tooling for the GENERIC reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser(
        "report", help="summarize a JSONL trace per stage"
    )
    rep.add_argument("trace", type=Path, help="trace file (JSONL spans)")
    rep.add_argument("--no-energy", action="store_true",
                     help="skip the ASIC energy estimate columns")
    rep.add_argument("--json", action="store_true",
                     help="emit the aggregate as JSON instead of a table")
    lint_p = sub.add_parser(
        "lint", help="validate a JSONL trace against the span schema"
    )
    lint_p.add_argument("trace", type=Path, help="trace file (JSONL spans)")
    lint_p.add_argument(
        "--allow-dangling", action="store_true",
        help="downgrade unresolved parent ids to warnings "
             "(partial captures)",
    )
    lint_p.add_argument("--quiet", action="store_true",
                        help="exit code only, no per-finding output")
    top_p = sub.add_parser(
        "top", help="live serving dashboard (stats file or scrape URL)"
    )
    top_p.add_argument("--stats-json", type=Path, default=None,
                       help="path to a periodically rewritten "
                            "server.stats() JSON dump")
    top_p.add_argument("--url", default=None,
                       help="Prometheus endpoint to scrape")
    top_p.add_argument("--interval", type=float, default=1.0,
                       help="refresh period, seconds")
    top_p.add_argument("--once", action="store_true",
                       help="render a single frame and exit")
    args = parser.parse_args(argv)

    if args.command == "report":
        if not args.trace.exists():
            parser.error(f"trace file not found: {args.trace}")
        if args.json:
            print(json.dumps(
                trace_report(args.trace, energy=not args.no_energy),
                indent=2, default=float,
            ))
        else:
            print(render_trace_report(args.trace, energy=not args.no_energy))
        return 0
    if args.command == "lint":
        if not args.trace.exists():
            parser.error(f"trace file not found: {args.trace}")
        from repro.obs.lint import main as lint_main

        return lint_main(args.trace, allow_dangling=args.allow_dangling,
                         quiet=args.quiet)
    if args.command == "top":
        from repro.obs.top import main as top_main

        return top_main(stats_json=args.stats_json, url=args.url,
                        interval=args.interval, once=args.once)
    return 0
