"""Console summary of a JSONL trace: per-stage time, ops, energy.

``python -m repro.obs report trace.jsonl`` renders one row per span
name -- wall time, span count, logical op totals, and the ASIC energy
estimate from the :class:`~repro.obs.energy.OpEnergyBridge` -- the
paper-style breakdown a traced ``table1`` or serve run boils down to.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.eval.tables import format_table
from repro.obs.export import load_trace, summarize

__all__ = ["trace_report", "render_trace_report", "main"]


def _fmt_count(n: float) -> str:
    n = float(n)
    for scale, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(n) >= scale:
            return f"{n / scale:.2f}{suffix}"
    return f"{n:.0f}"


def trace_report(
    path: Union[str, Path], energy: bool = True
) -> Dict[str, Dict]:
    """Aggregate a trace file; optionally fold in energy estimates."""
    stages = summarize(load_trace(path))
    if energy and stages:
        from repro.obs.energy import OpEnergyBridge

        estimates = OpEnergyBridge().estimate_stages(stages)
        for name, est in estimates.items():
            stages[name]["energy"] = est
    return stages


def render_trace_report(path: Union[str, Path], energy: bool = True) -> str:
    """Human-readable per-stage table for a JSONL trace."""
    stages = trace_report(path, energy=energy)
    if not stages:
        return f"trace {path}: no spans recorded"
    # the per-primitive column only appears when some span carried
    # primitive labels (planner-lowered encoders attach them)
    has_primitives = any("primitives" in agg for agg in stages.values())
    headers = ["stage", "spans", "wall_s", "xor_ops", "add_ops",
               "mul_ops", "mem_MB"]
    if has_primitives:
        headers.append("primitives")
    if energy:
        headers += ["asic_ms", "dyn_uJ", "total_uJ"]
    rows: List[List] = []
    for name in sorted(stages, key=lambda n: -stages[n]["wall_s"]):
        agg = stages[name]
        row: List = [
            name,
            agg["spans"],
            f"{agg['wall_s']:.4f}",
            _fmt_count(agg["xor_ops"]),
            _fmt_count(agg["add_ops"]),
            _fmt_count(agg["mul_ops"]),
            f"{agg['mem_bytes'] / 2**20:.2f}",
        ]
        if has_primitives:
            prims = agg.get("primitives") or {}
            row.append(" ".join(
                f"{p}={_fmt_count(v)}" for p, v in prims.items() if v
            ) or "-")
        if energy:
            est = agg.get("energy", {})
            row += [
                f"{est.get('asic_time_s', 0.0) * 1e3:.3f}",
                f"{est.get('dynamic_j', 0.0) * 1e6:.3f}",
                f"{est.get('total_j', 0.0) * 1e6:.3f}",
            ]
        rows.append(row)
    title = f"repro.obs report -- {path}"
    return format_table(headers, rows, title=title)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (see :mod:`repro.obs.__main__`)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tooling for the GENERIC reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser(
        "report", help="summarize a JSONL trace per stage"
    )
    rep.add_argument("trace", type=Path, help="trace file (JSONL spans)")
    rep.add_argument("--no-energy", action="store_true",
                     help="skip the ASIC energy estimate columns")
    rep.add_argument("--json", action="store_true",
                     help="emit the aggregate as JSON instead of a table")
    args = parser.parse_args(argv)

    if args.command == "report":
        if not args.trace.exists():
            parser.error(f"trace file not found: {args.trace}")
        if args.json:
            print(json.dumps(
                trace_report(args.trace, energy=not args.no_energy),
                indent=2, default=float,
            ))
        else:
            print(render_trace_report(args.trace, energy=not args.no_energy))
    return 0
