"""Bridge from traced logical op counts to the paper's energy model.

The spans recorded by :mod:`repro.obs.trace` carry *logical* operation
counts -- XOR ops, adds, multiplies and bytes moved, the currencies of
:class:`repro.core.encoders.base.OpProfile`.  The GENERIC energy model
(:mod:`repro.hardware.energy`) charges *hardware* events: datapath
cycles, level/class-memory word reads.  This module folds one into the
other so a traced software run emits a paper-style per-stage energy
estimate, closing the loop between what the software executed and what
the Section 5.1 silicon would have spent doing it.

Mapping (documented assumptions, all first-order):

- every logical op (XOR / add / mul) occupies one of the ``m`` datapath
  lanes for one cycle, so ``cycles = total_ops / m`` and each op costs
  ``e_datapath_cycle / m``;
- bytes moved are charged at the level-memory rate: one level-row read
  (``max_dim`` bits) per ``max_dim/8`` bytes -- the dominant on-chip
  traffic during encoding;
- adds in *search*-flavored stages consume one class-memory word each
  (the dot-product pipeline reads a 16-bit class word per MAC), so
  stages named in :data:`CLASS_MEM_STAGES` charge ``e_class_word``
  per add instead of the level rate for their traffic;
- static power is the worst-case anchor scaled over the *estimated ASIC
  time* (cycles / clock), not host wall time -- the host's nanoseconds
  say nothing about the accelerator's leakage.

These estimates are intentionally coarse (the cycle-accurate path is
:mod:`repro.hardware.controller`); their value is that they move with
the measured op counts of an actual run, per stage, with zero extra
configuration.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.hardware.energy import EnergyModel, WORST_STATIC_W
from repro.hardware.params import DEFAULT_PARAMS, ArchParams

__all__ = ["OpEnergyBridge", "CLASS_MEM_STAGES"]

#: span names whose adds stream class-memory words (similarity search)
CLASS_MEM_STAGES = ("search", "serve.search", "score")


class OpEnergyBridge:
    """Convert per-stage logical op totals into energy estimates."""

    def __init__(self, params: ArchParams = DEFAULT_PARAMS,
                 model: Optional[EnergyModel] = None):
        self.params = params
        self.model = model or EnergyModel(params)
        # one lane-op: the datapath cycle energy split across the m lanes
        self.e_op_j = self.model.e_datapath_cycle / params.lanes
        # level-memory traffic: one row read moves max_dim bits
        self.e_byte_j = self.model.e_level_read / (params.max_dim / 8.0)
        self.e_class_word_j = self.model.e_class_word

    # -- one stage ----------------------------------------------------------

    def estimate(
        self,
        *,
        xor_ops: int = 0,
        add_ops: int = 0,
        mul_ops: int = 0,
        mem_bytes: int = 0,
        stage: str = "",
    ) -> Dict[str, float]:
        """Energy estimate for one stage's op totals (values in J / s)."""
        total_ops = int(xor_ops) + int(add_ops) + int(mul_ops)
        cycles = total_ops / self.params.lanes
        asic_s = cycles / self.params.clock_hz
        datapath_j = total_ops * self.e_op_j
        if stage in CLASS_MEM_STAGES:
            mem_j = add_ops * self.e_class_word_j
        else:
            mem_j = mem_bytes * self.e_byte_j
        static_j = WORST_STATIC_W * asic_s
        dynamic_j = datapath_j + mem_j
        return {
            "ops": float(total_ops),
            "est_cycles": cycles,
            "asic_time_s": asic_s,
            "datapath_j": datapath_j,
            "memory_j": mem_j,
            "static_j": static_j,
            "dynamic_j": dynamic_j,
            "total_j": dynamic_j + static_j,
        }

    # -- a whole trace summary ----------------------------------------------

    def estimate_stages(
        self, stages: Mapping[str, Mapping[str, float]],
        skip: Iterable[str] = (),
    ) -> Dict[str, Dict[str, float]]:
        """Estimates for a :func:`repro.obs.export.summarize` aggregate.

        Stages without any recorded op counts get a zero-energy row (the
        span measured wall time only); ``skip`` drops stages entirely.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name, agg in stages.items():
            if name in skip:
                continue
            out[name] = self.estimate(
                xor_ops=int(agg.get("xor_ops", 0)),
                add_ops=int(agg.get("add_ops", 0)),
                mul_ops=int(agg.get("mul_ops", 0)),
                mem_bytes=int(agg.get("mem_bytes", 0)),
                stage=name,
            )
        return out
