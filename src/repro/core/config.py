"""One compute-placement config for every user-facing model class.

Four PRs of growth left the same four knobs -- ``engine`` (encoding
kernel), ``encode_jobs`` (encode-stage thread fan-out), ``train_engine``
(retraining engine) and ``train_memory_budget`` (gram-cache byte cap) --
copy-pasted across :class:`~repro.core.classifier.HDClassifier`,
:class:`~repro.core.online.AdaptiveHDClassifier`,
:class:`~repro.core.clustering.HDCluster`,
:class:`~repro.core.packed.PackedModel` and
:class:`~repro.serve.server.ServeConfig`.  :class:`ComputeConfig`
consolidates them into one picklable dataclass those classes accept as
``config=``; the old per-class kwargs keep working as deprecated
aliases routed through :meth:`ComputeConfig.from_kwargs`.

Migration::

    # before (still works, warns DeprecationWarning):
    HDClassifier(enc, engine="packed", encode_jobs=4, train_engine="gram")

    # after:
    cfg = ComputeConfig(engine="packed", encode_jobs=4, train_engine="gram")
    HDClassifier(enc, config=cfg)

Every consumer copies the config on ingestion (``replace()``), so one
``ComputeConfig`` literal can parameterize many models without aliasing
their later mutations into each other.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.core.compat import warn_legacy_kwargs

__all__ = ["ComputeConfig", "UNSET"]


class _Unset:
    """Sentinel distinguishing 'kwarg not passed' from an explicit None."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<UNSET>"

    def __reduce__(self):
        # pickle round-trips to the same singleton
        return (_Unset, ())


UNSET = _Unset()


@dataclass
class ComputeConfig:
    """Where and how a model spends its compute.

    Parameters
    ----------
    engine:
        Encoding engine override applied to the model's encoder when it
        supports one (``"reference"``/``"packed"``/``"auto"``); ``None``
        keeps the encoder's own setting.
    encode_jobs:
        Thread-pool width for batch encoding (``None`` = serial,
        ``-1`` = all cores).  Results are identical for any value.
    train_engine:
        Retraining engine: ``"reference"``, ``"gram"`` or ``"auto"``
        (see :mod:`repro.core.training`).
    train_memory_budget:
        Byte cap for the gram caches (``None`` = module default).
    """

    engine: Optional[str] = None
    encode_jobs: Optional[int] = None
    train_engine: str = "auto"
    train_memory_budget: Optional[int] = None

    def replace(self, **changes) -> "ComputeConfig":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """Plain JSON-serializable dict of the four knobs."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ComputeConfig":
        return cls(**d)

    @classmethod
    def from_kwargs(
        cls,
        config: Optional["ComputeConfig"] = None,
        *,
        engine=UNSET,
        encode_jobs=UNSET,
        train_engine=UNSET,
        train_memory_budget=UNSET,
        owner: str = "",
        warn: bool = True,
        stacklevel: int = 3,
    ) -> "ComputeConfig":
        """Merge a ``config=`` object with legacy per-class kwargs.

        The shim behind every consolidated constructor: returns a fresh
        :class:`ComputeConfig` (never the caller's instance), with any
        legacy kwarg that was actually passed overriding the matching
        field.  Passing a legacy kwarg emits a :class:`DeprecationWarning`
        naming the owner class unless ``warn=False`` (used internally by
        ``with_model``-style cloning, which round-trips whatever the
        original had without re-warning).
        """
        out = config.replace() if config is not None else cls()
        legacy = {
            "engine": engine,
            "encode_jobs": encode_jobs,
            "train_engine": train_engine,
            "train_memory_budget": train_memory_budget,
        }
        passed = {k: v for k, v in legacy.items() if v is not UNSET}
        if passed:
            if warn:
                # the single DeprecationWarning site lives in
                # repro.core.compat; keep this frame transparent
                warn_legacy_kwargs(owner, passed, stacklevel=stacklevel)
            for k, v in passed.items():
                setattr(out, k, v)
        return out
