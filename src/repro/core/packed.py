"""Bit-packed binary HDC inference (the eGPU implementation's trick).

Section 3.3: the paper's edge-GPU implementation gets its 134x energy
win over the Raspberry Pi "by data packing (for parallel XOR) and
memory reuse".  This module is that software path: hypervectors are
packed 64 dimensions per ``uint64`` word, binding is a word-wise XOR,
and similarity is a popcount -- the representation any software
deployment of a *1-bit* GENERIC model would actually use.  The bit
primitives live in :mod:`repro.core.kernels` (re-exported here for
compatibility); popcount uses ``np.bitwise_count`` when NumPy provides
it, with a byte-LUT fallback, instead of the old 8x-memory
``np.unpackbits`` expansion.

:class:`PackedModel` converts a trained
:class:`~repro.core.classifier.HDClassifier` into sign-quantized packed
class vectors and classifies queries by minimum Hamming distance, which
for binary vectors is a monotone transform of cosine similarity
(``cos = 1 - 2 * hamming / D``), so rankings match the 1-bit
full-precision model exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.classifier import HDClassifier, apply_engine
from repro.core.config import UNSET, ComputeConfig
from repro.core.encoders.base import Encoder
from repro.core.hypervector import sign_quantize, to_binary
from repro.core.kernels import (  # noqa: F401  (re-exported public API)
    pack_bits,
    packed_hamming,
    popcount,
    popcount_words,
    unpack_bits,
)

_WORD = 64


class PackedModel:
    """Sign-quantized, bit-packed HDC classifier for binary deployment."""

    def __init__(self, encoder: Encoder, class_words: np.ndarray,
                 class_labels: np.ndarray, dim: int,
                 encode_jobs=UNSET,
                 config: Optional[ComputeConfig] = None):
        self.encoder = encoder
        self.class_words = np.asarray(class_words, dtype=np.uint64)
        self.class_labels = np.asarray(class_labels)
        self.dim = dim
        self.config = ComputeConfig.from_kwargs(
            config, encode_jobs=encode_jobs, owner=type(self).__name__,
        )

    # legacy attribute, a view over ``self.config``
    @property
    def encode_jobs(self) -> Optional[int]:
        return self.config.encode_jobs

    @encode_jobs.setter
    def encode_jobs(self, value: Optional[int]) -> None:
        self.config.encode_jobs = value

    @classmethod
    def from_classifier(cls, clf: HDClassifier,
                        rng: Optional[np.random.Generator] = None,
                        engine=UNSET,
                        encode_jobs=UNSET,
                        config: Optional[ComputeConfig] = None
                        ) -> "PackedModel":
        """Sign-quantize and pack a trained classifier's class matrix.

        ``config.engine`` selects the query-encoding path when the
        encoder supports one (see
        :class:`~repro.core.encoders.generic.GenericEncoder`);
        ``config.encode_jobs`` fans query encoding out over a thread
        pool.  ``engine``/``encode_jobs`` remain as deprecated aliases.
        """
        if clf.model_ is None:
            raise RuntimeError("PackedModel needs a fitted classifier")
        merged = ComputeConfig.from_kwargs(
            config, engine=engine, encode_jobs=encode_jobs,
            owner="PackedModel.from_classifier",
        )
        apply_engine(clf.encoder, merged.engine,
                     owner="PackedModel.from_classifier")
        signs = np.vstack([
            sign_quantize(row, rng=rng) for row in clf.model_
        ])
        words = pack_bits(to_binary(signs))
        return cls(clf.encoder, words, clf.classes_, clf.encoder.dim,
                   config=merged)

    def with_words(self, class_words: np.ndarray) -> "PackedModel":
        """A shallow clone scored against substituted class words.

        The packed counterpart of
        :meth:`~repro.core.classifier.HDClassifier.with_model`: encoder,
        labels and config are shared, only the class memory differs.
        Used by fault injection (VOS bit flips on the packed memory).
        """
        return PackedModel(self.encoder, class_words, self.class_labels,
                           self.dim, config=self.config.replace())

    # -- inference --------------------------------------------------------------

    def encode_packed(self, X: np.ndarray) -> np.ndarray:
        """Encode raw inputs to sign-quantized packed query words.

        Exposed separately from :meth:`predict` so batch servers (see
        :mod:`repro.serve`) can time and schedule the encode and search
        stages independently.
        """
        encodings = self.encoder.encode_batch(
            np.atleast_2d(X), n_jobs=self.encode_jobs
        )
        signs = np.where(encodings >= 0, 1, -1).astype(np.int8)
        return pack_bits(to_binary(signs))

    # backwards-compatible private alias
    _encode_packed = encode_packed

    def _words_for_dim(self, dim: Optional[int]) -> Optional[int]:
        """Word count covering a reduced prefix of ``dim`` dimensions."""
        if dim is None or dim == self.dim:
            return None
        if dim % _WORD != 0:
            raise ValueError(
                f"reduced dim {dim} must be a multiple of {_WORD} for packed search"
            )
        if not 0 < dim <= self.dim:
            raise ValueError(f"reduced dim {dim} out of range (0, {self.dim}]")
        return dim // _WORD

    def hamming_to_classes(
        self, query_words: np.ndarray, dim: Optional[int] = None
    ) -> np.ndarray:
        """(N, n_classes) Hamming distances of packed queries to classes.

        With ``dim`` set, only the first ``dim`` dimensions (a whole
        number of 64-bit words) participate -- the packed counterpart of
        the paper's on-demand dimension reduction.  Binary prefix norms
        are exact by construction (every surviving dimension contributes
        exactly one bit), so reduced-dimension rankings need no
        correction table.
        """
        q = np.atleast_2d(query_words)
        words = self._words_for_dim(dim)
        if words is None:
            return packed_hamming(q[:, None, :], self.class_words[None, :, :])
        return packed_hamming(
            q[:, None, :words], self.class_words[None, :, :words]
        )

    def predict_packed(
        self, query_words: np.ndarray, dim: Optional[int] = None
    ) -> np.ndarray:
        """Classify pre-packed queries by minimum (prefix) Hamming distance."""
        distances = self.hamming_to_classes(query_words, dim=dim)
        return self.class_labels[np.argmin(distances, axis=1)]

    def predict(self, X: np.ndarray, dim: Optional[int] = None) -> np.ndarray:
        """Classify by minimum Hamming distance (max binary cosine)."""
        return self.predict_packed(self.encode_packed(X), dim=dim)

    def score(self, X: np.ndarray, y: np.ndarray,
              dim: Optional[int] = None) -> float:
        return float(np.mean(self.predict(X, dim=dim) == np.asarray(y)))

    # -- footprint ---------------------------------------------------------------

    def model_bytes(self) -> int:
        """Deployed model size: one bit per class dimension."""
        return self.class_words.size * 8

    def compression_vs_16bit(self) -> float:
        """Footprint factor versus the accelerator's 16-bit class words."""
        full = len(self.class_labels) * self.dim * 2
        return full / self.model_bytes()
