"""Bit-packed binary HDC inference (the eGPU implementation's trick).

Section 3.3: the paper's edge-GPU implementation gets its 134x energy
win over the Raspberry Pi "by data packing (for parallel XOR) and
memory reuse".  This module is that software path: hypervectors are
packed 64 dimensions per ``uint64`` word, binding is a word-wise XOR,
and similarity is a popcount -- the representation any software
deployment of a *1-bit* GENERIC model would actually use.

:class:`PackedModel` converts a trained
:class:`~repro.core.classifier.HDClassifier` into sign-quantized packed
class vectors and classifies queries by minimum Hamming distance, which
for binary vectors is a monotone transform of cosine similarity
(``cos = 1 - 2 * hamming / D``), so rankings match the 1-bit
full-precision model exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.encoders.base import Encoder
from repro.core.hypervector import sign_quantize, to_binary

_WORD = 64


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a {0,1} array (..., D) into (..., ceil(D/64)) uint64 words."""
    bits = np.asarray(bits, dtype=np.uint8)
    d = bits.shape[-1]
    pad = (-d) % _WORD
    if pad:
        bits = np.concatenate(
            [bits, np.zeros((*bits.shape[:-1], pad), dtype=np.uint8)], axis=-1
        )
    bytes_ = np.packbits(bits, axis=-1, bitorder="little")
    return bytes_.view(np.uint64).reshape(*bits.shape[:-1], -1)


def unpack_bits(words: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`, truncated to ``dim`` bits."""
    words = np.asarray(words, dtype=np.uint64)
    bytes_ = words.view(np.uint8)
    bits = np.unpackbits(bytes_, axis=-1, bitorder="little")
    return bits[..., :dim]


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of packed words (sum over the last axis)."""
    bytes_ = np.asarray(words, dtype=np.uint64).view(np.uint8)
    return np.unpackbits(bytes_, axis=-1).sum(axis=-1).astype(np.int64)


def packed_hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamming distance between packed rows: popcount(a XOR b).

    Broadcasting follows NumPy: (N, W) vs (C, 1, W)-style layouts work.
    """
    return popcount(np.bitwise_xor(a, b))


class PackedModel:
    """Sign-quantized, bit-packed HDC classifier for binary deployment."""

    def __init__(self, encoder: Encoder, class_words: np.ndarray,
                 class_labels: np.ndarray, dim: int):
        self.encoder = encoder
        self.class_words = np.asarray(class_words, dtype=np.uint64)
        self.class_labels = np.asarray(class_labels)
        self.dim = dim

    @classmethod
    def from_classifier(cls, clf: HDClassifier,
                        rng: Optional[np.random.Generator] = None) -> "PackedModel":
        """Sign-quantize and pack a trained classifier's class matrix."""
        if clf.model_ is None:
            raise RuntimeError("PackedModel needs a fitted classifier")
        signs = np.vstack([
            sign_quantize(row, rng=rng) for row in clf.model_
        ])
        words = pack_bits(to_binary(signs))
        return cls(clf.encoder, words, clf.classes_, clf.encoder.dim)

    # -- inference --------------------------------------------------------------

    def encode_packed(self, X: np.ndarray) -> np.ndarray:
        """Encode raw inputs to sign-quantized packed query words.

        Exposed separately from :meth:`predict` so batch servers (see
        :mod:`repro.serve`) can time and schedule the encode and search
        stages independently.
        """
        encodings = self.encoder.encode_batch(np.atleast_2d(X))
        signs = np.where(encodings >= 0, 1, -1).astype(np.int8)
        return pack_bits(to_binary(signs))

    # backwards-compatible private alias
    _encode_packed = encode_packed

    def _words_for_dim(self, dim: Optional[int]) -> Optional[int]:
        """Word count covering a reduced prefix of ``dim`` dimensions."""
        if dim is None or dim == self.dim:
            return None
        if dim % _WORD != 0:
            raise ValueError(
                f"reduced dim {dim} must be a multiple of {_WORD} for packed search"
            )
        if not 0 < dim <= self.dim:
            raise ValueError(f"reduced dim {dim} out of range (0, {self.dim}]")
        return dim // _WORD

    def hamming_to_classes(
        self, query_words: np.ndarray, dim: Optional[int] = None
    ) -> np.ndarray:
        """(N, n_classes) Hamming distances of packed queries to classes.

        With ``dim`` set, only the first ``dim`` dimensions (a whole
        number of 64-bit words) participate -- the packed counterpart of
        the paper's on-demand dimension reduction.  Binary prefix norms
        are exact by construction (every surviving dimension contributes
        exactly one bit), so reduced-dimension rankings need no
        correction table.
        """
        q = np.atleast_2d(query_words)
        words = self._words_for_dim(dim)
        if words is None:
            return packed_hamming(q[:, None, :], self.class_words[None, :, :])
        return packed_hamming(
            q[:, None, :words], self.class_words[None, :, :words]
        )

    def predict_packed(
        self, query_words: np.ndarray, dim: Optional[int] = None
    ) -> np.ndarray:
        """Classify pre-packed queries by minimum (prefix) Hamming distance."""
        distances = self.hamming_to_classes(query_words, dim=dim)
        return self.class_labels[np.argmin(distances, axis=1)]

    def predict(self, X: np.ndarray, dim: Optional[int] = None) -> np.ndarray:
        """Classify by minimum Hamming distance (max binary cosine)."""
        return self.predict_packed(self.encode_packed(X), dim=dim)

    def score(self, X: np.ndarray, y: np.ndarray,
              dim: Optional[int] = None) -> float:
        return float(np.mean(self.predict(X, dim=dim) == np.asarray(y)))

    # -- footprint ---------------------------------------------------------------

    def model_bytes(self) -> int:
        """Deployed model size: one bit per class dimension."""
        return self.class_words.size * 8

    def compression_vs_16bit(self) -> float:
        """Footprint factor versus the accelerator's 16-bit class words."""
        full = len(self.class_labels) * self.dim * 2
        return full / self.model_bytes()
