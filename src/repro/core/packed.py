"""Bit-packed binary HDC inference (the eGPU implementation's trick).

Section 3.3: the paper's edge-GPU implementation gets its 134x energy
win over the Raspberry Pi "by data packing (for parallel XOR) and
memory reuse".  This module is that software path: hypervectors are
packed 64 dimensions per ``uint64`` word, binding is a word-wise XOR,
and similarity is a popcount -- the representation any software
deployment of a *1-bit* GENERIC model would actually use.  The bit
primitives live in :mod:`repro.core.kernels` (re-exported here for
compatibility); popcount uses ``np.bitwise_count`` when NumPy provides
it, with a byte-LUT fallback, instead of the old 8x-memory
``np.unpackbits`` expansion.

:class:`PackedModel` converts a trained
:class:`~repro.core.classifier.HDClassifier` into sign-quantized packed
class vectors and classifies queries by minimum Hamming distance, which
for binary vectors is a monotone transform of cosine similarity
(``cos = 1 - 2 * hamming / D``), so rankings match the 1-bit
full-precision model exactly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.classifier import HDClassifier, apply_engine
from repro.core.config import UNSET, ComputeConfig
from repro.core.encoders.base import Encoder
from repro.core.hypervector import sign_quantize, to_binary
from repro.core.kernels import (  # noqa: F401  (re-exported public API)
    GenericPackedKernel,
    pack_bits,
    packed_hamming,
    popcount,
    popcount_words,
    unpack_bits,
)

_WORD = 64

#: canonical array keys of a shared packed-model image
_IMG_CLASS_WORDS = "class_words"
_IMG_LEVELS = "levels"
_IMG_IDS = "ids"
_IMG_KERNEL_TABLES = "kernel_tables"
_IMG_KERNEL_IDS = "kernel_id_words"


def _owns(arr: Optional[np.ndarray]) -> bool:
    """Does ``arr``'s buffer terminate in NumPy-owned memory?

    Walks the view chain: an array produced by slicing/``view`` of an
    ordinary ndarray is still *owned* (its lifetime is self-contained
    and pickling copies it), while one whose chain bottoms out in a
    foreign buffer -- a ``memoryview`` over a shared-memory segment, a
    ``bytes`` object -- is not: it dies with that buffer.
    """
    if arr is None:
        return False
    base = arr
    while isinstance(base, np.ndarray) and not base.flags["OWNDATA"]:
        base = base.base
    return base is None or isinstance(base, np.ndarray)


class PackedModel:
    """Sign-quantized, bit-packed HDC classifier for binary deployment."""

    def __init__(self, encoder: Encoder, class_words: np.ndarray,
                 class_labels: np.ndarray, dim: int,
                 encode_jobs=UNSET,
                 config: Optional[ComputeConfig] = None):
        self.encoder = encoder
        self.class_words = np.asarray(class_words, dtype=np.uint64)
        self.class_labels = np.asarray(class_labels)
        self.dim = dim
        self.config = ComputeConfig.from_kwargs(
            config, encode_jobs=encode_jobs, owner=type(self).__name__,
        )
        #: shared-memory segment this model's arrays are mapped from
        #: (set by :meth:`from_shared`; ``None`` for ordinary models)
        self.shared_segment: Optional[str] = None

    # legacy attribute, a view over ``self.config``
    @property
    def encode_jobs(self) -> Optional[int]:
        return self.config.encode_jobs

    @encode_jobs.setter
    def encode_jobs(self, value: Optional[int]) -> None:
        self.config.encode_jobs = value

    @classmethod
    def from_classifier(cls, clf: HDClassifier,
                        rng: Optional[np.random.Generator] = None,
                        engine=UNSET,
                        encode_jobs=UNSET,
                        config: Optional[ComputeConfig] = None
                        ) -> "PackedModel":
        """Sign-quantize and pack a trained classifier's class matrix.

        ``config.engine`` selects the query-encoding path when the
        encoder supports one (see
        :class:`~repro.core.encoders.generic.GenericEncoder`);
        ``config.encode_jobs`` fans query encoding out over a thread
        pool.  ``engine``/``encode_jobs`` remain as deprecated aliases.
        """
        if clf.model_ is None:
            raise RuntimeError("PackedModel needs a fitted classifier")
        merged = ComputeConfig.from_kwargs(
            config, engine=engine, encode_jobs=encode_jobs,
            owner="PackedModel.from_classifier",
        )
        apply_engine(clf.encoder, merged.engine,
                     owner="PackedModel.from_classifier")
        signs = np.vstack([
            sign_quantize(row, rng=rng) for row in clf.model_
        ])
        words = pack_bits(to_binary(signs))
        return cls(clf.encoder, words, clf.classes_, clf.encoder.dim,
                   config=merged)

    def with_words(self, class_words: np.ndarray,
                   copy: bool = False) -> "PackedModel":
        """A shallow clone scored against substituted class words.

        The packed counterpart of
        :meth:`~repro.core.classifier.HDClassifier.with_model`: encoder,
        labels and config are shared, only the class memory differs.
        Used by fault injection (VOS bit flips on the packed memory).

        **Ownership contract:** by default the clone *aliases* whatever
        buffer backs ``class_words`` -- a view stays a view, so mutating
        the source later silently changes the clone (and vice versa
        where writable).  Pass ``copy=True`` to materialize a private,
        owned copy -- required when the clone must outlive its source,
        e.g. a model derived from a shared-memory mapping that is about
        to be unlinked.  :attr:`owns_words` reports the resulting state.
        """
        words = np.asarray(class_words, dtype=np.uint64)
        if copy:
            words = np.array(words, dtype=np.uint64, order="C", copy=True)
        return PackedModel(self.encoder, words, self.class_labels,
                           self.dim, config=self.config.replace())

    # -- buffer ownership ---------------------------------------------------

    @property
    def owns_words(self) -> bool:
        """True when ``class_words`` owns its buffer (no aliasing).

        False for views -- e.g. models mapped from shared memory
        (:meth:`from_shared`) or cloned via ``with_words(copy=False)``
        on a view.  A model that does not own its words must not
        outlive the buffer they alias; :meth:`materialize` (or
        pickling, which materializes implicitly) breaks the alias.
        """
        return _owns(self.class_words)

    def materialize(self) -> "PackedModel":
        """Return ``self`` if fully owned, else an owned deep clone.

        The clone copies the class words *and* rebuilds the encoder's
        packed kernel from owned tables, so nothing in the result
        references a shared segment or a caller's array.
        """
        if self.owns_words and self.shared_segment is None:
            return self
        import pickle as _pickle

        return _pickle.loads(_pickle.dumps(self))

    def __getstate__(self):
        """Pickle with clean buffer ownership.

        A view-backed ``class_words`` (shared-memory mapping, fault
        clone) is materialized into an owned copy, and the shared
        segment reference is dropped -- an unpickled model never
        depends on a segment that may no longer exist.  (NumPy copies
        view *data* on pickle anyway; this makes the contract explicit
        and clears the read-only flag shared mappings carry.)
        """
        state = self.__dict__.copy()
        words = state.get("class_words")
        if words is not None and not _owns(words):
            state["class_words"] = np.array(words, dtype=np.uint64,
                                            order="C", copy=True)
        state["shared_segment"] = None
        return state

    def __setstate__(self, state):
        state.setdefault("shared_segment", None)
        self.__dict__.update(state)

    # -- shared-memory images ------------------------------------------------

    def to_shared(self, arena, epoch: int = 0,
                  name: Optional[str] = None):
        """Publish this model's big arrays as one shared-memory image.

        Returns a picklable
        :class:`~repro.core.shared.SharedImageSpec` whose ``meta``
        holds the pickled model *skeleton* (everything but the big
        arrays).  Worker processes rebuild the model zero-copy with
        :meth:`from_shared` -- every worker maps the same physical
        uint64 level tables, id words and class words.

        ``arena`` is a :class:`~repro.core.shared.SharedModelArena`;
        the caller is responsible for unlinking the segment through it
        (the arena's atexit hook backstops leaks).
        """
        from repro.core.shared import dump_meta

        enc = self.encoder
        arrays = {_IMG_CLASS_WORDS: self.class_words}
        kernel = None
        if hasattr(enc, "_current_kernel") and getattr(enc, "fitted", False):
            kernel = enc._current_kernel()
            arrays[_IMG_KERNEL_TABLES] = kernel.tables
            if kernel.id_words is not None:
                arrays[_IMG_KERNEL_IDS] = kernel.id_words
        if getattr(enc, "levels", None) is not None:
            arrays[_IMG_LEVELS] = enc.levels.vectors
        if getattr(enc, "_ids", None) is not None:
            arrays[_IMG_IDS] = enc._ids

        # pickle the skeleton with the shared arrays detached, then
        # restore -- to_shared must leave ``self`` untouched.  (The
        # encoder's own __getstate__ already drops the packed kernel.)
        stash = [(self, "class_words")]
        if _IMG_LEVELS in arrays:
            stash.append((enc.levels, "vectors"))
        if _IMG_IDS in arrays:
            stash.append((enc, "_ids"))
        saved = [(obj, attr, getattr(obj, attr)) for obj, attr in stash]
        try:
            for obj, attr, _ in saved:
                setattr(obj, attr, None)
            meta = dump_meta(self)
        finally:
            for obj, attr, value in saved:
                setattr(obj, attr, value)
        return arena.publish(arrays, meta=meta, epoch=epoch, name=name)

    @classmethod
    def from_shared(cls, spec, arena) -> "PackedModel":
        """Rebuild a model from a published image, zero-copy.

        Every array the image carries is mapped read-only straight out
        of the shared segment -- no unpickling of tables, no per-worker
        copy.  The encoder's packed kernel is reassembled around the
        mapped ``rho^j(levels)`` tables, so the first encode does not
        silently rebuild (and privately re-allocate) them.

        The returned model is valid while ``arena`` keeps the segment
        attached; call :meth:`materialize` to break that dependency.
        """
        from repro.core.shared import load_meta

        views = arena.attach(spec)
        model = load_meta(spec.meta)
        if not isinstance(model, cls):
            raise TypeError(
                f"image meta holds {type(model).__name__}, expected {cls.__name__}"
            )
        model.class_words = views[_IMG_CLASS_WORDS]
        model.shared_segment = spec.segment
        enc = model.encoder
        if _IMG_LEVELS in views and getattr(enc, "levels", None) is not None:
            enc.levels.vectors = views[_IMG_LEVELS]
        if _IMG_IDS in views and hasattr(enc, "_ids"):
            enc._ids = views[_IMG_IDS]
        if _IMG_KERNEL_TABLES in views and hasattr(enc, "_kernel"):
            tables = views[_IMG_KERNEL_TABLES]
            kernel = GenericPackedKernel.__new__(GenericPackedKernel)
            kernel.window = enc.window
            kernel.dim = enc.dim
            kernel.words = tables.shape[-1]
            kernel.tables = tables
            kernel.id_words = views.get(_IMG_KERNEL_IDS)
            enc._kernel = kernel
            enc._kernel_sources = (
                enc.levels.vectors if getattr(enc, "levels", None) is not None
                else None,
                enc._ids,
            )
        return model

    # -- inference --------------------------------------------------------------

    def encode_packed(self, X: np.ndarray) -> np.ndarray:
        """Encode raw inputs to sign-quantized packed query words.

        Exposed separately from :meth:`predict` so batch servers (see
        :mod:`repro.serve`) can time and schedule the encode and search
        stages independently.
        """
        encodings = self.encoder.encode_batch(
            np.atleast_2d(X), n_jobs=self.encode_jobs
        )
        signs = np.where(encodings >= 0, 1, -1).astype(np.int8)
        return pack_bits(to_binary(signs))

    # backwards-compatible private alias
    _encode_packed = encode_packed

    def _words_for_dim(self, dim: Optional[int]) -> Optional[int]:
        """Word count covering a reduced prefix of ``dim`` dimensions."""
        if dim is None or dim == self.dim:
            return None
        if dim % _WORD != 0:
            raise ValueError(
                f"reduced dim {dim} must be a multiple of {_WORD} for packed search"
            )
        if not 0 < dim <= self.dim:
            raise ValueError(f"reduced dim {dim} out of range (0, {self.dim}]")
        return dim // _WORD

    def hamming_to_classes(
        self, query_words: np.ndarray, dim: Optional[int] = None
    ) -> np.ndarray:
        """(N, n_classes) Hamming distances of packed queries to classes.

        With ``dim`` set, only the first ``dim`` dimensions (a whole
        number of 64-bit words) participate -- the packed counterpart of
        the paper's on-demand dimension reduction.  Binary prefix norms
        are exact by construction (every surviving dimension contributes
        exactly one bit), so reduced-dimension rankings need no
        correction table.
        """
        q = np.atleast_2d(query_words)
        words = self._words_for_dim(dim)
        if words is None:
            return packed_hamming(q[:, None, :], self.class_words[None, :, :])
        return packed_hamming(
            q[:, None, :words], self.class_words[None, :, :words]
        )

    def predict_packed(
        self, query_words: np.ndarray, dim: Optional[int] = None
    ) -> np.ndarray:
        """Classify pre-packed queries by minimum (prefix) Hamming distance."""
        distances = self.hamming_to_classes(query_words, dim=dim)
        return self.class_labels[np.argmin(distances, axis=1)]

    def topk_to_classes(
        self, query_words: np.ndarray, k: int = 1,
        dim: Optional[int] = None,
        rows: Optional[slice] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-query ``k`` best class rows: ``(distances, row_indices)``.

        Rows come back sorted by ``(distance, row index)`` -- the same
        first-occurrence tie-break :func:`np.argmin` applies -- so a
        router that merges per-shard top-k lists by that key reproduces
        single-process :meth:`predict_packed` bit for bit (see
        :mod:`repro.serve.sharded.router`).  ``rows`` restricts the
        search to a contiguous slice of class rows (a class-partitioned
        shard's slice); returned indices are *global* row numbers.
        """
        lo = 0
        words = self.class_words
        if rows is not None:
            lo = rows.start or 0
            words = words[rows]
        q = np.atleast_2d(query_words)
        nw = self._words_for_dim(dim)
        if nw is None:
            dist = packed_hamming(q[:, None, :], words[None, :, :])
        else:
            dist = packed_hamming(q[:, None, :nw], words[None, :, :nw])
        n_rows = dist.shape[1]
        k = min(int(k), n_rows)
        # stable sort keeps equal distances in row order, i.e. the
        # lexicographic (distance, row) key the router merge relies on
        order = np.argsort(dist, axis=1, kind="stable")[:, :k]
        top = np.take_along_axis(dist, order, axis=1)
        return top, order.astype(np.int64) + lo

    def predict(self, X: np.ndarray, dim: Optional[int] = None) -> np.ndarray:
        """Classify by minimum Hamming distance (max binary cosine)."""
        return self.predict_packed(self.encode_packed(X), dim=dim)

    def score(self, X: np.ndarray, y: np.ndarray,
              dim: Optional[int] = None) -> float:
        return float(np.mean(self.predict(X, dim=dim) == np.asarray(y)))

    # -- footprint ---------------------------------------------------------------

    def model_bytes(self) -> int:
        """Deployed model size: one bit per class dimension."""
        return self.class_words.size * 8

    def compression_vs_16bit(self) -> float:
        """Footprint factor versus the accelerator's 16-bit class words."""
        full = len(self.class_labels) * self.dim * 2
        return full / self.model_bytes()
