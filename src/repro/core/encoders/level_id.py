"""Level-id encoding (paper Section 2.2).

Each feature index ``m`` owns a random (but constant) binary id that is
multiplied (XOR in binary) with the feature's level hypervector; the
bound vectors are bundled:

    H(X) = sum_m id_m * l(x_m)

Like permutation encoding this captures per-position values, but through
random-id binding instead of shifts.  It was the strongest HDC baseline
in the paper's Table 1 (90.0% mean).
"""

from __future__ import annotations

import numpy as np

from repro.core.encoders.base import DEFAULT_DIM, DEFAULT_LEVELS, Encoder, OpProfile
from repro.core.ids import IdTable


class LevelIdEncoder(Encoder):
    """Bundle id-bound level hypervectors, one id per feature index."""

    name = "level-id"

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        num_levels: int = DEFAULT_LEVELS,
        seed: int = 0,
    ):
        super().__init__(dim=dim, num_levels=num_levels, seed=seed)
        self.ids: IdTable | None = None

    def _allocate(self, X: np.ndarray) -> None:
        self.ids = IdTable(self.rng, self.n_features, self.dim)

    def _encode_chunk(self, X: np.ndarray) -> np.ndarray:
        bins = self.quantizer.transform(X)
        lv = self.levels[bins]  # (B, d, dim) int8
        bound = lv * self.ids.all()[None, :, :]
        return bound.sum(axis=1, dtype=np.int32)

    def _op_profile(self) -> OpProfile:
        d = int(self.n_features)
        return OpProfile(
            xor_ops=d * self.dim,
            add_ops=d * self.dim,
            mem_bytes=2 * d * self.dim // 8,
        )
