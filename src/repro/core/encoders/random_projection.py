"""Random-projection encoding (paper Section 2.2, Fig. 2c).

Each feature index owns a random bipolar id; the *raw feature value*
multiplies its id and the products are accumulated:

    H(X) = sum_m x_m * id_m

i.e. a signed random projection of the input into the hyperspace.  The
projection preserves the geometry of the raw feature vector (good for
tabular data, 94.6% on MNIST in Table 1) but collapses temporal
structure that only shows in the *arrangement* of values (46.8% on EEG,
8.2% on LANG).
"""

from __future__ import annotations

import numpy as np

from repro.core.encoders.base import DEFAULT_DIM, DEFAULT_LEVELS, Encoder, OpProfile
from repro.core.ids import IdTable


class RandomProjectionEncoder(Encoder):
    """Signed random projection: bundle value-weighted ids."""

    name = "rp"

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        num_levels: int = DEFAULT_LEVELS,
        seed: int = 0,
        quantize: bool = True,
    ):
        super().__init__(dim=dim, num_levels=num_levels, seed=seed)
        #: quantize the projection back to levels, as the fixed-point ASIC
        #: baseline does; disable for an exact float projection.
        self.quantize = quantize
        self.ids: IdTable | None = None

    def _allocate(self, X: np.ndarray) -> None:
        self.ids = IdTable(self.rng, self.n_features, self.dim)

    def _encode_chunk(self, X: np.ndarray) -> np.ndarray:
        # Normalize values into level indices so magnitudes are bounded the
        # same way as the other fixed-point encoders.
        if self.quantize:
            values = self.quantizer.transform(X).astype(np.float64)
        else:
            values = X
        proj = values @ self.ids.all().astype(np.float64)
        return np.rint(proj).astype(np.int32)

    def _op_profile(self) -> OpProfile:
        d = int(self.n_features)
        return OpProfile(
            mul_ops=d * self.dim,
            add_ops=d * self.dim,
            mem_bytes=d * self.dim // 8 + d,
        )
