"""Name-based encoder construction for experiments and the CLI examples."""

from __future__ import annotations

from typing import Dict, Type

from repro.core.encoders.base import Encoder
from repro.core.encoders.generic import GenericEncoder, NgramEncoder
from repro.core.encoders.level_id import LevelIdEncoder
from repro.core.encoders.permutation import PermutationEncoder
from repro.core.encoders.random_projection import RandomProjectionEncoder

ENCODERS: Dict[str, Type[Encoder]] = {
    GenericEncoder.name: GenericEncoder,
    NgramEncoder.name: NgramEncoder,
    LevelIdEncoder.name: LevelIdEncoder,
    PermutationEncoder.name: PermutationEncoder,
    RandomProjectionEncoder.name: RandomProjectionEncoder,
}

#: Table 1 column order of the paper.
PAPER_ORDER = ("rp", "level-id", "ngram", "permute", "generic")


def make_encoder(name: str, **kwargs) -> Encoder:
    """Instantiate an encoder by its paper name (see ``ENCODERS``)."""
    try:
        cls = ENCODERS[name]
    except KeyError:
        known = ", ".join(sorted(ENCODERS))
        raise ValueError(f"unknown encoder {name!r}; known encoders: {known}")
    return cls(**kwargs)
