"""Shared machinery for HDC encoders.

Every encoder maps a raw feature vector ``x`` (length ``d``) to an
encoded hypervector of length ``dim``.  Encoders are *fit* on training
data (to learn the quantization range and allocate level/id tables) and
then encode single inputs or batches.  Batch encoding is chunked so the
encode intermediates stay within a bounded memory footprint -- each
encoder reports its own per-sample cost via ``_chunk_cost`` -- and can
fan chunks out over a thread pool (``n_jobs``), since the NumPy kernels
release the GIL.

Encoders also report an :class:`OpProfile` -- the operation counts the
platform models in :mod:`repro.platforms` use to estimate energy and
latency on conventional devices (Fig. 3 of the paper).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.levels import LevelTable, Quantizer
from repro.obs import trace as obs_trace

DEFAULT_DIM = 4096
DEFAULT_LEVELS = 64
_CHUNK_BUDGET = 64 * 1024 * 1024  # bytes of encode intermediates per chunk


def _resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request: None/0/1 -> serial, <0 -> all cores."""
    if n_jobs is None or n_jobs == 0 or n_jobs == 1:
        return 1
    if n_jobs < 0:
        return os.cpu_count() or 1
    return int(n_jobs)


@dataclass
class OpProfile:
    """Operation counts for encoding one input (per-sample)."""

    xor_ops: int = 0
    add_ops: int = 0
    mul_ops: int = 0
    mem_bytes: int = 0
    notes: Dict[str, int] = field(default_factory=dict)

    def total_ops(self) -> int:
        return self.xor_ops + self.add_ops + self.mul_ops


class Encoder(ABC):
    """Base class: fit a quantizer + tables, then encode inputs."""

    #: human-readable name used by the registry and result tables
    name: str = "base"

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        num_levels: int = DEFAULT_LEVELS,
        seed: int = 0,
        level_scheme: str = "linear",
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.num_levels = num_levels
        self.seed = seed
        self.level_scheme = level_scheme
        self.rng = np.random.default_rng(seed)
        self.quantizer = Quantizer(num_levels=num_levels)
        self.levels: Optional[LevelTable] = None
        self.n_features: Optional[int] = None

    # -- fitting ---------------------------------------------------------

    def fit(self, X: np.ndarray) -> "Encoder":
        """Learn the quantization range and allocate per-index tables."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected (N, d) matrix, got shape {X.shape}")
        self.n_features = X.shape[1]
        self.quantizer.fit(X)
        self.levels = LevelTable(
            self.rng, self.num_levels, self.dim, scheme=self.level_scheme
        )
        self._allocate(X)
        return self

    def _allocate(self, X: np.ndarray) -> None:
        """Hook for subclasses to allocate id tables etc. after fit."""

    @property
    def fitted(self) -> bool:
        return self.n_features is not None

    def _check_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError(f"{type(self).__name__} used before fit()")

    # -- encoding --------------------------------------------------------

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Encode a single input vector to an int32 hypervector."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"encode() takes a single input, got shape {x.shape}")
        return self.encode_batch(x[None, :])[0]

    def encode_batch(
        self,
        X: np.ndarray,
        chunk: Optional[int] = None,
        n_jobs: Optional[int] = None,
    ) -> np.ndarray:
        """Encode a batch of inputs; returns an ``(N, dim)`` int32 matrix.

        The batch is split into chunks sized from the encoder's own
        :meth:`_chunk_cost` estimate (bytes of intermediates per sample)
        so the working set stays near the 64 MiB budget.  With
        ``n_jobs`` set (``-1`` = all cores), chunks fan out over a
        thread pool -- the NumPy kernels release the GIL, and every
        chunk writes a disjoint slice of the preallocated output, so the
        result is identical for any worker count.
        """
        self._check_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"input has {X.shape[1]} features, encoder fitted with "
                f"{self.n_features}"
            )
        if chunk is None:
            chunk = self._auto_chunk(len(X))
        out = np.empty((len(X), self.dim), dtype=np.int32)
        spans = [
            (start, min(start + chunk, len(X)))
            for start in range(0, len(X), chunk)
        ]
        jobs = min(_resolve_jobs(n_jobs), len(spans))
        with obs_trace.span(
            "encode", encoder=self.name, engine=self._engine_label(),
            samples=len(X), dim=self.dim, jobs=jobs,
        ) as sp:
            if jobs > 1:
                def _run(span):
                    start, stop = span
                    out[start:stop] = self._encode_chunk(X[start:stop])

                with ThreadPoolExecutor(max_workers=jobs) as pool:
                    # list() so every future is awaited and errors propagate
                    list(pool.map(_run, spans))
            else:
                for start, stop in spans:
                    out[start:stop] = self._encode_chunk(X[start:stop])
            if sp.recording:
                # logical (engine-independent) per-sample ops x batch size
                profile = self._op_profile()
                sp.add_ops(
                    xor_ops=profile.xor_ops * len(X),
                    add_ops=profile.add_ops * len(X),
                    mul_ops=profile.mul_ops * len(X),
                    mem_bytes=profile.mem_bytes * len(X),
                )
                extra = self._span_attrs(len(X))
                if extra:
                    sp.set(**extra)
        return out

    def _auto_chunk(self, n: int) -> int:
        """Chunk size keeping per-chunk intermediates within the budget.

        Encoders lowered onto the primitive IR size chunks from the
        planner's per-chunk cost estimate (:meth:`_planned_chunk`);
        everything else falls back to the local :meth:`_chunk_cost`
        heuristic against the budget.
        """
        planned = self._planned_chunk()
        if planned is not None:
            return max(1, min(n, int(planned)))
        return max(1, min(n, _CHUNK_BUDGET // max(1, self._chunk_cost())))

    def _planned_chunk(self) -> Optional[int]:
        """Hook: the planner's samples-per-chunk, or None if unplanned."""
        return None

    def _span_attrs(self, n_samples: int) -> Dict:
        """Hook: extra attrs for the encode span (e.g. per-primitive ops)."""
        return {}

    def _chunk_cost(self) -> int:
        """Approximate bytes of encode intermediates per input sample.

        The default charges the ``(chunk, d, dim)`` int8 level lookup;
        encoders with bigger working sets (windowed encoders allocate
        ``n_windows``-scale products per offset) must override this so
        :meth:`encode_batch` does not overshoot the chunk budget.
        """
        return int(self.n_features) * self.dim

    @abstractmethod
    def _encode_chunk(self, X: np.ndarray) -> np.ndarray:
        """Encode a small batch; subclasses implement the actual math."""

    def _engine_label(self) -> str:
        """Engine tag attached to encode spans (overridden where selectable)."""
        return "reference"

    # -- cost reporting ----------------------------------------------------

    def op_profile(self) -> OpProfile:
        """Per-input operation counts (used by the device models)."""
        self._check_fitted()
        return self._op_profile()

    def _op_profile(self) -> OpProfile:
        d = int(self.n_features or 0)
        return OpProfile(add_ops=d * self.dim, mem_bytes=d * self.dim // 8)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(dim={self.dim}, "
            f"num_levels={self.num_levels}, seed={self.seed})"
        )
