"""Permutation encoding (paper Section 2.2, Fig. 2b).

Binding by circular shift: the level hypervector of the ``m``-th feature
is permuted by ``m`` indexes before bundling:

    H(X) = sum_m rho^m( l(x_m) )

Positional order is captured through the shift amount, so the encoding
works for spatio-temporal data but enforces strict global ordering (it
fails when the discriminative structure is order-free, e.g. LANG).
"""

from __future__ import annotations

import numpy as np

from repro.core.encoders.base import Encoder, OpProfile


class PermutationEncoder(Encoder):
    """Bundle per-feature levels, each circularly shifted by its index."""

    name = "permute"

    def _encode_chunk(self, X: np.ndarray) -> np.ndarray:
        bins = self.quantizer.transform(X)
        d = self.n_features
        acc = np.zeros((len(X), self.dim), dtype=np.int32)
        # Shift-by-m is equivalent to gathering at (k - m) mod D; rolling a
        # (B, D) slice per feature keeps the working set small.
        for m in range(d):
            lv = self.levels[bins[:, m]]
            if m % self.dim:
                lv = np.roll(lv, m % self.dim, axis=1)
            acc += lv
        return acc

    def _op_profile(self) -> OpProfile:
        d = int(self.n_features)
        return OpProfile(
            add_ops=d * self.dim,
            mem_bytes=d * self.dim // 8,
            notes={"shifts": d},
        )
