"""HDC encoders: the GENERIC proposal and the paper's four baselines."""

from repro.core.encoders.base import DEFAULT_DIM, DEFAULT_LEVELS, Encoder, OpProfile
from repro.core.encoders.generic import GenericEncoder, NgramEncoder
from repro.core.encoders.level_id import LevelIdEncoder
from repro.core.encoders.permutation import PermutationEncoder
from repro.core.encoders.random_projection import RandomProjectionEncoder
from repro.core.encoders.registry import ENCODERS, PAPER_ORDER, make_encoder

__all__ = [
    "DEFAULT_DIM",
    "DEFAULT_LEVELS",
    "ENCODERS",
    "Encoder",
    "GenericEncoder",
    "LevelIdEncoder",
    "NgramEncoder",
    "OpProfile",
    "PAPER_ORDER",
    "PermutationEncoder",
    "RandomProjectionEncoder",
    "make_encoder",
]
