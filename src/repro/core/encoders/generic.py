"""The GENERIC encoding (paper Section 3.1, Eq. 1, Fig. 2d).

For every sliding window of ``n`` consecutive features, the level
hypervectors of the window's elements are permuted by their in-window
offset (0, 1, ..., n-1) and multiplied element-wise (XOR in binary) into
a *window hypervector*.  The window hypervector is bound with a
per-window ``id`` hypervector to restore the global order of windows,
and all bound window hypervectors are bundled:

    H(X) = sum_{i=1}^{d-n+1}  id_i * prod_{j=0}^{n-1} rho^j( l(x_{i+j}) )

Setting the ids to the binding identity (``use_ids=False``) skips global
binding, which the paper does for order-free applications such as
language identification.  ``n = 3`` is the paper's default.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoders.base import DEFAULT_DIM, DEFAULT_LEVELS, Encoder, OpProfile
from repro.core.ids import SeedIdGenerator, identity_ids


class GenericEncoder(Encoder):
    """Windowed permute-and-bind encoder proposed by the paper."""

    name = "generic"

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        num_levels: int = DEFAULT_LEVELS,
        seed: int = 0,
        window: int = 3,
        use_ids: bool = True,
        level_scheme: str = "linear",
    ):
        super().__init__(
            dim=dim, num_levels=num_levels, seed=seed, level_scheme=level_scheme
        )
        if window < 1:
            raise ValueError(f"window length must be >= 1, got {window}")
        self.window = window
        self.use_ids = use_ids
        self.id_generator: SeedIdGenerator | None = None
        self._ids: np.ndarray | None = None

    def _allocate(self, X: np.ndarray) -> None:
        if self.n_features < self.window:
            raise ValueError(
                f"window={self.window} longer than input ({self.n_features} features)"
            )
        n_windows = self.n_features - self.window + 1
        if self.use_ids:
            self.id_generator = SeedIdGenerator(self.rng, self.dim)
            self._ids = self.id_generator.table(n_windows)
        else:
            self._ids = identity_ids(n_windows, self.dim)

    @property
    def n_windows(self) -> int:
        self._check_fitted()
        return self.n_features - self.window + 1

    def _encode_chunk(self, X: np.ndarray) -> np.ndarray:
        bins = self.quantizer.transform(X)
        n_win = self.n_windows
        prod = np.ones((len(X), n_win, self.dim), dtype=np.int8)
        for j in range(self.window):
            lv = self.levels[bins[:, j : j + n_win]]
            if j:
                lv = np.roll(lv, j, axis=2)
            prod *= lv
        bound = prod * self._ids[None, :, :]
        return bound.sum(axis=1, dtype=np.int32)

    def _op_profile(self) -> OpProfile:
        w = self.n_windows
        # per window: (n-1) XORs to fold the permuted levels, 1 XOR for the
        # id binding, and one accumulation into the bundle.
        xors = w * self.window * self.dim
        adds = w * self.dim
        mem = (self.n_features + w * self.window) * self.dim // 8
        return OpProfile(
            xor_ops=xors,
            add_ops=adds,
            mem_bytes=mem,
            notes={"windows": w, "window_len": self.window},
        )


class NgramEncoder(GenericEncoder):
    """N-gram encoding (paper Section 2.2 / refs [6, 14]).

    Extracts every subsequence of length ``n``, encodes each with the
    permute-and-multiply construction, and bundles them *without* global
    position binding -- exactly the GENERIC construction with identity
    ids.  Captures local subsequences (good for text) but discards the
    global arrangement of features (fails on images and speech).
    """

    name = "ngram"

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        num_levels: int = DEFAULT_LEVELS,
        seed: int = 0,
        window: int = 3,
    ):
        super().__init__(
            dim=dim, num_levels=num_levels, seed=seed, window=window, use_ids=False
        )
