"""The GENERIC encoding (paper Section 3.1, Eq. 1, Fig. 2d).

For every sliding window of ``n`` consecutive features, the level
hypervectors of the window's elements are permuted by their in-window
offset (0, 1, ..., n-1) and multiplied element-wise (XOR in binary) into
a *window hypervector*.  The window hypervector is bound with a
per-window ``id`` hypervector to restore the global order of windows,
and all bound window hypervectors are bundled:

    H(X) = sum_{i=1}^{d-n+1}  id_i * prod_{j=0}^{n-1} rho^j( l(x_{i+j}) )

Setting the ids to the binding identity (``use_ids=False``) skips global
binding, which the paper does for order-free applications such as
language identification.  ``n = 3`` is the paper's default.

Execution lowers onto the primitive IR of :mod:`repro.core.ir`: the
``engine=`` request resolves through the :class:`KernelPlanner
<repro.core.ir.planner.KernelPlanner>` to a registered backend, and the
cached plan decides fusion, window blocking and chunk sizing:

- ``"reference"`` -- the ``numpy-reference`` backend, the direct
  bipolar-domain translation of Eq. 1 (int8 level lookups, ``np.roll``
  per offset, int8 multiplies).  Kept as the readable ground truth.
- ``"packed"`` -- the ``packed-uint64`` backend over
  :class:`~repro.core.kernels.GenericPackedKernel` tables: levels
  packed to uint64 words once at fit (with per-offset permuted
  copies), windows folded by word-wise XOR, bundling by bit-slice
  accumulation.  Bit-identical to the reference and roughly an order
  of magnitude faster (Section 3.3's eGPU data-packing trick in
  software).
- ``"numba"`` -- the optional ``numba-jit`` backend (fully fused
  nopython loops); only accepted when numba is installed.
- ``"auto"`` (default) resolves to the highest-priority available
  backend -- ``packed`` today.

``approx_folds=k`` enables SHEARer-style multifold approximate
encoding: only ``k`` evenly spaced windows are folded and bundled, the
plan surfaces the exact-vs-approx error bound, and ``k = n_windows``
is bit-identical to exact encoding.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoders.base import DEFAULT_DIM, DEFAULT_LEVELS, Encoder, OpProfile
from repro.core.ids import SeedIdGenerator, identity_ids
from repro.core.kernels import GenericPackedKernel, shared_packed_kernel

ENGINES = ("auto", "reference", "packed", "numba")


class GenericEncoder(Encoder):
    """Windowed permute-and-bind encoder proposed by the paper."""

    name = "generic"

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        num_levels: int = DEFAULT_LEVELS,
        seed: int = 0,
        window: int = 3,
        use_ids: bool = True,
        level_scheme: str = "linear",
        engine: str = "auto",
        approx_folds: int | None = None,
    ):
        super().__init__(
            dim=dim, num_levels=num_levels, seed=seed, level_scheme=level_scheme
        )
        if window < 1:
            raise ValueError(f"window length must be >= 1, got {window}")
        self.window = window
        self.use_ids = use_ids
        self.engine = engine
        self.approx_folds = approx_folds
        self.id_generator: SeedIdGenerator | None = None
        self._ids: np.ndarray | None = None

    # -- engine selection -------------------------------------------------

    @property
    def engine(self) -> str:
        return self._engine

    @engine.setter
    def engine(self, value: str) -> None:
        if value not in ENGINES:
            raise ValueError(
                f"unknown encode engine {value!r}; choose from {ENGINES}"
            )
        if value == "numba":
            from repro.core.ir import BACKENDS

            if "numba-jit" not in BACKENDS:
                raise ValueError(
                    "engine 'numba' requires the optional numba dependency "
                    "(numba-jit backend not registered)"
                )
        self._engine = value
        self._kernel: GenericPackedKernel | None = None
        self._plan = None

    @property
    def approx_folds(self) -> int | None:
        """Multifold approximation level (None = exact, fold all windows)."""
        return self._approx_folds

    @approx_folds.setter
    def approx_folds(self, value: int | None) -> None:
        if value is not None:
            value = int(value)
            if value < 1:
                raise ValueError(f"approx_folds must be >= 1, got {value}")
        self._approx_folds = value
        self._plan = None

    def _resolved_engine(self) -> str:
        """The legacy engine label the planner resolves ``engine`` to."""
        from repro.core.ir import BACKEND_TO_ENGINE, PLANNER

        backend = PLANNER.resolve_backend(self._engine)
        return BACKEND_TO_ENGINE.get(backend, backend)

    def __getstate__(self):
        """Pickle without the packed kernel.

        The kernel's uint64 tables are derived data (rebuilt on demand
        by :meth:`_current_kernel`), and ``_kernel_sources`` holds raw
        references to the level/id arrays -- carrying either through a
        pickle would duplicate megabytes of tables or, worse, alias
        arrays the unpickled copy no longer owns (e.g. shared-memory
        views, see :meth:`PackedModel.to_shared
        <repro.core.packed.PackedModel.to_shared>`).
        """
        state = self.__dict__.copy()
        state["_kernel"] = None
        state["_plan"] = None
        state.pop("_kernel_sources", None)
        return state

    def _engine_label(self) -> str:
        return self._resolved_engine()

    def _build_kernel(self) -> GenericPackedKernel:
        # content-hash memoized: with_model clones, re-imported models
        # and repeated fits over the same seed share one packed table set
        kernel = shared_packed_kernel(
            levels=self.levels.vectors,
            ids=self._ids if self.use_ids else None,
            window=self.window,
            dim=self.dim,
        )
        self._kernel = kernel
        self._kernel_sources = (self.levels.vectors, self._ids)
        return kernel

    def _current_kernel(self) -> GenericPackedKernel:
        """The packed kernel, rebuilt if the source tables were swapped.

        Fault injection and :mod:`repro.core.model_io` rebind
        ``levels.vectors`` / ``_ids`` on fitted encoders; an identity
        check keeps the packed tables in sync.  (In-place mutation of a
        table is not detected -- swap the array, or use the reference
        engine, when experimenting that way.)
        """
        if (
            self._kernel is None
            or self._kernel_sources[0] is not self.levels.vectors
            or self._kernel_sources[1] is not self._ids
        ):
            return self._build_kernel()
        return self._kernel

    # -- fitting ----------------------------------------------------------

    def _allocate(self, X: np.ndarray) -> None:
        if self.n_features < self.window:
            raise ValueError(
                f"window={self.window} longer than input ({self.n_features} features)"
            )
        n_windows = self.n_features - self.window + 1
        if self.use_ids:
            self.id_generator = SeedIdGenerator(self.rng, self.dim)
            self._ids = self.id_generator.table(n_windows)
        else:
            self._ids = identity_ids(n_windows, self.dim)
        self._kernel = None
        self._plan = None
        if self._resolved_engine() != "reference":
            self._build_kernel()

    @property
    def n_windows(self) -> int:
        self._check_fitted()
        return self.n_features - self.window + 1

    # -- encoding (lowered onto the primitive IR) --------------------------

    def encode_plan(self):
        """The cached :class:`~repro.core.ir.planner.KernelPlan`.

        One plan per (encoder-fit, shape-class): the planner memoizes by
        :class:`~repro.core.ir.planner.PlanRequest` globally, and the
        encoder pins the resolved plan locally so the hot path never
        re-resolves.  Invalidated by engine/approx changes and refits.
        """
        self._check_fitted()
        plan = self._plan
        if plan is None:
            from repro.core.ir import PLANNER, PlanRequest

            plan = PLANNER.plan(PlanRequest(
                n_features=int(self.n_features),
                window=self.window,
                dim=self.dim,
                num_levels=self.num_levels,
                use_ids=self.use_ids,
                engine=self._engine,
                approx_folds=self._approx_folds,
            ))
            self._plan = plan
        return plan

    def _plan_sources(self, plan):
        from repro.core.ir import EncodeSources

        if plan.backend_name == "numpy-reference":
            return EncodeSources(levels=self.levels.vectors, ids=self._ids)
        return EncodeSources(kernel=self._current_kernel())

    def _encode_chunk(self, X: np.ndarray) -> np.ndarray:
        plan = self.encode_plan()
        bins = self.quantizer.transform(X)
        return plan.execute(self._plan_sources(plan), bins)

    def _encode_chunk_reference(self, X: np.ndarray) -> np.ndarray:
        """The pre-IR direct translation of Eq. 1, kept as ground truth.

        Not on the hot path anymore (the ``numpy-reference`` backend
        executes the same math through the IR); equivalence tests pin
        the two against each other.
        """
        bins = self.quantizer.transform(X)
        n_win = self.n_windows
        prod = np.ones((len(X), n_win, self.dim), dtype=np.int8)
        for j in range(self.window):
            lv = self.levels[bins[:, j : j + n_win]]
            if j:
                lv = np.roll(lv, j, axis=2)
            prod *= lv
        bound = prod * self._ids[None, :, :]
        return bound.sum(axis=1, dtype=np.int32)

    # -- cost reporting ---------------------------------------------------

    def _chunk_cost(self) -> int:
        """Bytes of encode intermediates per sample, from the plan."""
        return self.encode_plan().bytes_per_sample

    def _planned_chunk(self) -> int:
        """Chunk fan-out sized by the planner's per-chunk cost estimate."""
        return self.encode_plan().chunk_samples

    def _span_attrs(self, n_samples: int) -> dict:
        plan = self.encode_plan()
        attrs = {
            "backend": plan.backend_name,
            "primitives": plan.primitive_ops(n_samples),
        }
        if plan.error_bound is not None:
            attrs["approx_folds"] = plan.folds
            attrs["approx_error_bound"] = plan.error_bound[
                "max_abs_count_error"
            ]
        return attrs

    def _op_profile(self) -> OpProfile:
        """Logical per-sample op counts, identical for both engines.

        The packed engine executes word ops (64 dims per uint64 XOR),
        but the *logical* work -- what the device and energy models
        charge -- is per dimension; :meth:`GenericPackedKernel.op_counts`
        reports the same logical totals alongside its word counts, and
        the cross-engine test pins the two views together.
        """
        w = self.n_windows
        # multifold approximation folds only k of the w windows; the
        # profile stays engine-independent either way
        k = w if self._approx_folds is None else min(self._approx_folds, w)
        # per window: (n-1) XORs fold the permuted levels, plus 1 XOR for
        # the id binding when ids are bound, and one accumulation into
        # the bundle.
        per_window = (self.window - 1) + (1 if self.use_ids else 0)
        xors = k * per_window * self.dim
        adds = k * self.dim
        mem = (self.n_features + k * self.window) * self.dim // 8
        notes = {"windows": w, "window_len": self.window}
        if k != w:
            notes["folds"] = k
        return OpProfile(
            xor_ops=xors,
            add_ops=adds,
            mem_bytes=mem,
            notes=notes,
        )


class NgramEncoder(GenericEncoder):
    """N-gram encoding (paper Section 2.2 / refs [6, 14]).

    Extracts every subsequence of length ``n``, encodes each with the
    permute-and-multiply construction, and bundles them *without* global
    position binding -- exactly the GENERIC construction with identity
    ids.  Captures local subsequences (good for text) but discards the
    global arrangement of features (fails on images and speech).
    """

    name = "ngram"

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        num_levels: int = DEFAULT_LEVELS,
        seed: int = 0,
        window: int = 3,
        engine: str = "auto",
        approx_folds: int | None = None,
    ):
        super().__init__(
            dim=dim,
            num_levels=num_levels,
            seed=seed,
            window=window,
            use_ids=False,
            engine=engine,
            approx_folds=approx_folds,
        )
