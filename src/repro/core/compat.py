"""The one deprecation shim for legacy per-class compute kwargs.

Every consolidated constructor (``HDClassifier``, ``AdaptiveHDClassifier``,
``HDCluster``, ``PackedModel``, ``ServeConfig`` and friends) accepts the
four historical per-knob kwargs -- ``engine`` / ``encode_jobs`` /
``train_engine`` / ``train_memory_budget`` -- as deprecated aliases for
``config=ComputeConfig(...)``.  All of those paths funnel through
:meth:`~repro.core.config.ComputeConfig.from_kwargs`, and
``from_kwargs`` funnels through :func:`warn_legacy_kwargs` below -- the
**single** ``DeprecationWarning`` site in the package, so the wording,
category and stack-level bookkeeping live in exactly one place (and a
``-W error::DeprecationWarning`` run points every legacy call site at
the same shim).

Removing the legacy kwargs one day means deleting this module and the
``UNSET``-defaulted parameters that feed it; nothing else warns.
"""

from __future__ import annotations

import warnings
from typing import Iterable

__all__ = ["warn_legacy_kwargs"]


def warn_legacy_kwargs(owner: str, names: Iterable[str],
                       stacklevel: int = 3) -> None:
    """Emit the canonical legacy-kwarg :class:`DeprecationWarning`.

    ``owner`` names the consolidated class the user called (empty string
    for anonymous call sites); ``names`` are the legacy kwargs actually
    passed; ``stacklevel`` is counted from *this function's caller* (a
    caller passing its own received stacklevel through should add 1).
    """
    joined = ", ".join(sorted(names))
    prefix = f"{owner}: " if owner else ""
    warnings.warn(
        f"{prefix}the {joined} keyword(s) are deprecated; pass "
        f"config=ComputeConfig(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel + 1,
    )
