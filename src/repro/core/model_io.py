"""Serialize a trained HDC model as a GENERIC "config-port image".

The accelerator is loaded through its config port with the level table,
the seed id, and (for offline-trained models) the class hypervectors
(Section 4.1).  :func:`export_model` captures exactly that payload from a
trained :class:`~repro.core.classifier.HDClassifier`;
:func:`import_model` restores a classifier, and the hardware simulator
consumes the same image via
:meth:`repro.hardware.accelerator.GenericAccelerator.load_image`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.encoders.generic import GenericEncoder

FORMAT_VERSION = 1


@dataclass
class ConfigImage:
    """Everything the config/spec ports need to run an application."""

    dim: int
    num_levels: int
    window: int
    use_ids: bool
    n_features: int
    n_classes: int
    metric: str
    level_table: np.ndarray
    seed_id: Optional[np.ndarray]
    class_matrix: np.ndarray
    class_labels: np.ndarray
    quantizer_lo: np.ndarray
    quantizer_hi: np.ndarray
    extras: Dict[str, float] = field(default_factory=dict)


def export_model(clf: HDClassifier) -> ConfigImage:
    """Capture a trained classifier as a config-port image.

    Only :class:`GenericEncoder`-family encoders map onto the ASIC; other
    encoders raise, as they would have no hardware to run on.
    """
    if clf.model_ is None:
        raise RuntimeError("export_model needs a fitted classifier")
    enc = clf.encoder
    if not isinstance(enc, GenericEncoder):
        raise TypeError(
            f"the GENERIC ASIC runs the windowed encoding; got {type(enc).__name__}"
        )
    seed_id = enc.id_generator.seed if enc.use_ids else None
    return ConfigImage(
        dim=enc.dim,
        num_levels=enc.num_levels,
        window=enc.window,
        use_ids=enc.use_ids,
        n_features=int(enc.n_features),
        n_classes=clf.n_classes,
        metric=clf.metric,
        level_table=enc.levels.vectors.copy(),
        seed_id=None if seed_id is None else seed_id.copy(),
        class_matrix=clf.model_.copy(),
        class_labels=np.asarray(clf.classes_),
        quantizer_lo=np.atleast_1d(np.asarray(enc.quantizer.lo, dtype=np.float64)),
        quantizer_hi=np.atleast_1d(np.asarray(enc.quantizer.hi, dtype=np.float64)),
    )


def import_model(image: ConfigImage, epochs: int = 0, seed: int = 0) -> HDClassifier:
    """Rebuild a ready-to-predict classifier from a config image."""
    enc = GenericEncoder(
        dim=image.dim,
        num_levels=image.num_levels,
        seed=seed,
        window=image.window,
        use_ids=image.use_ids,
    )
    enc.n_features = image.n_features
    enc.quantizer.lo = image.quantizer_lo if image.quantizer_lo.size > 1 else image.quantizer_lo[0]
    enc.quantizer.hi = image.quantizer_hi if image.quantizer_hi.size > 1 else image.quantizer_hi[0]
    # Restore tables instead of regenerating them.
    enc.levels = _RestoredLevels(image.level_table)
    n_windows = image.n_features - image.window + 1
    if image.use_ids:
        if image.seed_id is None:
            raise ValueError("image declares use_ids but carries no seed id")
        enc.id_generator = _RestoredSeed(image.seed_id)
        enc._ids = enc.id_generator.table(n_windows)
    else:
        enc._ids = np.ones((n_windows, image.dim), dtype=np.int8)

    clf = HDClassifier(enc, epochs=epochs, metric=image.metric, seed=seed)
    clf.classes_ = image.class_labels
    clf.model_ = np.asarray(image.class_matrix, dtype=np.float64)
    from repro.core.norms import SubNormTable

    clf.norms_ = SubNormTable(image.n_classes, image.dim)
    clf.norms_.recompute(clf.model_)
    return clf


def save_image(image: ConfigImage, path: Union[str, Path]) -> None:
    """Persist an image as ``.npz`` plus an inline JSON header."""
    path = Path(path)
    header = {
        "format_version": FORMAT_VERSION,
        "dim": image.dim,
        "num_levels": image.num_levels,
        "window": image.window,
        "use_ids": image.use_ids,
        "n_features": image.n_features,
        "n_classes": image.n_classes,
        "metric": image.metric,
        "extras": image.extras,
    }
    arrays = {
        "level_table": image.level_table,
        "class_matrix": image.class_matrix,
        "class_labels": image.class_labels,
        "quantizer_lo": image.quantizer_lo,
        "quantizer_hi": image.quantizer_hi,
        "header": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    }
    if image.seed_id is not None:
        arrays["seed_id"] = image.seed_id
    np.savez_compressed(path, **arrays)


def load_image(path: Union[str, Path]) -> ConfigImage:
    """Load an image written by :func:`save_image`."""
    with np.load(Path(path), allow_pickle=False) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode())
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported config image version {header.get('format_version')}"
            )
        return ConfigImage(
            dim=header["dim"],
            num_levels=header["num_levels"],
            window=header["window"],
            use_ids=header["use_ids"],
            n_features=header["n_features"],
            n_classes=header["n_classes"],
            metric=header["metric"],
            level_table=data["level_table"],
            seed_id=data["seed_id"] if "seed_id" in data else None,
            class_matrix=data["class_matrix"],
            class_labels=data["class_labels"],
            quantizer_lo=data["quantizer_lo"],
            quantizer_hi=data["quantizer_hi"],
            extras=header.get("extras", {}),
        )


class _RestoredLevels:
    """Minimal stand-in for :class:`LevelTable` built from a stored table."""

    def __init__(self, vectors: np.ndarray):
        self.vectors = np.asarray(vectors, dtype=np.int8)
        self.num_levels, self.dim = self.vectors.shape

    def __len__(self) -> int:
        return self.num_levels

    def __getitem__(self, bins):
        return self.vectors[bins]


class _RestoredSeed:
    """Minimal stand-in for :class:`SeedIdGenerator` from a stored seed."""

    def __init__(self, seed: np.ndarray):
        self.seed = np.asarray(seed, dtype=np.int8)
        self.dim = len(self.seed)

    def __getitem__(self, index: int) -> np.ndarray:
        return np.roll(self.seed, index % self.dim)

    def table(self, count: int) -> np.ndarray:
        shifts = np.arange(count) % self.dim
        cols = (np.arange(self.dim)[None, :] - shifts[:, None]) % self.dim
        return self.seed[cols]
