"""Primitive hypervector operations.

The algorithmic library works in the *bipolar* domain: a hypervector is a
NumPy vector with entries in ``{-1, +1}`` (``int8``), and a *bundled*
hypervector (the result of element-wise addition of many bipolar vectors)
is an integer vector.  The hardware simulator works in the *binary*
domain (``{0, 1}`` with XOR as multiplication); :func:`to_binary` and
:func:`to_bipolar` convert between the two views with the standard
mapping ``bit b -> 1 - 2 b``.

All randomness is drawn from an explicit :class:`numpy.random.Generator`
so that every experiment in the repository is reproducible from a seed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, Sequence[int], Sequence[float]]


def random_bipolar(
    rng: np.random.Generator,
    dim: int,
    size: Optional[int] = None,
) -> np.ndarray:
    """Draw one or ``size`` random bipolar hypervectors of length ``dim``.

    Returns an ``int8`` array of shape ``(dim,)`` or ``(size, dim)`` with
    i.i.d. equiprobable entries in ``{-1, +1}``.
    """
    if dim <= 0:
        raise ValueError(f"hypervector dimension must be positive, got {dim}")
    shape = (dim,) if size is None else (size, dim)
    bits = rng.integers(0, 2, size=shape, dtype=np.int8)
    return (1 - 2 * bits).astype(np.int8)


def bind(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bind two bipolar hypervectors (element-wise multiply, XOR in binary).

    Binding is its own inverse: ``bind(bind(a, b), b) == a``.
    """
    return (a * b).astype(np.int8)


def permute(hv: np.ndarray, shift: int) -> np.ndarray:
    """Permute a hypervector by ``shift`` indexes (circular shift, rho^shift).

    Matches the paper's :math:`\\rho^{(j)}` operator.  Works on a single
    vector or on the last axis of a batch.
    """
    if shift == 0:
        return hv
    return np.roll(hv, shift, axis=-1)


def bundle(hvs: Iterable[np.ndarray]) -> np.ndarray:
    """Bundle (element-wise add) an iterable of hypervectors into int32."""
    stacked = np.asarray(list(hvs))
    if stacked.ndim == 1:
        return stacked.astype(np.int32)
    return stacked.sum(axis=0, dtype=np.int32)


def sign_quantize(hv: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Quantize a bundled hypervector back to bipolar by taking its sign.

    Zero entries are broken to +1 deterministically, or randomly when a
    generator is supplied (the usual HDC tie-break).
    """
    out = np.where(np.asarray(hv) >= 0, 1, -1).astype(np.int8)
    if rng is not None:
        zeros = np.asarray(hv) == 0
        if zeros.any():
            out[zeros] = random_bipolar(rng, int(zeros.sum()))
    return out


def to_binary(hv: np.ndarray) -> np.ndarray:
    """Map bipolar ``{-1, +1}`` to binary ``{1, 0}`` (``+1 -> 0``)."""
    return ((1 - np.asarray(hv, dtype=np.int8)) // 2).astype(np.uint8)


def to_bipolar(bits: np.ndarray) -> np.ndarray:
    """Map binary ``{0, 1}`` to bipolar ``{+1, -1}`` (``0 -> +1``)."""
    return (1 - 2 * np.asarray(bits, dtype=np.int8)).astype(np.int8)


def dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dot product in int64 to avoid overflow on long bundled vectors."""
    return np.dot(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two (possibly bundled) hypervectors."""
    af = np.asarray(a, dtype=np.float64)
    bf = np.asarray(b, dtype=np.float64)
    na = np.linalg.norm(af)
    nb = np.linalg.norm(bf)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(af @ bf / (na * nb))


def hamming(a: np.ndarray, b: np.ndarray) -> int:
    """Hamming distance between two bipolar or binary hypervectors."""
    return int(np.count_nonzero(np.asarray(a) != np.asarray(b)))


def normalized_hamming(a: np.ndarray, b: np.ndarray) -> float:
    """Hamming distance divided by the dimensionality (in [0, 1])."""
    a = np.asarray(a)
    return hamming(a, b) / a.shape[-1]
