"""Binding ``id`` hypervectors (paper Sections 2.2 and 4.3.1).

Two implementations are provided:

- :class:`IdTable` stores one independent random id per index -- the
  straightforward software view, and what a naive accelerator would keep
  in a 512 KB id memory.
- :class:`SeedIdGenerator` reproduces the GENERIC ASIC's id-memory
  compression: ids are generated on-the-fly by permuting (circularly
  shifting) a single seed id by ``k`` indexes, shrinking the id storage
  to one row (1024x reduction in the paper).  Circular shifts of a
  random vector remain pairwise quasi-orthogonal, which is the property
  binding needs; :meth:`SeedIdGenerator.orthogonality` exposes it for
  the tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.hypervector import random_bipolar


class IdTable:
    """Independent random ids, one per binding index."""

    def __init__(self, rng: np.random.Generator, count: int, dim: int):
        if count <= 0:
            raise ValueError(f"id count must be positive, got {count}")
        self.count = count
        self.dim = dim
        self.vectors = random_bipolar(rng, dim, size=count)

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index) -> np.ndarray:
        return self.vectors[index]

    def all(self) -> np.ndarray:
        """All ids as an ``(count, dim)`` int8 matrix."""
        return self.vectors

    def storage_bits(self) -> int:
        """Bits a hardware id memory would need for this table."""
        return self.count * self.dim


class SeedIdGenerator:
    """Generate ``id_k = rho^k(seed)`` on the fly from a single seed id.

    This mirrors GENERIC's id compression: the hardware keeps a 4 Kbit
    seed vector and derives the id of window ``k`` by right-shifting the
    seed ``k`` positions (implemented with the ``tmp`` register of
    Fig. 4 marker 2).
    """

    def __init__(self, rng: np.random.Generator, dim: int):
        self.dim = dim
        self.seed = random_bipolar(rng, dim)

    def __getitem__(self, index: int) -> np.ndarray:
        if not 0 <= index:
            raise IndexError(f"id index must be non-negative, got {index}")
        return np.roll(self.seed, index % self.dim)

    def table(self, count: int) -> np.ndarray:
        """Materialize the first ``count`` ids as an ``(count, dim)`` matrix.

        The software encoder uses this to vectorize; the hardware model
        never materializes it.
        """
        if count <= 0:
            raise ValueError(f"id count must be positive, got {count}")
        shifts = np.arange(count) % self.dim
        cols = (np.arange(self.dim)[None, :] - shifts[:, None]) % self.dim
        return self.seed[cols]

    def storage_bits(self) -> int:
        """Bits the compressed hardware id memory needs (one seed row)."""
        return self.dim

    def orthogonality(self, count: int) -> float:
        """Max |normalized dot| between distinct ids among the first ``count``.

        Near zero for a random seed: permutation preserves orthogonality.
        """
        ids = self.table(count).astype(np.int32)
        gram = ids @ ids.T / self.dim
        np.fill_diagonal(gram, 0.0)
        return float(np.abs(gram).max())


def identity_ids(count: int, dim: int) -> np.ndarray:
    """Ids that skip global binding (paper: ids set to the XOR identity).

    In the binary/XOR domain the identity is the all-zero vector; in our
    bipolar domain it is the all-ones vector.
    """
    return np.ones((count, dim), dtype=np.int8)
