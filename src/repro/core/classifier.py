"""HDC classification: model initialization, retraining, inference.

Implements Fig. 1 of the paper:

- **training (initialization)** -- every encoded training input is added
  to its class hypervector;
- **retraining** -- for a number of epochs, each training input is
  scored against the model; on a misprediction the encoding is
  subtracted from the wrongly-predicted class and added to the correct
  class (per-sample, online);
- **inference** -- the query is encoded and the class with the highest
  cosine similarity wins.

The classifier also implements the on-demand dimension reduction of
Section 4.3.3: predictions can run on a 128-multiple prefix of the
dimensions, using either exact per-prefix norms from the
:class:`~repro.core.norms.SubNormTable` (the paper's fix) or the stale
full-length norms (the "Constant" curves of Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.encoders.base import Encoder
from repro.core.norms import DEFAULT_BLOCK, SubNormTable
from repro.core.sims import score as score_fn


@dataclass
class TrainReport:
    """Bookkeeping returned by :meth:`HDClassifier.fit`."""

    epochs_run: int
    updates_per_epoch: list
    train_accuracy_per_epoch: list

    @property
    def final_train_accuracy(self) -> float:
        return self.train_accuracy_per_epoch[-1] if self.train_accuracy_per_epoch else 0.0


class HDClassifier:
    """Hyperdimensional classifier over any :class:`Encoder`.

    Parameters
    ----------
    encoder:
        The encoding to use; fitted on the training data if not already.
    epochs:
        Retraining epochs after initialization (paper uses 20).
    metric:
        ``"cosine"`` (default), ``"dot"``, or ``"hardware"`` -- see
        :mod:`repro.core.sims`.
    shuffle:
        Shuffle the sample order each retraining epoch.
    seed:
        Seed for the shuffling generator.
    norm_block:
        Granularity of the sub-norm table (128 in the ASIC).
    engine:
        Encoding engine override (``"reference"``/``"packed"``/``"auto"``)
        applied to the encoder when it supports one; ``None`` keeps the
        encoder's own setting.
    encode_jobs:
        Thread-pool width for batch encoding in :meth:`fit`/:meth:`predict`
        (``None`` = serial, ``-1`` = all cores).  Results are identical
        for any value.
    """

    def __init__(
        self,
        encoder: Encoder,
        epochs: int = 20,
        metric: str = "cosine",
        shuffle: bool = True,
        seed: int = 0,
        norm_block: int = DEFAULT_BLOCK,
        engine: Optional[str] = None,
        encode_jobs: Optional[int] = None,
    ):
        self.encoder = encoder
        self.epochs = epochs
        self.metric = metric
        self.shuffle = shuffle
        self.rng = np.random.default_rng(seed)
        self.norm_block = norm_block
        if engine is not None:
            if not hasattr(encoder, "engine"):
                raise ValueError(
                    f"{type(encoder).__name__} has no selectable engine"
                )
            encoder.engine = engine
        self.encode_jobs = encode_jobs

        self.classes_: Optional[np.ndarray] = None
        self.model_: Optional[np.ndarray] = None
        self.norms_: Optional[SubNormTable] = None
        self.report_: Optional[TrainReport] = None

    # -- training ----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "HDClassifier":
        """Initialize and retrain the HDC model on ``(X, y)``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)} labels")
        if not self.encoder.fitted:
            self.encoder.fit(X)
        encodings = self.encoder.encode_batch(
            X, n_jobs=self.encode_jobs
        ).astype(np.float64)
        self.classes_, y_idx = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)

        dim = self.encoder.dim
        if dim % self.norm_block:
            raise ValueError(
                f"encoder dim {dim} must be a multiple of norm_block={self.norm_block}"
            )
        model = np.zeros((n_classes, dim), dtype=np.float64)
        np.add.at(model, y_idx, encodings)

        self.model_ = model
        self.norms_ = SubNormTable(n_classes, dim, block=self.norm_block)
        self.norms_.recompute(model)

        self.report_ = self._retrain(encodings, y_idx)
        return self

    def _retrain(self, encodings: np.ndarray, y_idx: np.ndarray) -> TrainReport:
        """Per-sample online retraining (Fig. 1c)."""
        updates_per_epoch = []
        acc_per_epoch = []
        n = len(encodings)
        order = np.arange(n)
        for _ in range(self.epochs):
            if self.shuffle:
                self.rng.shuffle(order)
            updates = 0
            for i in order:
                h = encodings[i]
                pred = int(np.argmax(self._scores(h[None, :])[0]))
                truth = int(y_idx[i])
                if pred != truth:
                    self.model_[pred] -= h
                    self.model_[truth] += h
                    self.norms_.update_class(pred, self.model_[pred])
                    self.norms_.update_class(truth, self.model_[truth])
                    updates += 1
            updates_per_epoch.append(updates)
            preds = np.argmax(self._scores(encodings), axis=1)
            acc_per_epoch.append(float(np.mean(preds == y_idx)))
            if updates == 0:
                break
        return TrainReport(
            epochs_run=len(updates_per_epoch),
            updates_per_epoch=updates_per_epoch,
            train_accuracy_per_epoch=acc_per_epoch,
        )

    # -- inference -----------------------------------------------------------

    def _check_fitted(self) -> None:
        if self.model_ is None:
            raise RuntimeError("HDClassifier used before fit()")

    def _scores(
        self,
        encodings: np.ndarray,
        dim: Optional[int] = None,
        constant_norms: bool = False,
    ) -> np.ndarray:
        self._check_fitted()
        if dim is None or dim == self.encoder.dim:
            norm2 = self.norms_.full_norm2()
            model = self.model_
            queries = encodings
        else:
            model = self.model_[:, :dim]
            queries = encodings[:, :dim]
            norm2 = self.norms_.full_norm2() if constant_norms else self.norms_.norm2(dim)
        if self.metric == "hardware":
            return score_fn(queries, model, metric="hardware", norm2=norm2)
        if self.metric == "cosine":
            # cosine with the (possibly reduced) norm2 from the table; the
            # query norm is constant per row and cannot change the arg-max.
            dots = queries @ model.T
            safe = np.where(norm2 <= 0.0, np.inf, norm2)
            return dots / np.sqrt(safe)[None, :]
        return score_fn(queries, model, metric=self.metric)

    def predict_encoded(
        self,
        encodings: np.ndarray,
        dim: Optional[int] = None,
        constant_norms: bool = False,
    ) -> np.ndarray:
        """Predict from pre-encoded queries (optionally dimension-reduced)."""
        scores = self._scores(
            np.atleast_2d(np.asarray(encodings, dtype=np.float64)),
            dim=dim,
            constant_norms=constant_norms,
        )
        return self.classes_[np.argmax(scores, axis=1)]

    def predict(
        self,
        X: np.ndarray,
        dim: Optional[int] = None,
        constant_norms: bool = False,
    ) -> np.ndarray:
        """Encode and classify raw inputs."""
        encodings = self.encoder.encode_batch(
            np.asarray(X, dtype=np.float64), n_jobs=self.encode_jobs
        )
        return self.predict_encoded(encodings, dim=dim, constant_norms=constant_norms)

    def score(
        self,
        X: np.ndarray,
        y: np.ndarray,
        dim: Optional[int] = None,
        constant_norms: bool = False,
    ) -> float:
        """Classification accuracy on ``(X, y)``."""
        preds = self.predict(X, dim=dim, constant_norms=constant_norms)
        return float(np.mean(preds == np.asarray(y)))

    # -- model surgery ---------------------------------------------------------

    @property
    def n_classes(self) -> int:
        self._check_fitted()
        return len(self.classes_)

    def quantized_model(self, bits: int) -> np.ndarray:
        """Class matrix quantized to signed ``bits``-bit integers (Fig. 6).

        Symmetric linear quantization per model (shared scale), matching
        the masked ``bw``-bit class words the accelerator loads.
        """
        self._check_fitted()
        from repro.hardware.faults import quantize_to_bits

        return quantize_to_bits(self.model_, bits).astype(np.float64)

    def with_model(self, model: np.ndarray) -> "HDClassifier":
        """Return a shallow copy using a substituted class matrix.

        Used by the fault-injection experiments: the encoder, classes and
        metric are shared, the model (and its norms) are replaced.
        """
        self._check_fitted()
        clone = HDClassifier(
            self.encoder,
            epochs=self.epochs,
            metric=self.metric,
            shuffle=self.shuffle,
            norm_block=self.norm_block,
            encode_jobs=self.encode_jobs,
        )
        clone.classes_ = self.classes_
        clone.model_ = np.asarray(model, dtype=np.float64)
        clone.norms_ = SubNormTable(len(self.classes_), self.encoder.dim, self.norm_block)
        clone.norms_.recompute(clone.model_)
        clone.report_ = self.report_
        return clone
