"""HDC classification: model initialization, retraining, inference.

Implements Fig. 1 of the paper:

- **training (initialization)** -- every encoded training input is added
  to its class hypervector;
- **retraining** -- for a number of epochs, each training input is
  scored against the model; on a misprediction the encoding is
  subtracted from the wrongly-predicted class and added to the correct
  class (per-sample, online);
- **inference** -- the query is encoded and the class with the highest
  cosine similarity wins.

The classifier also implements the on-demand dimension reduction of
Section 4.3.3: predictions can run on a 128-multiple prefix of the
dimensions, using either exact per-prefix norms from the
:class:`~repro.core.norms.SubNormTable` (the paper's fix) or the stale
full-length norms (the "Constant" curves of Fig. 5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import training
from repro.core.config import UNSET, ComputeConfig
from repro.core.encoders.base import Encoder
from repro.core.norms import DEFAULT_BLOCK, SubNormTable
from repro.core.sims import score as score_fn
from repro.core.training import TRAIN_ENGINES, TrainPlan, TrainReport

__all__ = ["HDClassifier", "TrainReport", "TrainPlan", "TRAIN_ENGINES"]


def apply_engine(encoder: Encoder, engine: Optional[str],
                 owner: str = "model") -> None:
    """Apply an encoding-engine override to ``encoder`` (no-op on None)."""
    if engine is None:
        return
    if not hasattr(encoder, "engine"):
        raise ValueError(
            f"{owner}: {type(encoder).__name__} has no selectable engine"
        )
    encoder.engine = engine


class HDClassifier:
    """Hyperdimensional classifier over any :class:`Encoder`.

    Parameters
    ----------
    encoder:
        The encoding to use; fitted on the training data if not already.
    epochs:
        Retraining epochs after initialization (paper uses 20).
    metric:
        ``"cosine"`` (default), ``"dot"``, or ``"hardware"`` -- see
        :mod:`repro.core.sims`.
    shuffle:
        Shuffle the sample order each retraining epoch.
    seed:
        Seed for the shuffling generator.
    norm_block:
        Granularity of the sub-norm table (128 in the ASIC).
    config:
        A :class:`~repro.core.config.ComputeConfig` bundling the four
        compute knobs (``engine``, ``encode_jobs``, ``train_engine``,
        ``train_memory_budget``).  The per-knob kwargs below remain as
        deprecated aliases and override matching ``config`` fields.
    engine:
        *Deprecated alias* for ``config.engine``: encoding engine
        override (``"reference"``/``"packed"``/``"auto"``) applied to
        the encoder when it supports one; ``None`` keeps the encoder's
        own setting.
    encode_jobs:
        *Deprecated alias* for ``config.encode_jobs``: thread-pool width
        for batch encoding in :meth:`fit`/:meth:`predict` (``None`` =
        serial, ``-1`` = all cores).  Results are identical for any value.
    train_engine:
        *Deprecated alias* for ``config.train_engine``: ``"reference"``
        (the paper's per-sample loop), ``"gram"`` (the
        dot-product-cached replay of :mod:`repro.core.training` --
        result-identical for this classifier's integer ±h rule), or
        ``"auto"`` (gram whenever exactness is provable and the cache
        fits the memory budget).  The resolved choice is recorded on
        ``train_plan_`` after :meth:`fit`.
    train_memory_budget:
        *Deprecated alias* for ``config.train_memory_budget``: byte cap
        for the gram caches (``None`` = the module default, 256 MiB);
        ``"auto"`` falls back to the reference engine beyond it.
    """

    #: update rule implemented by this class (see repro.core.training)
    train_rule = "paper"

    def __init__(
        self,
        encoder: Encoder,
        epochs: int = 20,
        metric: str = "cosine",
        shuffle: bool = True,
        seed: int = 0,
        norm_block: int = DEFAULT_BLOCK,
        engine=UNSET,
        encode_jobs=UNSET,
        train_engine=UNSET,
        train_memory_budget=UNSET,
        config: Optional[ComputeConfig] = None,
    ):
        self.encoder = encoder
        self.epochs = epochs
        self.metric = metric
        self.shuffle = shuffle
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.norm_block = norm_block
        self.config = ComputeConfig.from_kwargs(
            config,
            engine=engine,
            encode_jobs=encode_jobs,
            train_engine=train_engine,
            train_memory_budget=train_memory_budget,
            owner=type(self).__name__,
        )
        apply_engine(encoder, self.config.engine, owner=type(self).__name__)
        if self.config.train_engine not in TRAIN_ENGINES:
            raise ValueError(
                f"unknown train engine {self.config.train_engine!r}; "
                f"choose from {TRAIN_ENGINES}"
            )

        self.classes_: Optional[np.ndarray] = None
        self.model_: Optional[np.ndarray] = None
        self.norms_: Optional[SubNormTable] = None
        self.report_: Optional[TrainReport] = None
        self.train_plan_: Optional[TrainPlan] = None

    # -- compute-config compatibility surface -------------------------------
    # The four historical per-knob attributes stay readable/writable but
    # are views over ``self.config`` (one source of truth; pickling the
    # instance round-trips the config with it).

    @property
    def engine(self) -> Optional[str]:
        return self.config.engine

    @engine.setter
    def engine(self, value: Optional[str]) -> None:
        self.config.engine = value

    @property
    def encode_jobs(self) -> Optional[int]:
        return self.config.encode_jobs

    @encode_jobs.setter
    def encode_jobs(self, value: Optional[int]) -> None:
        self.config.encode_jobs = value

    @property
    def train_engine(self) -> str:
        return self.config.train_engine

    @train_engine.setter
    def train_engine(self, value: str) -> None:
        self.config.train_engine = value

    @property
    def train_memory_budget(self) -> Optional[int]:
        return self.config.train_memory_budget

    @train_memory_budget.setter
    def train_memory_budget(self, value: Optional[int]) -> None:
        self.config.train_memory_budget = value

    # -- training ----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "HDClassifier":
        """Initialize and retrain the HDC model on ``(X, y)``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)} labels")
        if not self.encoder.fitted:
            self.encoder.fit(X)
        raw = self.encoder.encode_batch(X, n_jobs=self.encode_jobs)
        # integral encodings let the training planner skip its whole-array
        # integer check (see training._paper_rule_exact)
        self._encodings_integral = bool(np.issubdtype(raw.dtype, np.integer))
        encodings = np.asarray(raw, dtype=np.float64)
        self.classes_, y_idx = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)

        dim = self.encoder.dim
        if dim % self.norm_block:
            raise ValueError(
                f"encoder dim {dim} must be a multiple of norm_block={self.norm_block}"
            )
        # class init as a one-hot GEMM: one BLAS call instead of the much
        # slower np.add.at scatter; exact for the integer encodings
        onehot = np.zeros((len(y_idx), n_classes), dtype=np.float64)
        onehot[np.arange(len(y_idx)), y_idx] = 1.0
        model = onehot.T @ encodings

        self.model_ = model
        self.norms_ = SubNormTable(n_classes, dim, block=self.norm_block)
        self.norms_.recompute(model)

        self.report_ = self._retrain(encodings, y_idx)
        return self

    def _retrain(self, encodings: np.ndarray, y_idx: np.ndarray) -> TrainReport:
        """Per-sample online retraining (Fig. 1c) under ``train_engine``."""
        return training.retrain(self, encodings, y_idx)

    # -- inference -----------------------------------------------------------

    def _check_fitted(self) -> None:
        if self.model_ is None:
            raise RuntimeError("HDClassifier used before fit()")

    def _scores(
        self,
        encodings: np.ndarray,
        dim: Optional[int] = None,
        constant_norms: bool = False,
    ) -> np.ndarray:
        self._check_fitted()
        if dim is None or dim == self.encoder.dim:
            norm2 = self.norms_.full_norm2()
            model = self.model_
            queries = encodings
        else:
            model = self.model_[:, :dim]
            queries = encodings[:, :dim]
            norm2 = self.norms_.full_norm2() if constant_norms else self.norms_.norm2(dim)
        if self.metric == "hardware":
            return score_fn(queries, model, metric="hardware", norm2=norm2)
        if self.metric == "cosine":
            # cosine with the (possibly reduced) norm2 from the table; the
            # query norm is constant per row and cannot change the arg-max.
            dots = queries @ model.T
            safe = np.where(norm2 <= 0.0, np.inf, norm2)
            return dots / np.sqrt(safe)[None, :]
        return score_fn(queries, model, metric=self.metric)

    def predict_encoded(
        self,
        encodings: np.ndarray,
        dim: Optional[int] = None,
        constant_norms: bool = False,
    ) -> np.ndarray:
        """Predict from pre-encoded queries (optionally dimension-reduced).

        Float64 input is scored in place (no conversion copy); other
        dtypes (e.g. raw int32 encodings) are upcast once.
        """
        encodings = np.asarray(encodings)
        if encodings.dtype != np.float64:
            encodings = encodings.astype(np.float64)
        scores = self._scores(
            np.atleast_2d(encodings), dim=dim, constant_norms=constant_norms
        )
        return self.classes_[np.argmax(scores, axis=1)]

    def predict(
        self,
        X: np.ndarray,
        dim: Optional[int] = None,
        constant_norms: bool = False,
    ) -> np.ndarray:
        """Encode and classify raw inputs."""
        encodings = self.encoder.encode_batch(
            np.asarray(X, dtype=np.float64), n_jobs=self.encode_jobs
        )
        return self.predict_encoded(encodings, dim=dim, constant_norms=constant_norms)

    def score(
        self,
        X: np.ndarray,
        y: np.ndarray,
        dim: Optional[int] = None,
        constant_norms: bool = False,
    ) -> float:
        """Classification accuracy on ``(X, y)``."""
        preds = self.predict(X, dim=dim, constant_norms=constant_norms)
        return float(np.mean(preds == np.asarray(y)))

    # -- model surgery ---------------------------------------------------------

    @property
    def n_classes(self) -> int:
        self._check_fitted()
        return len(self.classes_)

    def quantized_model(self, bits: int) -> np.ndarray:
        """Class matrix quantized to signed ``bits``-bit integers (Fig. 6).

        Symmetric linear quantization per model (shared scale), matching
        the masked ``bw``-bit class words the accelerator loads.
        """
        self._check_fitted()
        from repro.hardware.faults import quantize_to_bits

        return quantize_to_bits(self.model_, bits).astype(np.float64)

    def with_model(self, model: np.ndarray) -> "HDClassifier":
        """Return a shallow copy using a substituted class matrix.

        Used by the fault-injection experiments: the encoder, classes and
        metric are shared, the model (and its norms) are replaced.
        """
        self._check_fitted()
        clone = HDClassifier(
            self.encoder,
            epochs=self.epochs,
            metric=self.metric,
            shuffle=self.shuffle,
            seed=self.seed,
            norm_block=self.norm_block,
            config=self.config,
        )
        clone.classes_ = self.classes_
        clone.model_ = np.asarray(model, dtype=np.float64)
        clone.norms_ = SubNormTable(len(self.classes_), self.encoder.dim, self.norm_block)
        clone.norms_.recompute(clone.model_)
        clone.report_ = self.report_
        return clone
