"""Per-block squared-norm bookkeeping for on-demand dimension reduction.

Section 4.3.3 of the paper: GENERIC can shrink the effective
dimensionality ``D_hv`` at inference time, but the cosine denominator
must then cover only the *surviving* dimensions.  Using the full-length
norm ("Constant" in Fig. 5) costs up to 20.1% accuracy; the ASIC instead
stores the squared L2 norm of every 128-dimension *sub-class* in a
separate row of the norm2 memory, so reduced-dimension norms are exact
at a granularity of 128.

:class:`SubNormTable` is that memory: a ``(n_classes, D/block)`` table of
per-block squared norms with O(blocks-touched) incremental updates.
"""

from __future__ import annotations

import numpy as np

DEFAULT_BLOCK = 128


class SubNormTable:
    """Blocked squared-L2 norms of the class hypervectors."""

    def __init__(self, n_classes: int, dim: int, block: int = DEFAULT_BLOCK):
        if dim % block != 0:
            raise ValueError(f"dim={dim} must be a multiple of block={block}")
        self.n_classes = n_classes
        self.dim = dim
        self.block = block
        self.n_blocks = dim // block
        self.table = np.zeros((n_classes, self.n_blocks), dtype=np.float64)

    def recompute(self, classes: np.ndarray) -> None:
        """Rebuild the whole table from the class matrix (training time)."""
        c = np.asarray(classes, dtype=np.float64)
        if c.shape != (self.n_classes, self.dim):
            raise ValueError(
                f"class matrix shape {c.shape} != ({self.n_classes}, {self.dim})"
            )
        blocked = c.reshape(self.n_classes, self.n_blocks, self.block)
        self.table = (blocked * blocked).sum(axis=2)

    def update_class(self, index: int, class_vector: np.ndarray) -> None:
        """Refresh one class row after a retraining update."""
        c = np.asarray(class_vector, dtype=np.float64)
        blocked = c.reshape(self.n_blocks, self.block)
        self.table[index] = (blocked * blocked).sum(axis=1)

    def delta_update(
        self,
        index: int,
        base_row: np.ndarray,
        h: np.ndarray,
        scale: float = 1.0,
        h_block_norm2: np.ndarray = None,
    ) -> None:
        """Exact per-block delta for the update ``new = base + scale * h``.

        Applies ``||base_blk + scale·h_blk||² - ||base_blk||²
        = 2·scale·(base_blk · h_blk) + scale²·||h_blk||²`` to row
        ``index``.  ``base_row`` is the class vector *before* the model
        update; callers that update many samples against the same
        hypervectors can pass precomputed ``||h_blk||²`` rows
        (``h_block_norm2``) to skip the squaring.  For integer-valued
        vectors (the paper's ±h rule) this is bit-equal to
        :meth:`update_class` on the post-update row; for float scales it
        agrees to rounding error.
        """
        base = np.asarray(base_row, dtype=np.float64).reshape(
            self.n_blocks, self.block
        )
        hv = np.asarray(h, dtype=np.float64).reshape(self.n_blocks, self.block)
        cross = np.einsum("ij,ij->i", base, hv)
        if h_block_norm2 is None:
            h_block_norm2 = np.einsum("ij,ij->i", hv, hv)
        self.table[index] += 2.0 * scale * cross + (scale * scale) * h_block_norm2

    def norm2(self, dim: int) -> np.ndarray:
        """Squared norms over the first ``dim`` dimensions (block granular).

        ``dim`` must be a multiple of the block size, matching the
        hardware's reduction granularity of 128.
        """
        if dim % self.block != 0:
            raise ValueError(
                f"reduced dim {dim} must be a multiple of block={self.block}"
            )
        if not 0 < dim <= self.dim:
            raise ValueError(f"reduced dim {dim} out of range (0, {self.dim}]")
        blocks = dim // self.block
        return self.table[:, :blocks].sum(axis=1)

    def full_norm2(self) -> np.ndarray:
        """Squared norms over all dimensions."""
        return self.table.sum(axis=1)

    def storage_bytes(self, word_bytes: int = 4) -> int:
        """Size of the norm2 memory (2 KB for 32 classes in the paper)."""
        return self.n_classes * self.n_blocks * word_bytes
