"""HDC clustering (paper Sections 2.1 and 4.2.3).

The first ``k`` encoded inputs seed the centroids.  Each epoch, every
encoded input is compared with the centroids (cosine) and added to a
*copy* of the closest centroid; the copies replace the centroids for the
next epoch (the model is never updated mid-epoch, unlike classification
retraining).  This mirrors HDCluster [13] and the dataflow the GENERIC
controller implements.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.classifier import apply_engine
from repro.core.config import UNSET, ComputeConfig
from repro.core.encoders.base import Encoder
from repro.core.sims import cosine_scores


class HDCluster:
    """K-centroid clustering in hyperspace.

    ``config`` bundles the compute knobs
    (:class:`~repro.core.config.ComputeConfig`); ``engine`` /
    ``encode_jobs`` remain as deprecated aliases.
    """

    def __init__(
        self,
        encoder: Encoder,
        k: int,
        epochs: int = 10,
        seed: int = 0,
        engine=UNSET,
        encode_jobs=UNSET,
        config: Optional[ComputeConfig] = None,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.encoder = encoder
        self.k = k
        self.epochs = epochs
        self.rng = np.random.default_rng(seed)
        self.config = ComputeConfig.from_kwargs(
            config, engine=engine, encode_jobs=encode_jobs,
            owner=type(self).__name__,
        )
        apply_engine(encoder, self.config.engine, owner=type(self).__name__)

        self.centroids_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.epochs_run_: int = 0

    # legacy per-knob attributes, views over ``self.config``
    @property
    def engine(self) -> Optional[str]:
        return self.config.engine

    @engine.setter
    def engine(self, value: Optional[str]) -> None:
        self.config.engine = value

    @property
    def encode_jobs(self) -> Optional[int]:
        return self.config.encode_jobs

    @encode_jobs.setter
    def encode_jobs(self, value: Optional[int]) -> None:
        self.config.encode_jobs = value

    def fit(self, X: np.ndarray) -> "HDCluster":
        """Cluster the rows of ``X``; sets ``labels_`` and ``centroids_``."""
        X = np.asarray(X, dtype=np.float64)
        if len(X) < self.k:
            raise ValueError(f"need at least k={self.k} samples, got {len(X)}")
        if not self.encoder.fitted:
            self.encoder.fit(X)
        encodings = self.encoder.encode_batch(
            X, n_jobs=self.encode_jobs
        ).astype(np.float64)

        # Paper: the first k encoded inputs are the initial centroids.
        centroids = encodings[: self.k].copy()
        labels = np.zeros(len(X), dtype=np.int64)
        for epoch in range(self.epochs):
            scores = cosine_scores(encodings, centroids)
            new_labels = np.argmax(scores, axis=1)
            copies = np.zeros_like(centroids)
            np.add.at(copies, new_labels, encodings)
            # An empty cluster keeps its previous centroid rather than
            # collapsing to zero.
            counts = np.bincount(new_labels, minlength=self.k)
            empty = counts == 0
            copies[empty] = centroids[empty]
            converged = epoch > 0 and np.array_equal(new_labels, labels)
            labels = new_labels
            centroids = copies
            self.epochs_run_ = epoch + 1
            if converged:
                break

        self.centroids_ = centroids
        self.labels_ = labels
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign new inputs to the learned centroids."""
        if self.centroids_ is None:
            raise RuntimeError("HDCluster used before fit()")
        encodings = self.encoder.encode_batch(
            np.asarray(X, dtype=np.float64), n_jobs=self.encode_jobs
        )
        scores = cosine_scores(encodings.astype(np.float64), self.centroids_)
        return np.argmax(scores, axis=1)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_
