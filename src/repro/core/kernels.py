"""Bit-domain encoding kernels (the eGPU data-packing trick, Section 3.3).

The reference :class:`~repro.core.encoders.generic.GenericEncoder` works
in the bipolar domain: it materializes ``(N, n_windows, D)`` int8 level
lookups, re-copies them with ``np.roll`` for every in-window offset, and
folds windows with int8 multiplies.  The paper's edge-GPU implementation
closes exactly this gap "by data packing (for parallel XOR) and memory
reuse" -- a bipolar product is an XOR in the binary view, so 64
dimensions fold per ``uint64`` word instead of one per byte.

This module is that software fast path:

- :func:`pack_bits` / :func:`unpack_bits` -- {0,1} arrays <-> packed
  ``uint64`` words (64 dimensions per word, little bit order);
- :func:`popcount` / :func:`popcount_words` -- fast population count
  (``np.bitwise_count`` on NumPy >= 2.0, a byte lookup table otherwise);
- :func:`bit_slice_counts` -- per-bit-position counts across many packed
  words via a carry-save adder tree, i.e. bundling without unpacking
  every window;
- :class:`GenericPackedKernel` -- the GENERIC/ngram construction run
  entirely in the packed domain, bit-identical to the reference encoder.

The kernel packs the level table once per fit, *including* the
``rho^j(levels)`` permuted copies for every in-window offset, so the
per-chunk ``np.roll`` of the reference path disappears entirely: window
folding degenerates to gathers plus word-wise XOR.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.core.hypervector import to_binary

_WORD = 64

#: per-byte population counts, the portable fallback for np.bitwise_count
_BYTE_ONES = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.uint8)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


# -- packing ----------------------------------------------------------------

def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a {0,1} array (..., D) into (..., ceil(D/64)) uint64 words."""
    bits = np.asarray(bits, dtype=np.uint8)
    d = bits.shape[-1]
    pad = (-d) % _WORD
    if pad:
        bits = np.concatenate(
            [bits, np.zeros((*bits.shape[:-1], pad), dtype=np.uint8)], axis=-1
        )
    bytes_ = np.packbits(bits, axis=-1, bitorder="little")
    return bytes_.view(np.uint64).reshape(*bits.shape[:-1], -1)


def unpack_bits(words: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`, truncated to ``dim`` bits."""
    words = np.asarray(words, dtype=np.uint64)
    bytes_ = words.view(np.uint8)
    bits = np.unpackbits(bytes_, axis=-1, bitorder="little")
    return bits[..., :dim]


def pack_bipolar(vectors: np.ndarray) -> np.ndarray:
    """Pack bipolar {-1,+1} vectors (..., D) into uint64 words (-1 -> bit 1)."""
    return pack_bits(to_binary(vectors))


# -- popcount ---------------------------------------------------------------

def popcount_words(words: np.ndarray) -> np.ndarray:
    """Element-wise popcount of a uint64 array (same shape, small ints)."""
    words = np.asarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(np.ascontiguousarray(words))
    return _popcount_words_lut(words)


def _popcount_words_lut(words: np.ndarray) -> np.ndarray:
    """LUT fallback: per-word counts via 8 byte lookups (NumPy < 2.0)."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    counts = _BYTE_ONES[words.view(np.uint8)]
    return counts.reshape(*words.shape, 8).sum(axis=-1, dtype=np.uint8)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of packed words (sum over the last axis)."""
    return popcount_words(words).sum(axis=-1, dtype=np.int64)


def packed_hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamming distance between packed rows: popcount(a XOR b).

    Broadcasting follows NumPy: (N, W) vs (C, 1, W)-style layouts work.
    """
    return popcount(np.bitwise_xor(a, b))


# -- bit-slice bundling ------------------------------------------------------

def bit_slice_counts(words: np.ndarray) -> np.ndarray:
    """Per-bit-position counts across the leading axis of packed words.

    ``words`` has shape ``(m, ..., W)``; the result has shape
    ``(..., W * 64)`` with ``result[..., k]`` = how many of the ``m``
    slices have bit ``k`` set.

    Instead of unpacking every slice (``8 * m * W`` bytes of traffic),
    the ``m`` words are reduced with a carry-save adder tree: two XORs
    and three AND/ORs fold three same-weight words into a sum plus a
    carry of double weight, so only ~log2(m) *bit planes* are ever
    unpacked.  This is the software analogue of the bit-serial
    accumulators HDC accelerators bundle with.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim < 2:
        raise ValueError(f"expected (m, ..., W) packed words, got {words.shape}")
    m = len(words)
    flat_bits = words.shape[-1] * _WORD
    out = np.zeros(words.shape[1:-1] + (flat_bits,), dtype=np.int32)
    level = [words[i] for i in range(m)]
    shift = 0
    while level:
        carries = []
        pool = level
        while len(pool) >= 3:
            a = pool.pop()
            b = pool.pop()
            c = pool.pop()
            ab = a ^ b
            pool.append(ab ^ c)
            carries.append((a & b) | (ab & c))
        if len(pool) == 2:
            a = pool.pop()
            b = pool.pop()
            pool.append(a ^ b)
            carries.append(a & b)
        if pool:
            plane = np.unpackbits(
                np.ascontiguousarray(pool[0]).view(np.uint8),
                axis=-1, bitorder="little",
            )
            out += plane.astype(np.int32) << shift
        level = carries
        shift += 1
    return out


# -- the GENERIC encoding in the packed domain -------------------------------

class GenericPackedKernel:
    """GENERIC/ngram window encoding folded with word-wise XOR.

    Built once per fitted encoder from the bipolar level table (and id
    table, when ids are bound).  ``encode_bins`` then reproduces
    ``GenericEncoder._encode_chunk`` bit for bit:

    - the level table is packed per in-window offset ``j`` as
      ``rho^j(levels)`` -- the reference path's per-chunk ``np.roll``
      becomes a fit-time table build;
    - each window's levels fold with XOR on ``ceil(D/64)`` uint64 words
      (one packed gather + in-place XOR per offset: memory reuse);
    - id binding is one more broadcast XOR (skipped entirely for
      identity ids, where the reference path still multiplies by ones);
    - bundling runs through :func:`bit_slice_counts`, and the bipolar
      counts fall out as ``n_windows - 2 * ones``.
    """

    def __init__(
        self,
        levels: np.ndarray,
        ids: Optional[np.ndarray],
        window: int,
        dim: int,
    ):
        levels = np.asarray(levels, dtype=np.int8)
        if levels.ndim != 2 or levels.shape[1] != dim:
            raise ValueError(
                f"level table shape {levels.shape} does not match dim={dim}"
            )
        if window < 1:
            raise ValueError(f"window length must be >= 1, got {window}")
        self.window = window
        self.dim = dim
        self.words = (dim + _WORD - 1) // _WORD
        level_bits = to_binary(levels)
        tables = np.empty(
            (window, len(levels), self.words), dtype=np.uint64
        )
        for j in range(window):
            tables[j] = pack_bits(np.roll(level_bits, j, axis=1))
        self.tables = tables
        self.id_words = None if ids is None else pack_bipolar(ids)
        self._pair_tables: dict = {}

    @property
    def num_levels(self) -> int:
        return self.tables.shape[1]

    def pair_table(self, j: int) -> np.ndarray:
        """Fused adjacent-offset table ``rho^j(levels) ^ rho^{j+1}(levels)``.

        Shape ``(L, L, W)``: entry ``[a, b]`` is the XOR of level ``a``
        at offset ``j`` with level ``b`` at offset ``j+1``, so one
        gather replaces two gathers plus a full XOR pass over the fold
        slab.  Built lazily (only when a plan enables pair fusion) and
        cached on the kernel; XOR associativity makes the fused fold
        bit-identical to the unfused one.
        """
        if not 0 <= j < self.window - 1:
            raise ValueError(
                f"pair offset {j} out of range for window={self.window}"
            )
        # kernels assembled via __new__ (shared-memory attach) skip
        # __init__; create the lazy cache on first use
        cache = self.__dict__.setdefault("_pair_tables", {})
        pair = cache.get(j)
        if pair is None:
            pair = self.tables[j][:, None, :] ^ self.tables[j + 1][None, :, :]
            pair.setflags(write=False)
            cache[j] = pair
        return pair

    def nbytes(self) -> int:
        """Packed table footprint (levels x offsets + ids + pair tables)."""
        total = self.tables.nbytes
        if self.id_words is not None:
            total += self.id_words.nbytes
        for pair in self.__dict__.get("_pair_tables", {}).values():
            total += pair.nbytes
        return total

    def op_counts(self, n_features: int, n_samples: int = 1) -> dict:
        """Logical and word-level op counts for encoding ``n_samples``.

        ``word_xor_ops`` is what the kernel physically executes (one
        uint64 XOR folds 64 dimensions, padding included);
        ``xor_ops``/``add_ops`` are the *logical* per-dimension counts
        -- the currency of :class:`~repro.core.encoders.base.OpProfile`
        and the op/energy models -- so the packed engine reports the
        same work as the reference engine, not 64x less.
        """
        n_win = n_features - self.window + 1
        if n_win < 1:
            raise ValueError(
                f"window={self.window} longer than input ({n_features} features)"
            )
        folds = (self.window - 1) + (1 if self.id_words is not None else 0)
        return {
            "xor_ops": n_samples * n_win * folds * self.dim,
            "add_ops": n_samples * n_win * self.dim,
            "word_xor_ops": n_samples * n_win * folds * self.words,
            "windows": n_win,
            "words": self.words,
        }

    def _validate_bins(self, bins: np.ndarray) -> int:
        if bins.ndim != 2:
            raise ValueError(f"expected (N, n_features) bins, got {bins.shape}")
        n_win = bins.shape[1] - self.window + 1
        if n_win < 1:
            raise ValueError(
                f"window={self.window} longer than input ({bins.shape[1]} features)"
            )
        if self.id_words is not None and len(self.id_words) < n_win:
            raise ValueError(
                f"kernel packed {len(self.id_words)} ids but input needs {n_win}"
            )
        return n_win

    def encode_bins(self, bins: np.ndarray, plan=None) -> np.ndarray:
        """Encode quantized inputs ``(N, n_features)`` to int32 counts.

        Returns the same ``(N, dim)`` int32 matrix as the reference
        encoder: per-dimension sums of the bound window hypervectors.
        Execution lowers onto the primitive IR: the planner builds (and
        caches) a fused :class:`~repro.core.ir.planner.KernelPlan` for
        this shape-class and the ``packed-uint64`` backend runs it;
        callers with a plan in hand (encoders) pass it to skip the
        cache lookup.
        """
        bins = np.asarray(bins)
        n_win = self._validate_bins(bins)
        if plan is None:
            from repro.core.ir import plan_encode

            plan = plan_encode(
                n_features=bins.shape[1],
                window=self.window,
                dim=self.dim,
                num_levels=self.num_levels,
                use_ids=self.id_words is not None,
                engine="packed",
            )
        from repro.core.ir.backends import EncodeSources

        return plan.execute(EncodeSources(kernel=self), bins)

    def _encode_bins_monolith(self, bins: np.ndarray) -> np.ndarray:
        """The pre-IR single-pass body, kept as the benchmark baseline.

        ``bench_encode.py --check`` gates the planned path against this
        exact code (bit-identity and no-regression), so the PR 2
        behaviour stays pinned even though the hot path now runs
        through the planner.
        """
        bins = np.asarray(bins)
        n_win = self._validate_bins(bins)
        # window-major layout: bundling reduces over the leading axis and
        # every gather/XOR below runs on contiguous (N, W) slabs
        bins_t = np.ascontiguousarray(bins.T)
        fold = self.tables[0][bins_t[:n_win]]
        for j in range(1, self.window):
            fold ^= self.tables[j][bins_t[j : j + n_win]]
        if self.id_words is not None:
            fold ^= self.id_words[:n_win, None, :]
        ones = bit_slice_counts(fold)
        return (n_win - 2 * ones[:, : self.dim]).astype(np.int32)


# -- packed-table memoization -------------------------------------------------
# Clones created through ``with_model`` / model import / process forks
# re-fit nothing, yet each used to re-pack the full rho^j(levels) table
# set.  Kernels are immutable after build, so identical sources (same
# level/id content, window, dim) can share one kernel; the cache key is
# a content hash, not object identity, so independently constructed but
# equal tables also hit.

_KERNEL_CACHE: "OrderedDict[str, GenericPackedKernel]" = OrderedDict()
_KERNEL_CACHE_LOCK = threading.Lock()
_KERNEL_CACHE_SIZE = 8


def _kernel_cache_key(
    levels: np.ndarray, ids: Optional[np.ndarray], window: int, dim: int
) -> str:
    h = hashlib.sha1()
    h.update(np.ascontiguousarray(levels, dtype=np.int8).tobytes())
    if ids is not None:
        h.update(b"|ids|")
        h.update(np.ascontiguousarray(ids, dtype=np.int8).tobytes())
    h.update(f"|w={window}|d={dim}".encode())
    return h.hexdigest()


def shared_packed_kernel(
    levels: np.ndarray,
    ids: Optional[np.ndarray],
    window: int,
    dim: int,
) -> GenericPackedKernel:
    """Build-or-reuse a :class:`GenericPackedKernel` for these sources.

    Keyed by level/id table *content* (sha1), so ``with_model`` clones,
    re-imported models and repeated fits over the same seed all share
    one packed table set instead of re-packing per instance.  Bounded
    LRU; shared-memory kernels never enter (they attach their tables
    directly via ``PackedModel.from_shared``).
    """
    key = _kernel_cache_key(levels, ids, window, dim)
    with _KERNEL_CACHE_LOCK:
        kernel = _KERNEL_CACHE.get(key)
        if kernel is not None:
            _KERNEL_CACHE.move_to_end(key)
            return kernel
    kernel = GenericPackedKernel(levels, ids, window, dim)
    with _KERNEL_CACHE_LOCK:
        cached = _KERNEL_CACHE.setdefault(key, kernel)
        _KERNEL_CACHE.move_to_end(key)
        while len(_KERNEL_CACHE) > _KERNEL_CACHE_SIZE:
            _KERNEL_CACHE.popitem(last=False)
    return cached


def packed_kernel_cache_info() -> dict:
    with _KERNEL_CACHE_LOCK:
        return {"size": len(_KERNEL_CACHE), "max_size": _KERNEL_CACHE_SIZE}


def clear_packed_kernel_cache() -> None:
    with _KERNEL_CACHE_LOCK:
        _KERNEL_CACHE.clear()
