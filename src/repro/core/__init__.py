"""Algorithmic core of the GENERIC reproduction.

This subpackage implements Section 2 (HDC background), Section 3 (the
GENERIC encoding and its baselines) and the learning procedures of the
paper: classification with retraining and unsupervised clustering.
"""

from repro.core.classifier import HDClassifier
from repro.core.clustering import HDCluster
from repro.core.config import ComputeConfig
from repro.core.training import (
    TRAIN_ENGINES,
    TrainPlan,
    TrainReport,
    plan_retraining,
)
from repro.core.online import AdaptiveHDClassifier
from repro.core.packed import PackedModel
from repro.core.hypervector import (
    bind,
    bundle,
    cosine,
    dot,
    hamming,
    normalized_hamming,
    permute,
    random_bipolar,
    sign_quantize,
    to_binary,
    to_bipolar,
)
from repro.core.levels import LevelTable, Quantizer
from repro.core.ids import IdTable, SeedIdGenerator
from repro.core.kernels import (
    GenericPackedKernel,
    bit_slice_counts,
    pack_bits,
    packed_hamming,
    popcount,
    popcount_words,
    unpack_bits,
)

__all__ = [
    "AdaptiveHDClassifier",
    "ComputeConfig",
    "TRAIN_ENGINES",
    "TrainPlan",
    "TrainReport",
    "plan_retraining",
    "GenericPackedKernel",
    "PackedModel",
    "HDClassifier",
    "HDCluster",
    "IdTable",
    "LevelTable",
    "Quantizer",
    "SeedIdGenerator",
    "bit_slice_counts",
    "pack_bits",
    "packed_hamming",
    "popcount",
    "popcount_words",
    "unpack_bits",
    "bind",
    "bundle",
    "cosine",
    "dot",
    "hamming",
    "normalized_hamming",
    "permute",
    "random_bipolar",
    "sign_quantize",
    "to_binary",
    "to_bipolar",
]
