"""Zero-copy model images in POSIX shared memory.

The process-sharded serving layer (:mod:`repro.serve.sharded`) moves
inference workers out of the GIL into separate processes.  Naively that
means every worker unpickles its own copy of the model -- for a packed
GENERIC model the big payloads are the ``rho^j(levels)`` uint64 kernel
tables, the packed class words and the level/id tables, and N workers
paying N copies is exactly the copy-on-write bloat the paper's "memory
reuse" trick exists to avoid.  Instead the parent publishes the arrays
**once** into a :mod:`multiprocessing.shared_memory` segment and every
worker maps them back as read-only NumPy views: no per-worker pickle of
the tables, no write faults, one physical copy of the model for the
whole fleet.

Two pieces:

- :class:`SharedImageSpec` -- a small picklable description of one
  published segment (array table + a caller-supplied ``meta`` blob,
  typically the pickled model skeleton with its big arrays stripped).
  This is what travels to worker processes.
- :class:`SharedModelArena` -- the one place segment lifecycle lives.
  Publishers :meth:`~SharedModelArena.publish` arrays and eventually
  :meth:`~SharedModelArena.unlink`; consumers
  :meth:`~SharedModelArena.attach` and :meth:`~SharedModelArena.detach`.
  The arena is a context manager and registers an ``atexit`` hook, so
  tests and benches cannot leak ``/dev/shm`` segments even on abnormal
  exits.

The epoch-based hot-swap protocol of the sharded server builds directly
on this: a new model version is a *new* segment (fresh
:class:`SharedImageSpec` with a bumped ``epoch``); workers attach the
new image, ack, and only then does the publisher unlink the old one.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["SharedArraySpec", "SharedImageSpec", "SharedModelArena"]

#: byte alignment of each array inside a segment (cache-line friendly)
_ALIGN = 64

#: distinguishes arenas within one process so two publishers with the
#: same prefix (e.g. two servers in one test process) never collide
_ARENA_IDS = iter(range(1, 1 << 62))


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SharedArraySpec:
    """Where one array lives inside a shared segment."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int


@dataclass(frozen=True)
class SharedImageSpec:
    """A picklable handle to one published model image.

    ``meta`` is an opaque caller payload -- :meth:`PackedModel.to_shared
    <repro.core.packed.PackedModel.to_shared>` stores the pickled model
    skeleton there.  ``epoch`` orders successive images of the same
    logical model for the sharded server's swap protocol.
    """

    segment: str
    size: int
    arrays: Tuple[SharedArraySpec, ...]
    meta: bytes = b""
    epoch: int = 0

    def array_table(self) -> Dict[str, SharedArraySpec]:
        return {spec.key: spec for spec in self.arrays}

    @property
    def payload_bytes(self) -> int:
        """Bytes of array data in the image (excluding alignment pad)."""
        return sum(spec.nbytes for spec in self.arrays)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without resource-tracker registration.

    On POSIX, CPython < 3.13 registers *every* ``SharedMemory`` --
    including plain attaches -- with the resource tracker, which then
    unlinks the segment when the registering process exits.  A worker
    that merely mapped the model must never destroy it for everyone
    else (and N workers unregistering the same name floods the tracker
    with KeyErrors), so consumer attaches suppress registration
    entirely: lifecycle belongs to the publishing arena.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
    except Exception:
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig


class SharedModelArena:
    """Owns the lifecycle of shared-memory model segments.

    One arena per role: the sharded server holds a *publisher* arena
    (``publish`` / ``unlink``), each worker process holds a *consumer*
    arena (``attach`` / ``detach``).  Either way, ``close_all`` -- run
    by ``__exit__`` and by an ``atexit`` hook -- releases every mapping
    and unlinks every segment this arena created, so no code path can
    strand a ``/dev/shm`` entry.
    """

    def __init__(self, prefix: str = "repro"):
        self.prefix = f"{prefix}_{os.getpid()}a{next(_ARENA_IDS)}"
        self._lock = threading.Lock()
        self._owned: Dict[str, shared_memory.SharedMemory] = {}
        self._attached: Dict[str, shared_memory.SharedMemory] = {}
        self._serial = 0
        # a weakref-based atexit hook: the arena stays collectable, but
        # a live arena at interpreter exit always cleans up after itself
        self._atexit = _arena_atexit(weakref.ref(self))
        atexit.register(self._atexit)

    # -- publisher side ------------------------------------------------------

    def publish(self, arrays: Dict[str, np.ndarray], meta: bytes = b"",
                epoch: int = 0, name: Optional[str] = None) -> SharedImageSpec:
        """Copy ``arrays`` into one fresh segment; returns its spec.

        This is the single physical copy the whole worker fleet shares.
        Arrays are laid out back to back at 64-byte alignment; ``meta``
        rides along in the spec (not the segment) so a spec alone is
        enough to reconstruct a model in another process.
        """
        specs = []
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = _aligned(offset)
            specs.append(SharedArraySpec(
                key=key, dtype=arr.dtype.str, shape=tuple(arr.shape),
                offset=offset, nbytes=arr.nbytes,
            ))
            offset += arr.nbytes
        size = max(1, offset)
        with self._lock:
            self._serial += 1
            seg_name = name or f"{self.prefix}_{self._serial}"
        shm = shared_memory.SharedMemory(name=seg_name, create=True, size=size)
        for spec, (key, arr) in zip(specs, arrays.items()):
            view = np.frombuffer(
                shm.buf, dtype=np.dtype(spec.dtype),
                count=int(np.prod(spec.shape, dtype=np.int64)),
                offset=spec.offset,
            ).reshape(spec.shape)
            view[...] = np.ascontiguousarray(arr)
            del view  # drop the exported buffer before any future close()
        with self._lock:
            self._owned[seg_name] = shm
        return SharedImageSpec(segment=seg_name, size=size,
                               arrays=tuple(specs), meta=meta, epoch=epoch)

    def unlink(self, segment: str) -> None:
        """Destroy a segment this arena published (idempotent)."""
        with self._lock:
            shm = self._owned.pop(segment, None)
        if shm is None:
            return
        _close_quietly(shm, unlink=True)

    # -- consumer side -------------------------------------------------------

    def attach(self, spec: SharedImageSpec,
               writable: bool = False) -> Dict[str, np.ndarray]:
        """Map a published image; returns ``{key: ndarray view}``.

        The views are zero-copy windows onto the shared segment and
        default to read-only -- a worker that accidentally writes the
        model image raises instead of silently corrupting every other
        worker's model.  The mapping stays valid until
        :meth:`detach`/:meth:`close_all` (keep the arena alive as long
        as the views are in use).
        """
        with self._lock:
            shm = self._attached.get(spec.segment)
        if shm is None:
            shm = _attach_untracked(spec.segment)
            with self._lock:
                shm = self._attached.setdefault(spec.segment, shm)
        views: Dict[str, np.ndarray] = {}
        for aspec in spec.arrays:
            view = np.frombuffer(
                shm.buf, dtype=np.dtype(aspec.dtype),
                count=int(np.prod(aspec.shape, dtype=np.int64)),
                offset=aspec.offset,
            ).reshape(aspec.shape)
            if not writable:
                view.flags.writeable = False
            views[aspec.key] = view
        return views

    def detach(self, segment: str) -> None:
        """Release this process's mapping of ``segment`` (idempotent).

        Callers must drop their array views first; with live views the
        close is deferred to garbage collection instead of raising.
        """
        with self._lock:
            shm = self._attached.pop(segment, None)
        if shm is not None:
            _close_quietly(shm, unlink=False)

    # -- lifecycle -----------------------------------------------------------

    def owned(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._owned)

    def attached(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._attached)

    def close_all(self) -> None:
        """Detach every mapping and unlink every owned segment."""
        with self._lock:
            attached = list(self._attached.values())
            owned = list(self._owned.values())
            self._attached.clear()
            self._owned.clear()
        for shm in attached:
            _close_quietly(shm, unlink=False)
        for shm in owned:
            _close_quietly(shm, unlink=True)

    def __enter__(self) -> "SharedModelArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close_all()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close_all()
        except Exception:
            pass


def _close_quietly(shm: shared_memory.SharedMemory, unlink: bool) -> None:
    try:
        shm.close()
    except BufferError:
        # live numpy views still export the buffer; the mapping dies
        # with the process (unlink below still works -- POSIX keeps the
        # segment until the last mapping goes away).  Neuter close() so
        # SharedMemory.__del__ does not spray "Exception ignored"
        # BufferErrors at interpreter shutdown.
        shm.close = lambda: None  # type: ignore[method-assign]
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - platform specific
            pass


def _arena_atexit(ref: "weakref.ref[SharedModelArena]"):
    """An atexit callable that does not pin the arena in memory."""

    def _cleanup() -> None:
        arena = ref()
        if arena is not None:
            try:
                arena.close_all()
            except Exception:  # pragma: no cover - exit-time best effort
                pass

    return _cleanup


def dump_meta(obj: object) -> bytes:
    """Pickle a model skeleton for :attr:`SharedImageSpec.meta`."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def load_meta(blob: bytes) -> object:
    return pickle.loads(blob)
