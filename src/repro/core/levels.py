"""Level hypervectors and the input quantizer (paper Section 2.2, Fig. 2a).

Level hypervectors are the hyperspace representatives of scalar feature
values.  Inputs are quantized into ``num_levels`` bins (the paper and the
GENERIC ASIC use 64); the level table preserves scalar distance: adjacent
levels are highly similar, while the first and last levels are nearly
orthogonal (``L_min . L_max ~ 0`` in Fig. 2a).

The table is built the standard way: ``L_0`` is random, and each
subsequent level flips a fresh, disjoint slice of ``dim / (2 (Q - 1))``
positions, so exactly ``dim / 2`` positions differ between the extremes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.hypervector import random_bipolar


LEVEL_SCHEMES = ("linear", "random")


class LevelTable:
    """A table of ``num_levels`` bipolar level hypervectors.

    Parameters
    ----------
    rng:
        Source of randomness.
    num_levels:
        Number of quantization bins (rows of the table).
    dim:
        Hypervector dimensionality.
    scheme:
        How the levels relate to each other:

        - ``"linear"`` (the paper's choice): ``L_0`` random, each
          subsequent level flips a fresh disjoint slice, so similarity
          decays linearly with bin distance and the extremes are
          orthogonal (Fig. 2a);
        - ``"random"`` -- independent random levels (all pairwise
          orthogonal): right for *categorical* features where bin
          distance is meaningless (an ablation knob, not the paper's
          default).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        num_levels: int,
        dim: int,
        scheme: str = "linear",
    ):
        if num_levels < 2:
            raise ValueError(f"need at least 2 levels, got {num_levels}")
        if dim < num_levels - 1:
            raise ValueError(
                f"dim={dim} too small to spread flips over {num_levels} levels"
            )
        if scheme not in LEVEL_SCHEMES:
            raise ValueError(
                f"unknown level scheme {scheme!r}; choose from {LEVEL_SCHEMES}"
            )
        self.num_levels = num_levels
        self.dim = dim
        self.scheme = scheme
        self.vectors = self._build(rng)

    def _build(self, rng: np.random.Generator) -> np.ndarray:
        if self.scheme == "random":
            return random_bipolar(rng, self.dim, size=self.num_levels)
        base = random_bipolar(rng, self.dim)
        table = np.empty((self.num_levels, self.dim), dtype=np.int8)
        table[0] = base
        # Flip dim/2 positions in total, spread evenly and disjointly across
        # the Q-1 transitions so similarity decays linearly with bin distance.
        flip_order = rng.permutation(self.dim)[: self.dim // 2]
        boundaries = np.linspace(0, len(flip_order), self.num_levels, dtype=int)
        current = base.copy()
        for q in range(1, self.num_levels):
            chunk = flip_order[boundaries[q - 1] : boundaries[q]]
            current = current.copy()
            current[chunk] *= -1
            table[q] = current
        return table

    def __len__(self) -> int:
        return self.num_levels

    def __getitem__(self, bins: np.ndarray) -> np.ndarray:
        """Look up level hypervectors for an array of bin indices."""
        return self.vectors[bins]

    def similarity_profile(self) -> np.ndarray:
        """Normalized dot of ``L_0`` with every level (diagnostic for Fig. 2a)."""
        base = self.vectors[0].astype(np.int32)
        return (self.vectors.astype(np.int32) @ base) / self.dim


@dataclass
class Quantizer:
    """Quantize raw features into level-bin indices.

    The GENERIC ASIC quantizes every incoming feature into one of
    ``num_levels`` bins using the application's value range (min/max seen
    during training, matching the `bin` unit of Fig. 4).
    """

    num_levels: int = 64
    lo: Optional[np.ndarray] = field(default=None, repr=False)
    hi: Optional[np.ndarray] = field(default=None, repr=False)
    per_feature: bool = False

    def fit(self, X: np.ndarray) -> "Quantizer":
        """Learn the value range from training data ``X`` of shape (N, d)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected (N, d) training matrix, got shape {X.shape}")
        if self.per_feature:
            self.lo = X.min(axis=0)
            self.hi = X.max(axis=0)
        else:
            self.lo = np.asarray(X.min())
            self.hi = np.asarray(X.max())
        return self

    @property
    def fitted(self) -> bool:
        return self.lo is not None

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map features to integer bins in ``[0, num_levels)``."""
        if not self.fitted:
            raise RuntimeError("Quantizer.transform called before fit")
        X = np.asarray(X, dtype=np.float64)
        span = np.where(self.hi > self.lo, self.hi - self.lo, 1.0)
        scaled = (X - self.lo) / span
        bins = np.floor(scaled * self.num_levels).astype(np.int64)
        return np.clip(bins, 0, self.num_levels - 1)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
