"""Retraining engines: the reference per-sample loop and a Gram cache.

The paper's retraining (Fig. 1c) is inherently sequential -- every
sample is scored against the *current* model, and a misprediction
mutates the model before the next sample is scored.  The reference
engine implements exactly that, one NumPy matvec per sample.  The
``gram`` engine computes the same sequence of predictions and updates
from two caches instead:

- ``G = encodings @ model.T`` (kept transposed as ``(n_classes, n)``):
  scoring sample ``i`` is a read of column ``i`` -- no matvec.  When
  class ``c`` changes by ``±h_i``, the whole row ``G[c]`` moves by
  ``±k_i`` where ``k_i = encodings @ h_i`` is a column of the Gram
  matrix ``K = encodings @ encodings.T``.
- scalar squared norms per class, moved by the identity
  ``||C ± h||² = ||C||² ± 2·(C·h) + ||h||²`` where ``C·h`` is *already
  in the cache* (it is ``G[c, i]``), so a misprediction costs
  ``O(n + dim)`` instead of two full ``O(dim)`` norm recomputes plus an
  ``O(n_classes · dim)`` matvec per subsequent score.

``K`` itself is memory-gated: when it fits the budget it is built once
with one BLAS GEMM (in float32 when the values provably stay exact --
see below); otherwise columns are computed on demand and cached while
the budget lasts.

**Why the gram engine is result-identical, not just close.**  Encoded
hypervectors are integer-valued (window-folded XOR sums), so the model,
every dot product, and every squared norm are integers.  IEEE-754
float64 arithmetic on integers below 2**53 is exact regardless of
association order, which makes the cached dots and delta-updated norms
*bit-equal* to freshly computed ones -- the scores, arg-maxes, update
sequence, final model, and :class:`SubNormTable` all match the
reference engine exactly.  :func:`plan_retraining` verifies the
integer-magnitude precondition up front (a conservative worst-case
growth bound); ``engine="auto"`` falls back to the reference loop when
it cannot prove exactness or when the Gram cache would not fit the
memory budget.

The adaptive (OnlineHD-style) rule of
:class:`~repro.core.online.AdaptiveHDClassifier` scales updates by
continuous similarities, so its cached dots drift from fresh ones at
float rounding level; its gram engine is numerically equivalent (and
refreshes the cache every epoch) but not guaranteed bit-identical,
which is why ``auto`` resolves to ``reference`` for the adaptive rule.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.sims import METRICS
from repro.obs import trace as obs_trace

#: selectable training engines (mirrors the encoders' ``engine=`` flag)
TRAIN_ENGINES = ("auto", "reference", "gram")

#: default cap on Gram-cache memory (G + K + column cache), in bytes
DEFAULT_TRAIN_BUDGET = 256 * 2**20

#: integer magnitudes must stay below this for float64 ops to be exact;
#: one bit of slack under 2**53 covers the ``2*(C·h) + ||h||²`` deltas
_EXACT_LIMIT = 2.0**52

#: float32 accumulates integers exactly below 2**24 (used for K)
_EXACT_LIMIT_F32 = 2.0**24

_EPOCH_CHUNK = 16384  # samples per epoch-end accuracy chunk

#: samples per vectorized scan block in the gram engine.  The scan
#: scores a whole block from the cache and jumps to the first
#: misprediction, so converged epochs cost a handful of NumPy calls per
#: block instead of one Python iteration per sample.  128 balances the
#: per-update tail rescan (grows with the block) against per-block
#: overhead (shrinks with it).
_SCAN_CHUNK = 128


@dataclass
class TrainReport:
    """Bookkeeping returned by :meth:`HDClassifier.fit`."""

    epochs_run: int
    updates_per_epoch: list
    train_accuracy_per_epoch: list
    #: wall-clock seconds spent inside the retraining engine (set by
    #: :func:`retrain`; excludes encoding and model initialization)
    seconds: Optional[float] = None

    @property
    def final_train_accuracy(self) -> float:
        return self.train_accuracy_per_epoch[-1] if self.train_accuracy_per_epoch else 0.0


@dataclass
class TrainPlan:
    """Resolved engine choice for one ``fit()`` (see ``clf.train_plan_``)."""

    requested: str          # what the caller asked for
    engine: str             # "reference" | "gram"
    rule: str               # "paper" | "adaptive"
    exact: bool             # gram proven bit-identical to reference
    kernel: str             # "precomputed" | "columns" | "none"
    kernel_dtype: str       # "float32" | "float64" | "-"
    cache_bytes: int        # planned gram-cache footprint
    budget_bytes: int
    reason: str             # why this engine was picked

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrainPlan({self.requested!r} -> {self.engine!r}, rule={self.rule}, "
            f"exact={self.exact}, kernel={self.kernel}, {self.reason})"
        )


# -- planning ---------------------------------------------------------------


def _bound_stats(encodings: np.ndarray):
    """Per-column L1 / max-abs bounds, without materializing ``|E|``.

    Encodings are typically non-negative (XOR-popcount counts), in which
    case three allocation-free reduction passes suffice; mixed-sign data
    falls back to one ``np.abs`` temporary.
    """
    if float(encodings.min()) >= 0.0:
        return encodings.sum(axis=0), encodings.max(axis=0)
    abs_e = np.abs(encodings)
    return abs_e.sum(axis=0), abs_e.max(axis=0)


def _paper_rule_exact(
    encodings: np.ndarray,
    epochs: int,
    assume_integral: bool = False,
    stats=None,
) -> bool:
    """True when the gram replay of the ±h rule is provably bit-exact.

    Requires integer-valued encodings whose worst-case dot products and
    squared norms stay below 2**52.  The growth bound is conservative:
    it assumes every sample is moved into the same class every epoch.
    ``assume_integral`` skips the whole-array integer scan when the
    caller has already seen an integer source dtype; ``stats`` accepts a
    precomputed ``(col_l1, col_max)`` pair from :func:`_bound_stats`.
    """
    if encodings.size == 0:
        return True
    if not assume_integral and not np.array_equal(
        encodings, np.trunc(encodings)
    ):
        return False
    col_l1, col_max = _bound_stats(encodings) if stats is None else stats
    growth = (1.0 + float(epochs)) * col_l1   # worst-case model magnitude
    dot_bound = float(col_max @ growth)
    norm_bound = float(growth @ growth)
    return max(dot_bound, norm_bound) < _EXACT_LIMIT


def plan_retraining(
    encodings: np.ndarray,
    n_classes: int,
    epochs: int,
    engine: str = "auto",
    rule: str = "paper",
    budget_bytes: Optional[int] = None,
    assume_integral: bool = False,
) -> TrainPlan:
    """Pick the retraining engine and Gram-cache layout for one fit."""
    if engine not in TRAIN_ENGINES:
        raise ValueError(
            f"unknown train engine {engine!r}; choose from {TRAIN_ENGINES}"
        )
    budget = DEFAULT_TRAIN_BUDGET if budget_bytes is None else int(budget_bytes)
    n = len(encodings)

    def reference(reason: str, exact: bool = True) -> TrainPlan:
        return TrainPlan(engine, "reference", rule, exact, "none", "-",
                         0, budget, reason)

    if engine == "reference":
        return reference("requested")
    if epochs <= 0 or n == 0:
        return reference("nothing to retrain")

    stats = _bound_stats(encodings) if n else None
    exact = rule == "paper" and _paper_rule_exact(
        encodings, epochs, assume_integral=assume_integral, stats=stats
    )
    if engine == "auto":
        if rule != "paper":
            return reference(
                "adaptive updates are similarity-scaled (non-integer); "
                "gram replay is not provably bit-identical", exact=False,
            )
        if not exact:
            return reference(
                "encodings fail the integer-exactness bound for gram replay",
                exact=False,
            )

    # gram-cache layout: G (n_classes, n) + h2 (n) always; K when it fits
    g_bytes = n_classes * n * 8 + n * 8
    if engine == "auto" and g_bytes > budget:
        return reference(
            f"dot cache ({g_bytes} B) exceeds the {budget} B budget"
        )
    kernel_f32 = (
        stats is not None
        and float(stats[1].max()) ** 2 * encodings.shape[1] < _EXACT_LIMIT_F32
    )
    k_dtype = "float32" if kernel_f32 else "float64"
    k_bytes = n * n * (4 if kernel_f32 else 8)
    if g_bytes + k_bytes <= budget:
        kernel, cache = "precomputed", g_bytes + k_bytes
    else:
        kernel, cache = "columns", g_bytes  # on-demand columns, budget-gated
    return TrainPlan(engine, "gram", rule, exact, kernel, k_dtype,
                     cache, budget, "gram cache fits the memory budget")


# -- shared helpers ---------------------------------------------------------


class _ColumnProvider:
    """Columns of the Gram matrix ``K = E @ E.T``, per the plan.

    ``precomputed`` builds K with one GEMM (float32 when exact);
    ``columns`` computes ``E @ E[i]`` on first use and caches the result
    while the remaining memory budget allows.
    """

    def __init__(self, encodings: np.ndarray, plan: TrainPlan):
        self._E = encodings
        n = len(encodings)
        self.kernel: Optional[np.ndarray] = None
        self._cache: Dict[int, np.ndarray] = {}
        self._capacity = 0
        if plan.kernel == "precomputed":
            e = encodings
            if plan.kernel_dtype == "float32":
                e = encodings.astype(np.float32)
            self.kernel = e @ e.T
        else:
            spare = plan.budget_bytes - plan.cache_bytes
            self._capacity = max(0, spare // (n * 8)) if n else 0

    def column(self, i: int) -> np.ndarray:
        if self.kernel is not None:
            return self.kernel[i]
        col = self._cache.get(i)
        if col is None:
            col = self._E @ self._E[i]
            if len(self._cache) < self._capacity:
                self._cache[i] = col
        return col


def _gram_scores_block(block: np.ndarray, safe: np.ndarray,
                       sqrt_safe: np.ndarray, metric: str) -> np.ndarray:
    """Scores for a ``(n_classes, chunk)`` slice of the dot cache.

    Elementwise-identical to :meth:`HDClassifier._scores` on the same
    dots and norms (division by the same sqrt, same hardware formula).
    """
    if metric == "cosine":
        return block / sqrt_safe[:, None]
    if metric == "dot":
        return block
    if metric == "hardware":
        return np.sign(block) * ((block * block) / safe[:, None])
    raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")


def _gram_epoch_accuracy(gt: np.ndarray, safe: np.ndarray,
                         sqrt_safe: np.ndarray, metric: str,
                         y_idx: np.ndarray) -> float:
    """Chunked epoch-end training accuracy straight from the dot cache."""
    n = gt.shape[1]
    correct = 0
    for start in range(0, n, _EPOCH_CHUNK):
        stop = min(start + _EPOCH_CHUNK, n)
        scores = _gram_scores_block(gt[:, start:stop], safe, sqrt_safe, metric)
        preds = np.argmax(scores, axis=0)
        correct += int(np.count_nonzero(preds == y_idx[start:stop]))
    return correct / n


def _chunked_epoch_accuracy(clf, encodings: np.ndarray,
                            y_idx: np.ndarray) -> float:
    """Epoch-end accuracy for the reference engine, chunked to bound the
    transient score matrix instead of materializing all ``(n, C)`` rows
    of intermediates in one shot."""
    n = len(encodings)
    correct = 0
    for start in range(0, n, _EPOCH_CHUNK):
        stop = min(start + _EPOCH_CHUNK, n)
        preds = np.argmax(clf._scores(encodings[start:stop]), axis=1)
        correct += int(np.count_nonzero(preds == y_idx[start:stop]))
    return correct / n


def _block_norm2(encodings: np.ndarray, n_blocks: int, block: int) -> np.ndarray:
    """Per-sample per-block squared norms ``||h_blk||²`` (shape (n, n_blocks))."""
    blocked = encodings.reshape(len(encodings), n_blocks, block)
    return np.einsum("ijk,ijk->ij", blocked, blocked)


class _EpochTracer:
    """Per-epoch ``train.epoch`` spans for the engine loops.

    The epoch loops are the retraining hot path, so instead of a context
    manager per iteration the engines call :meth:`mark` once per epoch
    boundary; everything is a no-op while tracing is disabled.
    """

    __slots__ = ("engine", "rule", "epoch", "_t0", "_enabled")

    def __init__(self, engine: str, rule: str):
        self._enabled = obs_trace.tracing_enabled()
        self.engine = engine
        self.rule = rule
        self.epoch = 0
        self._t0 = time.perf_counter() if self._enabled else 0.0

    def mark(self, updates: int, accuracy: float) -> None:
        if not self._enabled:
            return
        now = time.perf_counter()
        obs_trace.emit_span(
            "train.epoch", now - self._t0,
            attrs={
                "engine": self.engine, "rule": self.rule,
                "epoch": self.epoch, "updates": updates,
                "train_accuracy": accuracy,
            },
        )
        self.epoch += 1
        self._t0 = now


# -- reference engines ------------------------------------------------------


def _retrain_reference_paper(clf, encodings: np.ndarray,
                             y_idx: np.ndarray) -> TrainReport:
    """The paper's per-sample rule (Fig. 1c), scored against the live model.

    Norm maintenance uses :meth:`SubNormTable.delta_update` (exact
    ``±2·(C_blk·h_blk) + ||h_blk||²`` per block) instead of the old
    full-row square-and-sum, with the per-sample block norms hoisted out
    of the loop.
    """
    updates_per_epoch: List[int] = []
    acc_per_epoch: List[float] = []
    n = len(encodings)
    order = np.arange(n)
    tracer = _EpochTracer("reference", "paper")
    h_blk2 = None
    if clf.epochs > 0 and n > 0:
        h_blk2 = _block_norm2(encodings, clf.norms_.n_blocks, clf.norms_.block)
    for _ in range(clf.epochs):
        if clf.shuffle:
            clf.rng.shuffle(order)
        updates = 0
        for i in order:
            h = encodings[i]
            pred = int(np.argmax(clf._scores(h[None, :])[0]))
            truth = int(y_idx[i])
            if pred != truth:
                clf.norms_.delta_update(pred, clf.model_[pred], h, -1.0,
                                        h_block_norm2=h_blk2[i])
                clf.norms_.delta_update(truth, clf.model_[truth], h, 1.0,
                                        h_block_norm2=h_blk2[i])
                clf.model_[pred] -= h
                clf.model_[truth] += h
                updates += 1
        updates_per_epoch.append(updates)
        acc_per_epoch.append(_chunked_epoch_accuracy(clf, encodings, y_idx))
        tracer.mark(updates, acc_per_epoch[-1])
        if updates == 0:
            break
    return TrainReport(
        epochs_run=len(updates_per_epoch),
        updates_per_epoch=updates_per_epoch,
        train_accuracy_per_epoch=acc_per_epoch,
    )


def _retrain_reference_adaptive(clf, encodings: np.ndarray,
                                y_idx: np.ndarray) -> TrainReport:
    """Similarity-weighted (OnlineHD-style) per-sample rule."""
    updates_per_epoch: List[int] = []
    acc_per_epoch: List[float] = []
    n = len(encodings)
    order = np.arange(n)
    tracer = _EpochTracer("reference", "adaptive")
    for _ in range(clf.epochs):
        if clf.shuffle:
            clf.rng.shuffle(order)
        updates = 0
        for i in order:
            h = encodings[i]
            sims = clf._cosine_row(h)
            pred = int(np.argmax(sims))
            truth = int(y_idx[i])
            if pred != truth:
                clf.model_[truth] += clf.lr * (1.0 - sims[truth]) * h
                clf.model_[pred] -= clf.lr * (1.0 - sims[pred]) * h
                clf.norms_.update_class(truth, clf.model_[truth])
                clf.norms_.update_class(pred, clf.model_[pred])
                updates += 1
            elif clf.update_on_correct:
                bump = 0.1 * clf.lr * (1.0 - sims[truth])
                if bump > 0:
                    clf.model_[truth] += bump * h
                    clf.norms_.update_class(truth, clf.model_[truth])
        updates_per_epoch.append(updates)
        preds = np.argmax(clf._scores(encodings), axis=1)
        acc_per_epoch.append(float(np.mean(preds == y_idx)))
        tracer.mark(updates, acc_per_epoch[-1])
        if updates == 0 and not clf.update_on_correct:
            break
    return TrainReport(
        epochs_run=len(updates_per_epoch),
        updates_per_epoch=updates_per_epoch,
        train_accuracy_per_epoch=acc_per_epoch,
    )


# -- gram engines -----------------------------------------------------------


def _retrain_gram_paper(clf, encodings: np.ndarray, y_idx: np.ndarray,
                        plan: TrainPlan) -> TrainReport:
    """Gram-cached replay of the paper's rule (result-identical).

    ``gt`` is the transposed dot cache ``(n_classes, n)`` so the two
    rows touched by an update are contiguous; scoring sample ``i`` reads
    column ``i``.  Samples are consumed through a vectorized scan: a
    block of upcoming samples is scored from the cache in one shot and
    the scan jumps straight to the first misprediction (everything
    before it was predicted correctly and mutated nothing); after the
    update only the block's tail is rescored, because the two touched
    ``gt`` rows and norms are stale there.  The per-column scores and
    arg-maxes are elementwise-identical to the per-sample loop, so the
    update sequence is exactly the reference's.

    The block-granular :class:`SubNormTable` is not needed while
    training (only full norms enter the scores), so it is rebuilt once
    from the final model -- exactly what the reference engine's
    per-update maintenance converges to.
    """
    model = clf.model_
    n = len(encodings)
    metric = clf.metric
    gt = model @ encodings.T                      # exact integer dots
    h2 = np.einsum("ij,ij->i", encodings, encodings)
    columns = _ColumnProvider(encodings, plan)
    norm2 = clf.norms_.full_norm2()
    safe = np.where(norm2 <= 0.0, np.inf, norm2)
    sqrt_safe = np.sqrt(safe)

    updates_per_epoch: List[int] = []
    acc_per_epoch: List[float] = []
    order = np.arange(n)
    tracer = _EpochTracer("gram", "paper")
    for _ in range(clf.epochs):
        if clf.shuffle:
            clf.rng.shuffle(order)
        updates = 0
        for start in range(0, n, _SCAN_CHUNK):
            idx = order[start:start + _SCAN_CHUNK]
            truths = y_idx[idx]
            m = len(idx)
            # score the whole block once; after an update only the two
            # touched class rows go stale and are re-derived for the tail
            scores = _gram_scores_block(gt[:, idx], safe, sqrt_safe, metric)
            j = 0
            while j < m:
                tail = scores[:, j:]
                preds = np.argmax(tail, axis=0)
                wrong = preds != truths[j:]
                p = int(np.argmax(wrong))
                if not wrong[p]:
                    break
                i = int(idx[j + p])
                pred = int(preds[p])
                truth = int(truths[j + p])
                # norm deltas use the pre-update dots still in the cache
                norm2[pred] += h2[i] - 2.0 * gt[pred, i]
                norm2[truth] += h2[i] + 2.0 * gt[truth, i]
                col = columns.column(i)
                gt[pred] -= col
                gt[truth] += col
                h = encodings[i]
                model[pred] -= h
                model[truth] += h
                j += p + 1
                for c in (pred, truth):
                    v = norm2[c]
                    safe[c] = np.inf if v <= 0.0 else v
                    sqrt_safe[c] = math.sqrt(safe[c]) if v > 0.0 else np.inf
                    if j < m:
                        scores[c, j:] = _gram_scores_block(
                            gt[c, idx[j:]][None, :],
                            safe[c:c + 1], sqrt_safe[c:c + 1], metric,
                        )[0]
                updates += 1
        updates_per_epoch.append(updates)
        acc_per_epoch.append(
            _gram_epoch_accuracy(gt, safe, sqrt_safe, metric, y_idx)
        )
        tracer.mark(updates, acc_per_epoch[-1])
        if updates == 0:
            break
    clf.norms_.recompute(model)
    return TrainReport(
        epochs_run=len(updates_per_epoch),
        updates_per_epoch=updates_per_epoch,
        train_accuracy_per_epoch=acc_per_epoch,
    )


def _retrain_gram_adaptive(clf, encodings: np.ndarray, y_idx: np.ndarray,
                           plan: TrainPlan) -> TrainReport:
    """Gram-cached adaptive rule (numerically equivalent, not bit-exact).

    Updates are scaled by continuous similarities, so the cached dots
    accumulate float rounding; the cache and norms are refreshed from
    the model at every epoch boundary to keep drift at rounding level.
    """
    model = clf.model_
    n = len(encodings)
    metric = clf.metric
    gt = model @ encodings.T
    h2 = np.einsum("ij,ij->i", encodings, encodings)
    hn = np.sqrt(h2)
    columns = _ColumnProvider(encodings, plan)
    norm2 = clf.norms_.full_norm2()

    updates_per_epoch: List[int] = []
    acc_per_epoch: List[float] = []
    order = np.arange(n)
    tracer = _EpochTracer("gram", "adaptive")
    y_list = [int(v) for v in y_idx]
    lr = clf.lr
    for _ in range(clf.epochs):
        if clf.shuffle:
            clf.rng.shuffle(order)
        sqrt_n2 = np.sqrt(norm2)
        updates = 0
        for i in order.tolist():
            g = gt[:, i]
            denom = sqrt_n2 * hn[i]
            sims = g / np.where(denom == 0.0, np.inf, denom)
            pred = int(np.argmax(sims))
            truth = y_list[i]
            if pred != truth:
                a_t = lr * (1.0 - sims[truth])
                a_p = lr * (1.0 - sims[pred])
                norm2[truth] += 2.0 * a_t * gt[truth, i] + a_t * a_t * h2[i]
                norm2[pred] += -2.0 * a_p * gt[pred, i] + a_p * a_p * h2[i]
                col = columns.column(i)
                gt[truth] += a_t * col
                gt[pred] -= a_p * col
                h = encodings[i]
                model[truth] += a_t * h
                model[pred] -= a_p * h
                sqrt_n2[truth] = np.sqrt(max(norm2[truth], 0.0))
                sqrt_n2[pred] = np.sqrt(max(norm2[pred], 0.0))
                updates += 1
            elif clf.update_on_correct:
                bump = 0.1 * lr * (1.0 - sims[truth])
                if bump > 0:
                    norm2[truth] += 2.0 * bump * gt[truth, i] + bump * bump * h2[i]
                    gt[truth] += bump * columns.column(i)
                    model[truth] += bump * encodings[i]
                    sqrt_n2[truth] = np.sqrt(max(norm2[truth], 0.0))
        # refresh from the model: caps float drift at one epoch's worth
        gt = model @ encodings.T
        norm2 = np.einsum("ij,ij->i", model, model)
        safe = np.where(norm2 <= 0.0, np.inf, norm2)
        sqrt_safe = np.sqrt(safe)
        updates_per_epoch.append(updates)
        acc_per_epoch.append(
            _gram_epoch_accuracy(gt, safe, sqrt_safe, metric, y_idx)
        )
        tracer.mark(updates, acc_per_epoch[-1])
        if updates == 0 and not clf.update_on_correct:
            break
    clf.norms_.recompute(model)
    return TrainReport(
        epochs_run=len(updates_per_epoch),
        updates_per_epoch=updates_per_epoch,
        train_accuracy_per_epoch=acc_per_epoch,
    )


# -- entry point ------------------------------------------------------------


def retrain(clf, encodings: np.ndarray, y_idx: np.ndarray) -> TrainReport:
    """Run retraining for a fitted-init classifier under its engine flag.

    Resolves ``clf.train_engine`` via :func:`plan_retraining` (recorded
    on ``clf.train_plan_``) and dispatches on the classifier's update
    rule (``clf.train_rule``: ``"paper"`` or ``"adaptive"``).
    """
    rule = getattr(clf, "train_rule", "paper")
    t0 = time.perf_counter()
    plan = plan_retraining(
        encodings,
        n_classes=clf.model_.shape[0],
        epochs=clf.epochs,
        engine=clf.train_engine,
        rule=rule,
        budget_bytes=clf.train_memory_budget,
        assume_integral=getattr(clf, "_encodings_integral", False),
    )
    clf.train_plan_ = plan
    n, dim = encodings.shape if encodings.ndim == 2 else (len(encodings), 0)
    n_classes = clf.model_.shape[0]
    with obs_trace.span(
        "train", engine=plan.engine, rule=rule, samples=n,
        n_classes=n_classes, dim=dim, epochs=clf.epochs,
    ) as sp:
        if plan.engine == "gram":
            if rule == "adaptive":
                report = _retrain_gram_adaptive(clf, encodings, y_idx, plan)
            else:
                report = _retrain_gram_paper(clf, encodings, y_idx, plan)
        elif rule == "adaptive":
            report = _retrain_reference_adaptive(clf, encodings, y_idx)
        else:
            report = _retrain_reference_paper(clf, encodings, y_idx)
        if sp.recording:
            # logical work, engine-independent: every sample is scored
            # against every class each epoch (dim MACs per pair), and a
            # misprediction moves two class rows plus their norm deltas
            total_updates = int(sum(report.updates_per_epoch))
            score_macs = report.epochs_run * n * n_classes * dim
            sp.set(epochs_run=report.epochs_run, updates=total_updates)
            sp.add_ops(
                mul_ops=score_macs,
                add_ops=score_macs + total_updates * 4 * dim,
                mem_bytes=report.epochs_run * (n + n_classes) * dim * 8,
            )
    report.seconds = time.perf_counter() - t0
    return report
