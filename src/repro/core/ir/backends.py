"""Pluggable execution backends for the primitive IR.

A :class:`Backend` implements the IR primitives of
:mod:`repro.core.ir.primitives` for one representation of
hypervectors, and executes the fused encode pipeline a
:class:`~repro.core.ir.planner.KernelPlan` describes.  Backends are
registered in a :class:`BackendRegistry` -- patterned after the
:mod:`repro.platforms` device registry: a named catalogue the planner
resolves engines through -- so new hardware paths (SIMD, GPU) plug in
without touching encoders or callers.

Shipped backends:

- ``numpy-reference`` -- the readable bipolar-domain ground truth
  (int8 level gathers, ``np.roll`` permutes, int8 products).
- ``packed-uint64`` -- the bit-domain fast path of
  :mod:`repro.core.kernels` (pre-permuted packed tables, word-wise
  XOR folds, carry-save-adder bundling), refactored here into
  per-primitive methods.
- ``numba-jit`` -- optional fully-fused scalar loops compiled by
  numba, auto-detected at import (see
  :mod:`repro.core.ir.numba_backend`); absent silently when numba is
  not installed.

Every backend is *bit-identical* to every other for the same plan --
the property suite in ``tests/core/test_ir.py`` pins this over random
shapes, dims and approximation levels.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "Backend",
    "BackendRegistry",
    "BACKENDS",
    "EncodeSources",
    "NumpyReferenceBackend",
    "PackedUint64Backend",
    "ENGINE_TO_BACKEND",
    "BACKEND_TO_ENGINE",
]

#: legacy ``engine=`` names -> backend names (the compatibility surface)
ENGINE_TO_BACKEND = {
    "reference": "numpy-reference",
    "packed": "packed-uint64",
    "numba": "numba-jit",
}
BACKEND_TO_ENGINE = {v: k for k, v in ENGINE_TO_BACKEND.items()}


@dataclass
class EncodeSources:
    """The fitted tables one encode call closes over.

    ``levels``/``ids`` feed the bipolar backends; ``kernel`` (a
    :class:`~repro.core.kernels.GenericPackedKernel`) feeds the packed
    ones.  An encoder hands the planner whichever side its engine
    needs; handing both lets the planner switch backends per plan.
    """

    levels: Optional[np.ndarray] = None  # (L, D) int8 bipolar level table
    ids: Optional[np.ndarray] = None  # (n_windows, D) int8 bipolar or None
    kernel: Optional[object] = None  # GenericPackedKernel for packed backends


class Backend:
    """One implementation of the IR primitives.

    Subclasses provide the primitive methods (``xor_fold``, ``bundle``,
    ``popcount_search``) plus :meth:`encode` -- the fused execution of
    a whole encode plan.  ``encode`` must return the same ``(N, dim)``
    int32 count matrix for any backend and any legal plan.
    """

    #: registry name (also what ``plan.backend`` reports)
    name: str = "backend"
    #: auto-selection rank: the planner's ``engine="auto"`` picks the
    #: highest-priority available backend
    priority: int = 0

    @classmethod
    def available(cls) -> bool:
        """Can this backend run in the current environment?"""
        return True

    def encode(self, plan, sources: EncodeSources,
               bins: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} priority={self.priority}>"


def _window_indices(plan, n_windows: int):
    """The window index vector a plan folds (None -> all, in order)."""
    if plan.window_sel is None:
        return np.arange(n_windows, dtype=np.int64)
    sel = plan.window_sel
    if sel[-1] >= n_windows:
        raise ValueError(
            f"plan selects window {int(sel[-1])} but input has only "
            f"{n_windows} windows"
        )
    return sel


def _window_blocks(plan, n_windows: int):
    """Yield ``(idx, count)`` window blocks for one encode pass.

    Exact plans (``window_sel is None``) yield :class:`slice` objects so
    every downstream gather stays a basic-indexing *view* of ``bins_t``
    -- fancy ``idx + j`` index arrays cost a materialized copy per
    window offset, which is the difference between matching and
    trailing the fused monolith at small ``dim``.  Approximate plans
    yield the selected index vector in array form.
    """
    block = max(1, plan.window_block)
    if plan.window_sel is None:
        for b0 in range(0, n_windows, block):
            hi = min(b0 + block, n_windows)
            yield slice(b0, hi), hi - b0
    else:
        idx_all = _window_indices(plan, n_windows)
        for b0 in range(0, len(idx_all), block):
            idx = idx_all[b0:b0 + block]
            yield idx, len(idx)


def _shift_index(idx, j: int):
    """``idx + j`` for either index form (slice stays a slice)."""
    if isinstance(idx, slice):
        return slice(idx.start + j, idx.stop + j) if j else idx
    return idx + j if j else idx


class NumpyReferenceBackend(Backend):
    """Bipolar int8 ground truth: gather, roll, multiply, sum."""

    name = "numpy-reference"
    priority = 0

    # -- primitive impls ----------------------------------------------------

    def permute(self, vectors: np.ndarray, shift: int) -> np.ndarray:
        """``rho^shift``: rotate along the dimension axis."""
        return np.roll(vectors, shift, axis=-1) if shift else vectors

    def xor_fold(self, levels: np.ndarray, bins: np.ndarray,
                 idx: np.ndarray, window: int) -> np.ndarray:
        """Fold one block of windows: ``prod_j rho^j(l(x_{i+j}))``.

        XOR in the binary view is multiplication in the bipolar view;
        this is the reference-domain rendering of the fused
        permute+xor-fold loop.
        """
        prod: Optional[np.ndarray] = None
        for j in range(window):
            lv = self.permute(levels[bins[:, _shift_index(idx, j)]], j)
            prod = lv.copy() if prod is None else prod.__imul__(lv)
            del lv  # free the temp before the next gather (peak memory)
        return prod

    def bundle(self, bound: np.ndarray) -> np.ndarray:
        """Sum the bound window hypervectors into int32 counts."""
        return bound.sum(axis=1, dtype=np.int32)

    def popcount_search(self, queries: np.ndarray,
                        classes: np.ndarray) -> np.ndarray:
        """Hamming distances between bipolar {-1,+1} rows.

        ``hamming = (D - q . c) / 2`` for bipolar vectors -- the
        bipolar-domain twin of XOR+popcount, pinned bit-identical to
        :func:`repro.core.kernels.packed_hamming` by the test suite.
        """
        queries = np.asarray(queries, dtype=np.int32)
        classes = np.asarray(classes, dtype=np.int32)
        dots = queries @ classes.T
        return ((queries.shape[-1] - dots) // 2).astype(np.int64)

    # -- fused plan execution ----------------------------------------------

    def encode(self, plan, sources: EncodeSources,
               bins: np.ndarray) -> np.ndarray:
        levels = sources.levels
        ids = sources.ids
        if levels is None:
            raise ValueError(f"{self.name} backend needs bipolar level table")
        window = plan.ctx.window
        n_win = bins.shape[1] - window + 1
        _window_indices(plan, n_win)  # validates window_sel bounds
        out = np.zeros((len(bins), plan.ctx.dim), dtype=np.int32)
        for idx, _ in _window_blocks(plan, n_win):
            prod = self.xor_fold(levels, bins, idx, window)
            if ids is not None:
                prod = prod * ids[idx][None, :, :]
            out += self.bundle(prod)
        return out


class PackedUint64Backend(Backend):
    """The bit-domain fast path: packed tables, word XOR, CSA bundling."""

    name = "packed-uint64"
    priority = 20

    # -- primitive impls ----------------------------------------------------
    # (thin named fronts over repro.core.kernels so the monolith's body
    # is now a set of per-primitive entry points)

    def pack(self, bits: np.ndarray) -> np.ndarray:
        from repro.core.kernels import pack_bits

        return pack_bits(bits)

    def unpack(self, words: np.ndarray, dim: int) -> np.ndarray:
        from repro.core.kernels import unpack_bits

        return unpack_bits(words, dim)

    def xor_fold(self, kernel, bins_t: np.ndarray, idx: np.ndarray,
                 fuse_pairs: bool = False) -> np.ndarray:
        """Gather+XOR one block of windows from the packed tables.

        ``bins_t`` is the transposed ``(n_features, N)`` bin matrix;
        ``idx`` the window indices of this block.  With ``fuse_pairs``
        the planner has fused adjacent permuted level tables into
        ``rho^j(levels) ^ rho^{j+1}(levels)`` pair tables
        (:meth:`~repro.core.kernels.GenericPackedKernel.pair_table`),
        halving the gather+XOR passes over the fold slab.
        """
        window = kernel.window
        fold: Optional[np.ndarray] = None
        j = 0
        while j < window:
            if fuse_pairs and j + 1 < window:
                pair = kernel.pair_table(j)
                gathered = pair[bins_t[_shift_index(idx, j)],
                                bins_t[_shift_index(idx, j + 1)]]
                j += 2
            else:
                gathered = kernel.tables[j][bins_t[_shift_index(idx, j)]]
                j += 1
            if fold is None:
                fold = gathered
            else:
                fold ^= gathered
            # drop the temp before the next gather: keeping it alive
            # holds a third fold-sized slab during the gather, pushing
            # the allocator into fresh zero-filled mmaps every pass
            del gathered
        if kernel.id_words is not None:
            fold ^= kernel.id_words[idx, None, :]
        return fold

    def bundle(self, fold: np.ndarray) -> np.ndarray:
        """Per-bit-position counts across the block's windows."""
        from repro.core.kernels import bit_slice_counts

        return bit_slice_counts(fold)

    def popcount_search(self, query_words: np.ndarray,
                        class_words: np.ndarray) -> np.ndarray:
        from repro.core.kernels import packed_hamming

        q = np.atleast_2d(query_words)
        return packed_hamming(q[:, None, :], class_words[None, :, :])

    # -- fused plan execution ----------------------------------------------

    def encode(self, plan, sources: EncodeSources,
               bins: np.ndarray) -> np.ndarray:
        kernel = sources.kernel
        if kernel is None:
            raise ValueError(f"{self.name} backend needs a packed kernel")
        window = kernel.window
        n_win = bins.shape[1] - window + 1
        k = len(_window_indices(plan, n_win))
        # window-major layout: bundling reduces over the leading axis and
        # every gather/XOR below runs on contiguous (N, W) slabs
        bins_t = np.ascontiguousarray(bins.T)
        ones: Optional[np.ndarray] = None
        for idx, _ in _window_blocks(plan, n_win):
            fold = self.xor_fold(kernel, bins_t, idx,
                                 fuse_pairs=plan.fuse_pairs)
            counts = self.bundle(fold)
            ones = counts if ones is None else ones.__iadd__(counts)
        # bipolar read-out: each of the k bundled windows contributed
        # +1 (bit clear) or -1 (bit set) per dimension
        return (k - 2 * ones[:, :plan.ctx.dim]).astype(np.int32)


class BackendRegistry:
    """Thread-safe name -> :class:`Backend` catalogue.

    The IR twin of the :mod:`repro.platforms` device registry: backends
    register once (typically at import), ``engine="auto"`` resolves to
    the highest-priority *available* entry, and explicit engine names
    resolve through :data:`ENGINE_TO_BACKEND`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._backends: Dict[str, Backend] = {}

    def register(self, backend: Backend, replace: bool = False) -> Backend:
        with self._lock:
            if backend.name in self._backends and not replace:
                raise ValueError(
                    f"backend {backend.name!r} already registered "
                    "(pass replace=True to override)"
                )
            self._backends[backend.name] = backend
        return backend

    def unregister(self, name: str) -> None:
        with self._lock:
            self._backends.pop(name, None)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._backends)

    def get(self, name: str) -> Backend:
        """Resolve a backend by registry name or legacy engine name."""
        with self._lock:
            backend = self._backends.get(name)
            if backend is None:
                backend = self._backends.get(ENGINE_TO_BACKEND.get(name, ""))
        if backend is None:
            raise KeyError(
                f"no backend {name!r}; registered: {self.names()}"
            )
        return backend

    def available(self) -> List[Backend]:
        """All usable backends, best (highest priority) first."""
        with self._lock:
            backends = list(self._backends.values())
        usable = [b for b in backends if b.available()]
        return sorted(usable, key=lambda b: -b.priority)

    def best(self) -> Backend:
        """What ``engine="auto"`` resolves to."""
        usable = self.available()
        if not usable:
            raise RuntimeError("no encode backend available")
        return usable[0]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return (name in self._backends
                    or ENGINE_TO_BACKEND.get(name, "") in self._backends)


#: the process-wide registry the planner resolves through
BACKENDS = BackendRegistry()
BACKENDS.register(NumpyReferenceBackend())
BACKENDS.register(PackedUint64Backend())


def autodetect_optional_backends(registry: Optional[BackendRegistry] = None
                                 ) -> List[str]:
    """Probe for optional JIT backends; returns the names registered.

    Called once at :mod:`repro.core.ir` import.  Safe to call again
    (already-registered names are skipped); environments without the
    optional dependencies simply register nothing.
    """
    registry = registry or BACKENDS
    added = []
    try:
        from repro.core.ir.numba_backend import NumbaJitBackend
    except ImportError:
        return added
    if NumbaJitBackend.available() and "numba-jit" not in registry:
        registry.register(NumbaJitBackend())
        added.append("numba-jit")
    return added
