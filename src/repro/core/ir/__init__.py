"""Primitive IR + kernel planner for the bit-domain encode pipeline.

The paper's efficiency story decomposes into a handful of bit-domain
primitives (permute, XOR-fold, bundle, popcount-search).  This package
makes them explicit IR nodes with shape/op-cost metadata
(:mod:`~repro.core.ir.primitives`), executes them through pluggable
backends in a :class:`~repro.core.ir.backends.BackendRegistry`
(``numpy-reference``, ``packed-uint64``, optional ``numba-jit``), and
plans fusion/chunking/approximation per shape-class in a cached
:class:`~repro.core.ir.planner.KernelPlanner`.

Typical use (encoders do this internally; callers keep passing
``engine=``)::

    from repro.core.ir import plan_encode

    plan = plan_encode(n_features=28, window=3, dim=4096, num_levels=64)
    print(plan.describe())          # every planner decision, per-primitive ops
    counts = plan.execute(sources, bins)
"""

from repro.core.ir.primitives import (
    ENCODE_PIPELINE,
    Bundle,
    Pack,
    Permute,
    PopcountSearch,
    Primitive,
    ShapeCtx,
    Unpack,
    XorFold,
)
from repro.core.ir.backends import (
    BACKENDS,
    BACKEND_TO_ENGINE,
    ENGINE_TO_BACKEND,
    Backend,
    BackendRegistry,
    EncodeSources,
    NumpyReferenceBackend,
    PackedUint64Backend,
    autodetect_optional_backends,
)
from repro.core.ir.planner import (
    PLANNER,
    KernelPlan,
    KernelPlanner,
    PlanRequest,
    plan_encode,
    select_windows,
)

#: optional JIT backends found in this environment (e.g. ``numba-jit``)
OPTIONAL_BACKENDS = autodetect_optional_backends()

__all__ = [
    "ENCODE_PIPELINE",
    "Primitive",
    "ShapeCtx",
    "Pack",
    "Unpack",
    "Permute",
    "XorFold",
    "Bundle",
    "PopcountSearch",
    "Backend",
    "BackendRegistry",
    "BACKENDS",
    "EncodeSources",
    "NumpyReferenceBackend",
    "PackedUint64Backend",
    "ENGINE_TO_BACKEND",
    "BACKEND_TO_ENGINE",
    "autodetect_optional_backends",
    "OPTIONAL_BACKENDS",
    "KernelPlan",
    "KernelPlanner",
    "PlanRequest",
    "PLANNER",
    "plan_encode",
    "select_windows",
]
