"""Optional numba-JIT backend: the fully fused scalar rendering.

Where the numpy backends execute the IR as a short sequence of
slab-sized array passes, the JIT backend compiles the *entire* encode
pipeline -- gather, permuted XOR fold, id binding, per-bit bundling --
into one nopython loop nest with ``prange`` over samples: no
intermediate slabs at all, which is exactly the fusion a SIMD/GPU
backend would hand-write.

This module imports cleanly only when numba is installed; the registry
probe (:func:`repro.core.ir.backends.autodetect_optional_backends`)
swallows the ImportError otherwise, so numba stays a soft dependency.
The backend is bit-identical to the numpy backends (pinned by the
``tests/core/test_ir.py`` equivalence suite, which the optional-deps
CI job runs against a real numba install).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import numba  # noqa: F401  -- the availability probe; ImportError gates us
from numba import njit, prange

from repro.core.ir.backends import Backend, EncodeSources, _window_indices

__all__ = ["NumbaJitBackend"]

_jit_encode = None  # compiled lazily on first use


def _build_jit():
    """Compile the fused encode loop once per process."""
    global _jit_encode
    if _jit_encode is not None:
        return _jit_encode

    @njit(parallel=True, nogil=True)
    def encode(tables, id_words, has_ids, bins_i, idx, dim):
        n_samples = bins_i.shape[0]
        window = tables.shape[0]
        n_words = tables.shape[2]
        k = idx.shape[0]
        one = np.uint64(1)
        out = np.empty((n_samples, dim), dtype=np.int32)
        for s in prange(n_samples):
            ones = np.zeros(n_words * 64, dtype=np.int32)
            for t in range(k):
                i = idx[t]
                for w in range(n_words):
                    v = tables[0, bins_i[s, i], w]
                    for j in range(1, window):
                        v ^= tables[j, bins_i[s, i + j], w]
                    if has_ids:
                        v ^= id_words[i, w]
                    base = w * 64
                    for b in range(64):
                        ones[base + b] += np.int32((v >> np.uint64(b)) & one)
            for d in range(dim):
                out[s, d] = k - 2 * ones[d]
        return out

    _jit_encode = encode
    return encode


class NumbaJitBackend(Backend):
    """Fused nopython loops over the packed tables (optional)."""

    name = "numba-jit"
    #: below packed-uint64: vectorized word-wise numpy usually wins on
    #: large batches, so ``auto`` keeps resolving to the packed backend
    #: even when numba is installed -- select this one explicitly with
    #: ``engine="numba"``.
    priority = 10

    @classmethod
    def available(cls) -> bool:
        return True  # the module import already proved numba is present

    def encode(self, plan, sources: EncodeSources,
               bins: np.ndarray) -> np.ndarray:
        kernel = sources.kernel
        if kernel is None:
            raise ValueError(f"{self.name} backend needs a packed kernel")
        n_win = bins.shape[1] - kernel.window + 1
        idx = np.ascontiguousarray(_window_indices(plan, n_win))
        bins_i = np.ascontiguousarray(bins, dtype=np.int64)
        id_words = kernel.id_words
        has_ids = id_words is not None
        if not has_ids:
            id_words = np.zeros((1, kernel.words), dtype=np.uint64)
        fn = _build_jit()
        return fn(np.ascontiguousarray(kernel.tables),
                  np.ascontiguousarray(id_words),
                  has_ids, bins_i, idx, plan.ctx.dim)
