"""The primitive IR of the bit-domain encoding/search pipeline.

The paper's entire efficiency story (Section 3.3) is built from a
handful of bit-domain primitives -- permute, XOR-fold, bundle,
popcount-search -- but until this module they were hardwired into one
monolithic kernel.  Here each primitive is an explicit, inspectable IR
node carrying *shape* and *logical-cost* metadata, so a planner can
reason about fusion, chunking and backend choice without executing
anything, and traces can attribute work per primitive instead of per
monolith.

The nodes (one encode/search pipeline, in order)::

    Pack ─ Permute ─ XorFold ─ Bundle ─ Unpack        (encoding)
                                └─ PopcountSearch     (inference)

- :class:`Pack` / :class:`Unpack` -- the {0,1}/bipolar <-> ``uint64``
  word boundaries.  Fit-time (levels/ids) and query-time (encodings)
  crossings are both instances of these.
- :class:`Permute` -- the ``rho^j`` rotation of level hypervectors by
  in-window offset.  The planner *fuses* this into table build time
  (``rho^j(levels)`` copies per offset), which is why its runtime cost
  collapses to zero in fused plans.
- :class:`XorFold` -- gather the (permuted) level words of a window's
  features and fold them with XOR; binding the per-window id is one
  more XOR in the same loop.
- :class:`Bundle` -- accumulate per-bit-position counts across windows
  (the carry-save adder tree of ``bit_slice_counts``).
- :class:`PopcountSearch` -- Hamming distance of a packed query to
  every packed class vector (XOR + popcount), the associative-search
  primitive of the inference stage.

Costs are reported in the repo's *logical* currencies (per-dimension
XORs/adds, bytes moved -- the same units as
:class:`~repro.core.encoders.base.OpProfile` and the device/energy
models) plus the physical ``word_ops`` a packed backend executes.  A
:class:`ShapeCtx` carries the shape parameters every cost formula
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

_WORD = 64

__all__ = [
    "ShapeCtx",
    "Primitive",
    "Pack",
    "Unpack",
    "Permute",
    "XorFold",
    "Bundle",
    "PopcountSearch",
    "ENCODE_PIPELINE",
]


@dataclass(frozen=True)
class ShapeCtx:
    """Shape parameters the primitive cost formulas close over.

    ``folds`` is the number of windows actually folded and bundled --
    equal to ``n_windows`` for exact encoding, smaller under multifold
    approximation (SHEARer-style sampled window folding).
    """

    n_features: int
    window: int
    dim: int
    use_ids: bool = True
    folds: int = -1  # -1 -> all windows (exact)
    n_classes: int = 0

    @property
    def n_windows(self) -> int:
        return self.n_features - self.window + 1

    @property
    def active_folds(self) -> int:
        return self.n_windows if self.folds < 0 else min(self.folds, self.n_windows)

    @property
    def words(self) -> int:
        return (self.dim + _WORD - 1) // _WORD


class Primitive:
    """Base IR node: a named op with shape/cost metadata.

    Subclasses implement :meth:`op_cost` (logical + word-level counts
    for one sample) and :meth:`out_shape` (symbolic result shape).
    """

    #: registry/describe() name, also the span label primitives carry
    name: str = "primitive"

    def op_cost(self, ctx: ShapeCtx) -> Dict[str, int]:  # pragma: no cover
        raise NotImplementedError

    def out_shape(self, ctx: ShapeCtx) -> Tuple:  # pragma: no cover
        raise NotImplementedError

    def logical_ops(self, ctx: ShapeCtx) -> int:
        """Total logical ops (the obs/energy currency) for one sample."""
        cost = self.op_cost(ctx)
        return cost.get("xor_ops", 0) + cost.get("add_ops", 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class Pack(Primitive):
    """{0,1}/bipolar array -> packed uint64 words (64 dims per word)."""

    name = "pack"
    rows: int = 1  # how many hypervector rows cross the boundary

    def op_cost(self, ctx: ShapeCtx) -> Dict[str, int]:
        return {
            "mem_bytes": self.rows * (ctx.dim + ctx.words * 8),
            "word_ops": self.rows * ctx.words,
        }

    def out_shape(self, ctx: ShapeCtx) -> Tuple:
        return (self.rows, ctx.words)


@dataclass(frozen=True, repr=False)
class Unpack(Primitive):
    """Packed words -> per-dimension values (the bundle read-out)."""

    name = "unpack"
    rows: int = 1

    def op_cost(self, ctx: ShapeCtx) -> Dict[str, int]:
        return {
            "mem_bytes": self.rows * (ctx.words * 8 + ctx.dim),
            "word_ops": self.rows * ctx.words,
        }

    def out_shape(self, ctx: ShapeCtx) -> Tuple:
        return (self.rows, ctx.dim)


@dataclass(frozen=True, repr=False)
class Permute(Primitive):
    """``rho^j``: rotate level hypervectors by in-window offset ``j``.

    ``fused=True`` (what the planner picks for table-backed backends)
    moves the rotation to fit time -- ``window`` pre-permuted copies of
    the level table -- so the runtime cost is zero and the price is
    table memory.  Unfused (the reference engine's ``np.roll`` per
    chunk) pays the full per-sample byte traffic instead.
    """

    name = "permute"
    fused: bool = True

    def op_cost(self, ctx: ShapeCtx) -> Dict[str, int]:
        if self.fused:
            return {"mem_bytes": 0, "word_ops": 0}
        # every non-zero offset re-copies the gathered levels once
        moved = ctx.active_folds * (ctx.window - 1) * ctx.dim
        return {"mem_bytes": moved, "word_ops": 0}

    def out_shape(self, ctx: ShapeCtx) -> Tuple:
        return (ctx.window, -1, ctx.words)


@dataclass(frozen=True, repr=False)
class XorFold(Primitive):
    """Gather + XOR-fold the window's (permuted) levels, bind the id.

    The planner fuses the gather and the fold into one loop over
    in-window offsets (the ``gather+XOR`` inner loop); with ids bound
    there is one extra XOR per window.
    """

    name = "xor_fold"

    def op_cost(self, ctx: ShapeCtx) -> Dict[str, int]:
        folds_per_window = (ctx.window - 1) + (1 if ctx.use_ids else 0)
        k = ctx.active_folds
        return {
            "xor_ops": k * folds_per_window * ctx.dim,
            "word_ops": k * folds_per_window * ctx.words,
            # one gathered row per offset plus the running fold
            "mem_bytes": k * (ctx.window + 1) * ctx.words * 8,
        }

    def out_shape(self, ctx: ShapeCtx) -> Tuple:
        return (ctx.active_folds, -1, ctx.words)


@dataclass(frozen=True, repr=False)
class Bundle(Primitive):
    """Per-bit-position counts across windows (carry-save adder tree)."""

    name = "bundle"

    def op_cost(self, ctx: ShapeCtx) -> Dict[str, int]:
        k = ctx.active_folds
        return {
            "add_ops": k * ctx.dim,
            # the CSA tree touches each fold word ~5/3 times
            "word_ops": (5 * k * ctx.words) // 3,
            "mem_bytes": k * ctx.words * 8 + 4 * ctx.dim,
        }

    def out_shape(self, ctx: ShapeCtx) -> Tuple:
        return (-1, ctx.dim)


@dataclass(frozen=True, repr=False)
class PopcountSearch(Primitive):
    """Hamming distance of one packed query to every class vector."""

    name = "popcount_search"

    def op_cost(self, ctx: ShapeCtx) -> Dict[str, int]:
        c = max(1, ctx.n_classes)
        return {
            "xor_ops": c * ctx.dim,
            "add_ops": c * ctx.dim,
            "word_ops": 2 * c * ctx.words,
            "mem_bytes": (c + 1) * ctx.words * 8,
        }

    def out_shape(self, ctx: ShapeCtx) -> Tuple:
        return (-1, ctx.n_classes)


#: the canonical encode pipeline, in execution order
ENCODE_PIPELINE: Tuple[Primitive, ...] = (
    Permute(fused=True),
    XorFold(),
    Bundle(),
    Unpack(),
)
