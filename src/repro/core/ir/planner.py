"""The kernel planner: shapes in, fused executable plans out.

Given the static shape of an encode problem -- ``(n_features, window,
dim, num_levels)`` plus the engine request and an optional multifold
approximation level -- the :class:`KernelPlanner` decides

- **backend**: which registered :class:`~repro.core.ir.backends.Backend`
  executes (``auto`` resolves to the highest-priority available one);
- **fusion**: the permute is always fused into fit-time pre-permuted
  tables on table-backed backends, and when the fused pair tables
  ``rho^j(levels) ^ rho^{j+1}(levels)`` fit the cache budget, adjacent
  in-window offsets fuse too -- halving the gather+XOR passes over the
  fold slab;
- **chunking**: how many samples per encode chunk and how many windows
  per fold block, chosen so the fold working set stays inside the
  slab budget instead of collapsing the sample chunk at large ``dim``
  (the PR 2 behaviour this planner replaces);
- **approximation**: SHEARer-style multifold sampling -- fold only
  ``approx_folds`` evenly spaced windows, with the exact-vs-approx
  error bound surfaced on the plan.

Plans are immutable, cached per shape-class (the frozen
:class:`PlanRequest` is the cache key), cheap to hash, and carry
per-primitive op counts so traces can attribute work per primitive
(:meth:`KernelPlan.primitive_ops`) and ``encode_batch`` can size its
chunk fan-out from :attr:`KernelPlan.chunk_samples` instead of each
encoder's hand-tuned heuristic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.ir.backends import (
    BACKENDS,
    BACKEND_TO_ENGINE,
    ENGINE_TO_BACKEND,
    BackendRegistry,
    EncodeSources,
)
from repro.core.ir.primitives import (
    Bundle,
    Permute,
    PopcountSearch,
    Primitive,
    ShapeCtx,
    Unpack,
    XorFold,
)

__all__ = [
    "PlanRequest",
    "KernelPlan",
    "KernelPlanner",
    "PLANNER",
    "plan_encode",
    "select_windows",
]

#: total bytes of encode intermediates per chunk (matches the historic
#: ``Encoder`` budget, now owned by the planner)
CHUNK_BUDGET = 64 * 1024 * 1024
#: fold slab budget once window blocking engages (fold + gather temp)
FOLD_SLAB_BUDGET = 32 * 1024 * 1024
#: below this many samples per chunk the planner starts window blocking
#: instead of shrinking the chunk further (gathers degrade on tiny rows)
MIN_CHUNK_SAMPLES = 64
#: never fold fewer windows than this per block (the int32 bundle
#: accumulate is amortized across the block)
MIN_WINDOW_BLOCK = 128
#: fused pair tables must fit this budget (L^2 x words x 8 per pair)
PAIR_TABLE_BUDGET = 16 * 1024 * 1024
#: below this many words per vector, pair fusion loses: the unfused
#: tables are L1-resident and the saved XOR slab pass is cheaper than
#: the pair table's random-access working set (measured on the bench
#: grid: 0.73x at D=1024, 1.6x+ at D>=4096)
PAIR_FUSION_MIN_WORDS = 32


def select_windows(n_windows: int, folds: Optional[int]) -> Optional[np.ndarray]:
    """Evenly spaced window subset for multifold approximation.

    Returns ``None`` for the exact case (``folds`` is None or covers
    every window).  The selection is deterministic -- ``floor(i * n/k)``
    -- strictly increasing, and equals ``arange(n)`` when ``k == n``,
    which is what makes ``approx_folds=n_windows`` bit-identical to
    exact encoding.
    """
    if folds is None or folds >= n_windows:
        return None
    if folds < 1:
        raise ValueError(f"approx_folds must be >= 1, got {folds}")
    return np.floor(
        np.arange(folds, dtype=np.float64) * (n_windows / folds)
    ).astype(np.int64)


@dataclass(frozen=True)
class PlanRequest:
    """The shape-class key one plan is built (and cached) for."""

    n_features: int
    window: int
    dim: int
    num_levels: int
    use_ids: bool = True
    engine: str = "auto"
    approx_folds: Optional[int] = None
    n_classes: int = 0

    @property
    def n_windows(self) -> int:
        return self.n_features - self.window + 1

    def validate(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.n_windows < 1:
            raise ValueError(
                f"window={self.window} longer than input "
                f"({self.n_features} features)"
            )
        if self.dim < 1:
            raise ValueError(f"dim must be positive, got {self.dim}")
        if self.approx_folds is not None and self.approx_folds < 1:
            raise ValueError(
                f"approx_folds must be >= 1, got {self.approx_folds}"
            )


@dataclass
class KernelPlan:
    """One fused, backend-bound execution recipe for a shape-class."""

    request: PlanRequest
    ctx: ShapeCtx
    backend_name: str
    steps: Tuple[Primitive, ...]
    window_sel: Optional[np.ndarray]
    window_block: int
    fuse_pairs: bool
    bytes_per_sample: int
    chunk_samples: int
    error_bound: Optional[Dict[str, float]] = None

    # -- execution -----------------------------------------------------------

    @property
    def backend(self):
        return BACKENDS.get(self.backend_name)

    @property
    def engine(self) -> str:
        """Legacy engine label for this plan's backend."""
        return BACKEND_TO_ENGINE.get(self.backend_name, self.backend_name)

    def execute(self, sources: EncodeSources, bins: np.ndarray) -> np.ndarray:
        """Run the encode pipeline on quantized bins ``(N, n_features)``."""
        return self.backend.encode(self, sources, bins)

    # -- introspection -------------------------------------------------------

    @property
    def folds(self) -> int:
        return self.ctx.active_folds

    def op_counts(self, n_samples: int = 1) -> Dict[str, Dict[str, int]]:
        """Per-primitive op metadata for ``n_samples`` inputs."""
        out: Dict[str, Dict[str, int]] = {}
        for step in self.steps:
            cost = {k: int(v) * n_samples for k, v in step.op_cost(self.ctx).items()}
            if step.name in out:
                for k, v in cost.items():
                    out[step.name][k] = out[step.name].get(k, 0) + v
            else:
                out[step.name] = cost
        return out

    def primitive_ops(self, n_samples: int = 1) -> Dict[str, int]:
        """Per-primitive *logical* op totals (the obs/span currency)."""
        return {
            step.name: step.logical_ops(self.ctx) * n_samples
            for step in self.steps
        }

    def describe(self) -> str:
        """Human-readable rendering of every planner decision."""
        ctx = self.ctx
        n_win = ctx.n_windows
        lines = [
            f"KernelPlan[{self.backend_name}]",
            f"  shape    : n_features={ctx.n_features} window={ctx.window} "
            f"dim={ctx.dim} ({ctx.words} words) levels={self.request.num_levels} "
            f"ids={'bound' if ctx.use_ids else 'identity'}",
            f"  windows  : {self.folds}/{n_win} folded"
            + ("" if self.window_sel is None
               else " (multifold approximation, evenly spaced)"),
            "  fusion   : permute "
            + ("fused into pre-permuted tables"
               if any(getattr(s, "fused", False) for s in self.steps)
               else "by rotation per window offset")
            + "; pair tables "
            + ("ON (adjacent offsets fused)" if self.fuse_pairs else "off"),
            f"  chunking : {self.chunk_samples} samples/chunk "
            f"({self.bytes_per_sample} B/sample), window block "
            + (f"{self.window_block}" if self.window_block < self.folds
               else f"{self.folds} (single block)"),
        ]
        if self.error_bound is not None:
            eb = self.error_bound
            lines.append(
                f"  approx   : |count error| <= {eb['max_abs_count_error']} "
                f"per dim ({eb['fold_fraction']:.0%} of windows folded)"
            )
        lines.append("  primitive ops (per sample):")
        counts = self.op_counts(1)
        for step in self.steps:
            cost = counts.get(step.name, {})
            parts = ", ".join(
                f"{k}={v}" for k, v in sorted(cost.items()) if v
            ) or "free (fused at fit)"
            lines.append(f"    {step.name:16s} {parts}")
        return "\n".join(lines)


class KernelPlanner:
    """Resolve (shape, engine) requests into cached executable plans."""

    def __init__(self, registry: Optional[BackendRegistry] = None):
        self.registry = registry or BACKENDS
        self._cache: Dict[PlanRequest, KernelPlan] = {}
        self._lock = threading.Lock()
        self.plans_built = 0

    # -- backend resolution --------------------------------------------------

    def resolve_backend(self, engine: str) -> str:
        """Map an ``engine=`` value to a registered backend name."""
        if engine in (None, "auto"):
            return self.registry.best().name
        name = ENGINE_TO_BACKEND.get(engine, engine)
        return self.registry.get(name).name

    # -- planning ------------------------------------------------------------

    def plan(self, request: PlanRequest) -> KernelPlan:
        """The cached plan for ``request`` (built on first miss)."""
        cached = self._cache.get(request)
        if cached is not None:
            return cached
        request.validate()
        plan = self._build(request)
        with self._lock:
            self._cache.setdefault(request, plan)
            self.plans_built += 1
        return self._cache[request]

    def cache_info(self) -> Dict[str, int]:
        with self._lock:
            return {"plans": len(self._cache), "built": self.plans_built}

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    # -- the decision procedure ----------------------------------------------

    def _build(self, request: PlanRequest) -> KernelPlan:
        backend_name = self.resolve_backend(request.engine)
        n_win = request.n_windows
        sel = select_windows(n_win, request.approx_folds)
        folds = n_win if sel is None else len(sel)
        ctx = ShapeCtx(
            n_features=request.n_features,
            window=request.window,
            dim=request.dim,
            use_ids=request.use_ids,
            folds=-1 if sel is None else folds,
            n_classes=request.n_classes,
        )
        words = ctx.words

        if backend_name == "numpy-reference":
            fuse_pairs = False
            window_block = folds
            # level gather, rolled copy, running product and the bound
            # result all materialize at (folds, dim) int8 scale
            bytes_per_sample = folds * request.dim * (request.window + 1)
            permute = Permute(fused=False)
        elif backend_name == "numba-jit":
            fuse_pairs = False  # the JIT loop is already fully fused
            window_block = folds
            bytes_per_sample = 8 * request.dim  # ones + out rows only
            permute = Permute(fused=True)
        else:  # packed-uint64 and packed-compatible plug-ins
            permute = Permute(fused=True)
            pair_bytes = (request.num_levels ** 2) * words * 8
            n_pairs = request.window // 2
            fuse_pairs = (
                request.window >= 2
                and words >= PAIR_FUSION_MIN_WORDS
                and n_pairs * pair_bytes <= PAIR_TABLE_BUDGET
            )
            # fold slab + gather temp per (sample, window), plus the
            # int32 bundle/out rows
            per_window = 2 * words * 8
            row_bytes = 8 * request.dim
            window_block = folds
            chunk = (CHUNK_BUDGET - 1) // max(1, folds * per_window + row_bytes)
            if chunk < MIN_CHUNK_SAMPLES and folds > MIN_WINDOW_BLOCK:
                # large-D regime: block the window axis so the sample
                # chunk stays gather-friendly while the fold slab fits
                # the slab budget
                window_block = max(
                    MIN_WINDOW_BLOCK,
                    FOLD_SLAB_BUDGET // (MIN_CHUNK_SAMPLES * per_window),
                )
                window_block = min(window_block, folds)
            bytes_per_sample = window_block * per_window + row_bytes

        chunk_samples = max(1, CHUNK_BUDGET // max(1, bytes_per_sample))

        error_bound = None
        if sel is not None:
            skipped = n_win - folds
            error_bound = {
                "skipped_windows": skipped,
                "max_abs_count_error": skipped,
                "fold_fraction": folds / n_win,
            }

        steps = (permute, XorFold(), Bundle(), Unpack())
        if request.n_classes:
            steps = steps + (PopcountSearch(),)

        return KernelPlan(
            request=request,
            ctx=ctx,
            backend_name=backend_name,
            steps=steps,
            window_sel=sel,
            window_block=window_block,
            fuse_pairs=fuse_pairs,
            bytes_per_sample=int(bytes_per_sample),
            chunk_samples=int(chunk_samples),
            error_bound=error_bound,
        )


#: the process-wide planner every encoder resolves through
PLANNER = KernelPlanner()


def plan_encode(
    n_features: int,
    window: int,
    dim: int,
    num_levels: int,
    use_ids: bool = True,
    engine: str = "auto",
    approx_folds: Optional[int] = None,
    n_classes: int = 0,
    planner: Optional[KernelPlanner] = None,
) -> KernelPlan:
    """Convenience front door: build/fetch the plan for one shape."""
    request = PlanRequest(
        n_features=n_features, window=window, dim=dim,
        num_levels=num_levels, use_ids=use_ids, engine=engine,
        approx_folds=approx_folds, n_classes=n_classes,
    )
    return (planner or PLANNER).plan(request)
