"""Similarity metrics between a query encoding and class hypervectors.

The paper scores classes with cosine similarity
``delta_i = (H . C_i) / (||H|| ||C_i||)`` and applies two hardware
simplifications (Section 4.2.1):

- ``||H||`` is dropped -- it is shared by every class and does not change
  the arg-max;
- the square root of ``||C_i||`` is removed by squaring the dot product:
  ``delta_i = (H . C_i)^2 / ||C_i||^2``, computed with an approximate
  log-based divider (Mitchell).  Squaring loses the sign of the dot
  product, so the hardware metric keeps the sign explicitly (a negative
  dot means *dis*similar and must not outrank a positive one).

:func:`score` is the single entry point; ``metric`` selects among
``"dot"``, ``"cosine"`` and ``"hardware"`` (squared, sign-preserving).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

METRICS = ("dot", "cosine", "hardware")


def dot_scores(queries: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Raw dot products, shape (N, n_classes) for (N, D) x (n_classes, D)."""
    q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    c = np.asarray(classes, dtype=np.float64)
    return q @ c.T


def cosine_scores(queries: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Exact cosine similarity scores (zero-norm classes score 0)."""
    scores = dot_scores(queries, classes)
    qn = np.linalg.norm(np.atleast_2d(queries).astype(np.float64), axis=1)
    cn = np.linalg.norm(np.asarray(classes, dtype=np.float64), axis=1)
    qn = np.where(qn == 0.0, 1.0, qn)
    cn = np.where(cn == 0.0, np.inf, cn)
    return scores / qn[:, None] / cn[None, :]


def hardware_scores(
    queries: np.ndarray,
    classes: np.ndarray,
    norm2: Optional[np.ndarray] = None,
    divider=None,
) -> np.ndarray:
    """The ASIC's metric: ``sign(dot) * dot^2 / ||C||^2``.

    Parameters
    ----------
    norm2:
        Pre-computed squared L2 norms of the classes (the ``norm2``
        memory of Fig. 4).  Recomputed when omitted.  Passing *stale*
        norms (computed at full dimensionality while the dot products
        use fewer dimensions) reproduces the "Constant" curves of
        Fig. 5.
    divider:
        Optional callable ``(numerator, denominator) -> quotient`` used
        in place of exact division, e.g. the Mitchell approximate
        divider of :mod:`repro.hardware.mitchell`.
    """
    scores = dot_scores(queries, classes)
    if norm2 is None:
        c = np.asarray(classes, dtype=np.float64)
        norm2 = (c * c).sum(axis=1)
    norm2 = np.asarray(norm2, dtype=np.float64)
    safe = np.where(norm2 <= 0.0, np.inf, norm2)
    num = scores * scores
    if divider is None:
        ratio = num / safe[None, :]
    else:
        ratio = divider(num, safe[None, :])
    return np.sign(scores) * ratio


def score(
    queries: np.ndarray,
    classes: np.ndarray,
    metric: str = "cosine",
    norm2: Optional[np.ndarray] = None,
    divider=None,
) -> np.ndarray:
    """Score queries against class hypervectors with the chosen metric."""
    if metric == "dot":
        return dot_scores(queries, classes)
    if metric == "cosine":
        return cosine_scores(queries, classes)
    if metric == "hardware":
        return hardware_scores(queries, classes, norm2=norm2, divider=divider)
    raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")
