"""Adaptive (similarity-weighted) retraining -- an extension.

The paper's retraining (Fig. 1c) moves a full encoded hypervector
between classes on every misprediction.  The HDC literature the paper
builds on (e.g. the in-sensor adaptive learning of Moin et al. [7] and
OnlineHD-style training) refines this: the update is *scaled by how
wrong the model was*, so confident mistakes move the model a lot and
near-ties barely disturb it.  This module provides that variant as
:class:`AdaptiveHDClassifier`, a drop-in replacement for
:class:`~repro.core.classifier.HDClassifier`.

Update rule on a sample with encoding ``h``, true class ``t`` and
predicted class ``p != t`` (cosine scores ``s``)::

    C_t += lr * (1 - s_t) * h
    C_p -= lr * (1 - s_p) * h

and optionally (``update_on_correct=True``) a small reinforcement on
correct predictions, which is what lets the model keep adapting on a
drifting stream.  This is an *extension* beyond the paper; the
benchmarks use the paper's rule unless stated.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.config import UNSET, ComputeConfig
from repro.obs import trace as obs_trace


class AdaptiveHDClassifier(HDClassifier):
    """HDC classifier with similarity-weighted (OnlineHD-style) updates."""

    #: similarity-scaled update rule (see repro.core.training); because the
    #: updates are continuous-valued, ``train_engine="auto"`` resolves to the
    #: reference loop and ``"gram"`` must be requested explicitly (it agrees
    #: to float rounding, not bit-for-bit).
    train_rule = "adaptive"

    def __init__(
        self,
        encoder,
        epochs: int = 20,
        lr: float = 1.0,
        update_on_correct: bool = False,
        metric: str = "cosine",
        shuffle: bool = True,
        seed: int = 0,
        norm_block: int = 128,
        engine=UNSET,
        encode_jobs=UNSET,
        train_engine=UNSET,
        train_memory_budget=UNSET,
        config: "ComputeConfig" = None,
    ):
        super().__init__(
            encoder,
            epochs=epochs,
            metric=metric,
            shuffle=shuffle,
            seed=seed,
            norm_block=norm_block,
            engine=engine,
            encode_jobs=encode_jobs,
            train_engine=train_engine,
            train_memory_budget=train_memory_budget,
            config=config,
        )
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.update_on_correct = update_on_correct

    def _cosine_row(self, h: np.ndarray) -> np.ndarray:
        dots = self.model_ @ h
        norms = np.sqrt(self.norms_.full_norm2())
        hn = np.linalg.norm(h)
        safe = np.where(norms * hn == 0.0, np.inf, norms * hn)
        return dots / safe

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "AdaptiveHDClassifier":
        """Continue training on a new batch (streaming adaptation).

        Unseen labels must have appeared in the original ``fit`` call;
        the class memory layout is fixed once configured, as on the
        hardware.
        """
        self._check_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y)
        unknown = set(np.unique(y)) - set(self.classes_.tolist())
        if unknown:
            raise ValueError(f"labels not present at fit time: {sorted(unknown)}")
        # same encode path as fit()/predict(): the ComputeConfig engine
        # selection and thread fan-out apply to streaming batches too
        encodings = self.encoder.encode_batch(
            X, n_jobs=self.encode_jobs
        ).astype(np.float64)
        y_idx = np.searchsorted(self.classes_, y)
        n, dim = len(X), self.encoder.dim
        n_classes = len(self.classes_)
        with obs_trace.span(
            "train.partial_fit", engine="reference", rule=self.train_rule,
            samples=n, n_classes=n_classes, dim=dim, epochs=1,
        ) as sp:
            updates = 0
            for i in range(len(X)):
                h = encodings[i]
                sims = self._cosine_row(h)
                pred = int(np.argmax(sims))
                truth = int(y_idx[i])
                if pred != truth:
                    self.model_[truth] += self.lr * (1.0 - sims[truth]) * h
                    self.model_[pred] -= self.lr * (1.0 - sims[pred]) * h
                    self.norms_.update_class(truth, self.model_[truth])
                    self.norms_.update_class(pred, self.model_[pred])
                    updates += 1
            if sp.recording:
                sp.set(updates=updates)
                # scoring: one MAC per (sample, class, dim); each update
                # touches two class rows twice (scale + add, norms)
                score_macs = n * n_classes * dim
                sp.add_ops(
                    mul_ops=score_macs,
                    add_ops=score_macs + updates * 4 * dim,
                    mem_bytes=(n + n_classes) * dim * 8,
                )
        return self
