"""Device energy/latency models for conventional platforms.

The paper measures HDC and ML algorithms on a Raspberry Pi 3, a desktop
Core i7-8700 and a Jetson TX2 edge GPU (Hioki power meter).  None of
that hardware exists here, so each device is an operation-count model:
an algorithm reports how many arithmetic operations and memory bytes one
input (or one training run) needs, and the device model converts the
counts to energy and time using per-op/per-byte constants calibrated to
the paper's relative factors (Section 3.3, Figures 3/8/9/10).  Only
*ratios between platforms* are meaningful, exactly as in the paper.
"""

from repro.platforms.device import DeviceModel, Workload
from repro.platforms.desktop_cpu import DESKTOP_CPU
from repro.platforms.egpu import EDGE_GPU
from repro.platforms.opcount import (
    hdc_clustering_workload,
    hdc_inference_workload,
    hdc_training_workload,
    ml_inference_workload,
    ml_training_workload,
)
from repro.platforms.published import PUBLISHED_ACCELERATORS, PublishedAccelerator
from repro.platforms.raspberry_pi import RASPBERRY_PI

__all__ = [
    "DESKTOP_CPU",
    "DeviceModel",
    "EDGE_GPU",
    "PUBLISHED_ACCELERATORS",
    "PublishedAccelerator",
    "RASPBERRY_PI",
    "Workload",
    "hdc_clustering_workload",
    "hdc_inference_workload",
    "hdc_training_workload",
    "ml_inference_workload",
    "ml_training_workload",
]
