"""Published accelerator baselines for Fig. 9.

The paper compares GENERIC's inference energy against two prior HDC
accelerators using their published per-input numbers, technology-scaled
to 14 nm "according to [21]":

- **Datta et al.** (JETCAS'19 [10]): a programmable hyperdimensional
  processor architecture; trainable, but ~10% lower accuracy and
  higher energy (the paper reports GENERIC-LP at 15.7x less energy).
- **tiny-HD** (DATE'21 [8]): an inference-only HDC engine; the paper
  reports GENERIC-LP at 4.1x less energy, crediting tiny-HD's lack of
  training support for its smaller memories.

Their papers' raw numbers are not in the DAC text, so we anchor each
model the way the comparison is actually used: by its published *ratio*
to GENERIC-LP's per-input inference energy at the paper's operating
point, after node scaling.  The node-scaling step itself is exercised
through :mod:`repro.hardware.tech`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.hardware.tech import scale_energy


@dataclass(frozen=True)
class PublishedAccelerator:
    """Per-input inference energy of a published design."""

    name: str
    reference: str
    technology_nm: int
    energy_per_input_j: float  # at its native node
    supports_training: bool

    def energy_at_node(self, node_nm: int) -> float:
        """Technology-scaled per-input energy (the paper's comparison step)."""
        return scale_energy(self.energy_per_input_j, self.technology_nm, node_nm)


@lru_cache(maxsize=1)
def generic_lp_reference_energy_14nm() -> float:
    """GENERIC-LP per-input inference energy at the model's reference app.

    Computed from the calibrated simulator at the energy model's
    reference spec with the paper's low-power package engaged (quarter
    dimensions, 4-bit classes, 4% voltage over-scaling).  Used only to
    place the published baselines on an absolute scale; their position
    relative to GENERIC-LP is the paper's reported ratio.
    """
    from repro.hardware import controller
    from repro.hardware.counters import Counters
    from repro.hardware.energy import EnergyModel
    from repro.hardware.params import DEFAULT_PARAMS
    from repro.hardware.power_gating import plan_for_spec
    from repro.hardware.spec import AppSpec
    from repro.hardware.voltage import operating_point

    model = EnergyModel(DEFAULT_PARAMS)
    ref = AppSpec(**EnergyModel.REFERENCE_SPEC).validate(DEFAULT_PARAMS)
    lp = ref.with_dim(ref.dim // 4)
    counters = Counters()
    _, c = controller.inference(lp, DEFAULT_PARAMS)
    counters.add(c)
    report = model.report(
        counters,
        gating=plan_for_spec(lp, DEFAULT_PARAMS),
        vos=operating_point(0.04),
        bitwidth=4,
    )
    return report.total_j


def _from_ratio(ratio_at_14nm: float, native_nm: int) -> float:
    """Back out a native-node energy from the paper's 14 nm ratio."""
    energy_14 = ratio_at_14nm * generic_lp_reference_energy_14nm()
    return energy_14 / scale_energy(1.0, native_nm, 14)


def _build_registry():
    return {
        "datta-jetcas19": PublishedAccelerator(
            name="Datta et al. [10]",
            reference="IEEE JETCAS 9(3), 2019",
            technology_nm=28,
            energy_per_input_j=_from_ratio(15.7, 28),
            supports_training=True,
        ),
        "tiny-hd-date21": PublishedAccelerator(
            name="tiny-HD [8]",
            reference="DATE 2021",
            technology_nm=22,
            energy_per_input_j=_from_ratio(4.1, 22),
            supports_training=False,
        ),
    }


PUBLISHED_ACCELERATORS = _build_registry()
