"""Desktop CPU model (Intel Core i7-8700 @ 3.2 GHz, larger caches).

Roughly 10x the Pi's throughput with SIMD, modest bit-packing via AVX2
byte ops, cheaper per-byte traffic thanks to the big LLC -- but tens of
watts of package power, so energy per input stays far above the ASIC.
"""

from repro.platforms.device import DeviceModel

DESKTOP_CPU = DeviceModel(
    name="CPU",
    energy_per_flop=0.8e-9,
    bitop_packing=8.0,  # AVX2 byte-wise ops give partial packing
    energy_per_byte=1.0e-9,
    flops_per_second=5.0e10,
    byte_expansion=4.0,
    overhead_power=35.0,
    sync_latency_s=1.0e-6,
    notes="i7-8700; SIMD HDC implementation with larger cache",
)
