"""Workload builders: algorithm -> operation counts.

HDC workloads are derived from the encoder's
:class:`~repro.core.encoders.base.OpProfile` plus the similarity search;
ML workloads come from each baseline's ``compute_profile``.  The
returned :class:`~repro.platforms.device.Workload` objects feed the
device models of this package.
"""

from __future__ import annotations

from repro.baselines.common import ComputeProfile
from repro.core.encoders.base import Encoder
from repro.platforms.device import Workload


def hdc_inference_workload(encoder: Encoder, n_classes: int) -> Workload:
    """One-input HDC inference: encode + dot-product with every class."""
    profile = encoder.op_profile()
    search_flops = 2.0 * n_classes * encoder.dim + 2.0 * n_classes
    return Workload(
        flops=profile.mul_ops + profile.add_ops + search_flops,
        bitops=float(profile.xor_ops),
        bytes_moved=profile.mem_bytes + 2.0 * n_classes * encoder.dim,
        label=f"hdc-infer-{encoder.name}",
    )


def hdc_training_workload(
    encoder: Encoder,
    n_classes: int,
    n_train: int,
    epochs: int = 20,
    update_fraction: float = 0.25,
) -> Workload:
    """Full HDC training: encode once, then epochs of score + update.

    ``update_fraction`` approximates how many samples are mispredicted
    (hence updated) per retraining epoch.
    """
    encode = hdc_inference_workload(encoder, n_classes).scaled(n_train)
    per_epoch_flops = n_train * (2.0 * n_classes * encoder.dim) + (
        update_fraction * n_train * 4.0 * encoder.dim
    )
    per_epoch_bytes = n_train * 2.0 * n_classes * encoder.dim
    retrain = Workload(
        flops=per_epoch_flops * epochs,
        bytes_moved=per_epoch_bytes * epochs,
        # per-sample online updates serialize: one sync per sample per epoch
        sync_points=float(n_train * epochs),
    )
    total = encode + retrain
    return Workload(
        flops=total.flops,
        bitops=total.bitops,
        bytes_moved=total.bytes_moved,
        sync_points=total.sync_points,
        label=f"hdc-train-{encoder.name}",
    )


def hdc_clustering_workload(
    encoder: Encoder, k: int, n_samples: int, epochs: int = 10
) -> Workload:
    """HDC clustering: encode once + per-epoch similarity and accumulate."""
    encode = hdc_inference_workload(encoder, k).scaled(n_samples)
    per_epoch = Workload(
        flops=n_samples * (2.0 * k * encoder.dim + 2.0 * encoder.dim),
        bytes_moved=n_samples * 2.0 * k * encoder.dim,
    )
    total = encode + per_epoch.scaled(epochs)
    return Workload(
        flops=total.flops,
        bitops=total.bitops,
        bytes_moved=total.bytes_moved,
        label=f"hdc-cluster-{encoder.name}",
    )


def ml_inference_workload(profile: ComputeProfile, label: str = "ml") -> Workload:
    """One-input inference for a fitted baseline model."""
    return Workload(
        flops=profile.infer_flops,
        bytes_moved=profile.infer_bytes,
        label=f"{label}-infer",
    )


def ml_training_workload(profile: ComputeProfile, label: str = "ml") -> Workload:
    """Whole-training-run workload for a fitted baseline model."""
    return Workload(
        flops=profile.train_flops,
        bytes_moved=profile.train_bytes,
        sync_points=profile.train_syncs,
        label=f"{label}-train",
    )
