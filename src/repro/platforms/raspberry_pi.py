"""Raspberry Pi 3 model (ARM Cortex-A53, the paper's low-end edge device).

Calibration intent: small sustained FLOP rate, no bit-packing benefit
(the paper's Python/NEON path cannot exploit one-bit accumulation), high
per-byte cost because hypervectors overflow the small caches, and a few
watts of board overhead -- together these reproduce the paper's
observation that HDC on the Pi costs orders of magnitude more energy per
input than the eGPU (134x for GENERIC inference).
"""

from repro.platforms.device import DeviceModel

RASPBERRY_PI = DeviceModel(
    name="Raspberry Pi",
    energy_per_flop=2.0e-9,
    bitop_packing=1.0,  # no packed bit ops
    energy_per_byte=6.0e-9,
    flops_per_second=1.5e9,
    byte_expansion=8.0,
    overhead_power=2.5,
    sync_latency_s=4.0e-6,
    notes="Cortex-A53 @1.2GHz; caches too small for 4K-dim hypervectors",
)
