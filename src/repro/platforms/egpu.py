"""Edge GPU model (NVIDIA Jetson TX2, the paper's best HDC host).

The paper's eGPU implementation bit-packs hypervectors (32 XORs per
32-bit op) and reuses memory, which is what makes it the most efficient
conventional platform for HDC -- while still ~3 orders of magnitude
behind the GENERIC ASIC.
"""

from repro.platforms.device import DeviceModel

EDGE_GPU = DeviceModel(
    name="eGPU",
    energy_per_flop=0.10e-9,
    bitop_packing=32.0,  # packed binary ops
    energy_per_byte=0.25e-9,
    flops_per_second=1.0e11,
    byte_expansion=1.0,
    overhead_power=6.0,
    sync_latency_s=2.0e-5,
    notes="Jetson TX2; bit-packing and memory reuse per the paper",
)
