"""Operation-count device model.

A :class:`Workload` is a bag of operation counts; a :class:`DeviceModel`
converts it into energy (J) and latency (s).  The constants are not
datasheet values: they are calibrated so the *ratios* between devices
match the paper's measured factors (e.g. the eGPU improving GENERIC
inference energy by ~134x over the Raspberry Pi via bit-packing), which
is the only information Figures 3 and 8-10 convey.

Model
-----

``energy = ops/throughput-efficiency + bytes x energy_per_byte + idle``:

- ``energy_per_flop`` / ``energy_per_bitop``: cost of one 32-bit
  arithmetic op and one packed bit-level op.  Devices that cannot pack
  binary ops (CPUs running unvectorized HDC) pay close to a full flop
  per bit-op; the eGPU pays ~1/32 of a flop.
- ``flops_per_second``: sustained arithmetic rate used for latency.
- ``overhead_power``: board/system power drawn while the job runs,
  charged over the computed latency (this is what makes the Raspberry
  Pi expensive per input despite its small core power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Workload:
    """Operation counts for one unit of work (one input, or one run).

    ``sync_points`` counts *sequential* steps that cannot be batched
    (per-sample model updates, per-iteration assignment sweeps): each
    one pays the device's invocation/synchronization latency, which is
    what makes per-sample algorithms expensive on hosts with launch or
    interpreter overhead -- the effect behind the paper's measured
    K-means and eGPU-training numbers.
    """

    flops: float = 0.0  # 32-bit arithmetic operations
    bitops: float = 0.0  # bit-level ops (XOR/popcount style)
    bytes_moved: float = 0.0  # main-memory traffic
    sync_points: float = 0.0  # unbatchable sequential steps
    label: str = ""

    def __add__(self, other: "Workload") -> "Workload":
        return Workload(
            flops=self.flops + other.flops,
            bitops=self.bitops + other.bitops,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            sync_points=self.sync_points + other.sync_points,
            label=self.label or other.label,
        )

    def scaled(self, factor: float) -> "Workload":
        return Workload(
            flops=self.flops * factor,
            bitops=self.bitops * factor,
            bytes_moved=self.bytes_moved * factor,
            sync_points=self.sync_points * factor,
            label=self.label,
        )


@dataclass(frozen=True)
class DeviceModel:
    """Energy/latency model of one platform."""

    name: str
    energy_per_flop: float  # J
    bitop_packing: float  # how many bit-ops ride one flop slot (>= 1)
    energy_per_byte: float  # J
    flops_per_second: float
    overhead_power: float  # W, charged over the latency
    #: Workload.bytes_moved assumes bit-packed hypervectors; platforms
    #: that store one element per byte/word move proportionally more
    #: (the paper's eGPU advantage comes from bit-packing, Section 3.3).
    byte_expansion: float = 1.0
    #: latency of one unbatchable step (kernel launch on a GPU,
    #: interpreter/dispatch overhead on a CPU or the Pi)
    sync_latency_s: float = 0.0
    notes: str = ""

    def latency_s(self, w: Workload) -> float:
        effective_ops = w.flops + w.bitops / self.bitop_packing
        compute = effective_ops / self.flops_per_second
        # memory-bound floor: bytes at ~4 bytes per flop-slot
        memory = w.bytes_moved * self.byte_expansion / (4.0 * self.flops_per_second)
        return max(compute, memory) + w.sync_points * self.sync_latency_s

    def energy_j(self, w: Workload) -> float:
        effective_ops = w.flops + w.bitops / self.bitop_packing
        dynamic = (
            effective_ops * self.energy_per_flop
            + w.bytes_moved * self.byte_expansion * self.energy_per_byte
        )
        return dynamic + self.overhead_power * self.latency_s(w)

    def report(self, w: Workload) -> Dict[str, float]:
        return {
            "device": self.name,
            "energy_j": self.energy_j(w),
            "latency_s": self.latency_s(w),
        }
