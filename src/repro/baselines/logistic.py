"""Multinomial logistic regression (paper discards it for low accuracy,
but it appears as the LR bars of Fig. 3, so it is implemented)."""

from __future__ import annotations

import numpy as np

from repro.baselines.common import (
    AdamState,
    ComputeProfile,
    LabelCodec,
    Standardizer,
    minibatches,
    one_hot,
    softmax,
)


class LogisticRegression:
    """Softmax regression with L2 regularization, trained with Adam."""

    def __init__(
        self,
        lr: float = 1e-2,
        epochs: int = 50,
        batch_size: int = 64,
        l2: float = 1e-4,
        seed: int = 0,
    ):
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.codec = LabelCodec()
        self.scaler = Standardizer()
        self.W: np.ndarray | None = None
        self.b: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        rng = np.random.default_rng(self.seed)
        X = self.scaler.fit_transform(np.asarray(X, dtype=np.float64))
        y_idx = self.codec.fit(y)
        targets = one_hot(y_idx, self.codec.n_classes)
        self.W = np.zeros((X.shape[1], self.codec.n_classes))
        self.b = np.zeros(self.codec.n_classes)
        adam = AdamState([self.W, self.b], lr=self.lr)
        for _ in range(self.epochs):
            for batch in minibatches(len(X), self.batch_size, rng):
                probs = softmax(X[batch] @ self.W + self.b)
                delta = (probs - targets[batch]) / len(batch)
                grad_w = X[batch].T @ delta + self.l2 * self.W
                grad_b = delta.sum(axis=0)
                adam.step([self.W, self.b], [grad_w, grad_b])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.W is None:
            raise RuntimeError("LogisticRegression used before fit")
        logits = self.scaler.transform(X) @ self.W + self.b
        return self.codec.decode(np.argmax(logits, axis=1))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def compute_profile(self, n_train: int) -> ComputeProfile:
        if self.W is None:
            raise RuntimeError("compute_profile needs a fitted model")
        infer_flops = 2.0 * self.W.size
        train_flops = 3.0 * infer_flops * n_train * self.epochs
        return ComputeProfile(
            train_flops=train_flops,
            infer_flops=infer_flops,
            train_bytes=8.0 * self.W.size * self.epochs,
            infer_bytes=8.0 * self.W.size,
        )
