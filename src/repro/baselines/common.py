"""Shared utilities for the NumPy baseline models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ComputeProfile:
    """Operation counts used by the device energy models.

    ``train_flops`` covers the whole training run (all epochs); the
    ``*_bytes`` fields approximate main-memory traffic, which dominates
    on cache-starved edge CPUs (paper Section 3.3).  ``train_syncs``
    counts unbatchable sequential steps during training (per-node tree
    growth, per-sample updates) that pay the host's dispatch overhead.
    """

    train_flops: float
    infer_flops: float  # per input
    train_bytes: float
    infer_bytes: float  # per input
    train_syncs: float = 0.0

    def scaled(self, factor: float) -> "ComputeProfile":
        return ComputeProfile(
            train_flops=self.train_flops * factor,
            infer_flops=self.infer_flops * factor,
            train_bytes=self.train_bytes * factor,
            infer_bytes=self.infer_bytes * factor,
            train_syncs=self.train_syncs * factor,
        )


class Standardizer:
    """Zero-mean unit-variance feature scaling (fit on train only)."""

    def __init__(self):
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "Standardizer":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.std_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("Standardizer used before fit")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def standardize(
    X_train: np.ndarray, X_test: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Standardize train/test with statistics from the training set."""
    scaler = Standardizer().fit(X_train)
    return scaler.transform(X_train), scaler.transform(X_test)


def one_hot(y_idx: np.ndarray, n_classes: int) -> np.ndarray:
    out = np.zeros((len(y_idx), n_classes), dtype=np.float64)
    out[np.arange(len(y_idx)), y_idx] = 1.0
    return out


def softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def minibatches(
    n: int, batch_size: int, rng: np.random.Generator
) -> Iterator[np.ndarray]:
    """Yield shuffled index batches covering ``range(n)`` once."""
    order = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split; stratification is unnecessary for our balanced sets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    n = len(X)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class LabelCodec:
    """Map arbitrary labels to contiguous indices and back."""

    def __init__(self):
        self.classes_: Optional[np.ndarray] = None

    def fit(self, y: np.ndarray) -> np.ndarray:
        self.classes_, idx = np.unique(np.asarray(y), return_inverse=True)
        return idx

    def decode(self, idx: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelCodec used before fit")
        return self.classes_[idx]

    @property
    def n_classes(self) -> int:
        if self.classes_ is None:
            raise RuntimeError("LabelCodec used before fit")
        return len(self.classes_)


class AdamState:
    """Adam optimizer state for a list of parameter arrays."""

    def __init__(self, params, lr: float = 1e-3, beta1=0.9, beta2=0.999, eps=1e-8):
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]

    def step(self, params, grads) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        for i, (p, g) in enumerate(zip(params, grads)):
            self.m[i] = b1 * self.m[i] + (1 - b1) * g
            self.v[i] = b2 * self.v[i] + (1 - b2) * (g * g)
            m_hat = self.m[i] / (1 - b1**self.t)
            v_hat = self.v[i] / (1 - b2**self.t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
