"""K-means clustering (Lloyd's algorithm), the paper's clustering baseline."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import ComputeProfile


class KMeans:
    """Lloyd's algorithm with k-means++ initialization and restarts."""

    def __init__(
        self,
        k: int,
        max_iter: int = 100,
        n_init: int = 5,
        tol: float = 1e-6,
        seed: int = 0,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.max_iter = max_iter
        self.n_init = n_init
        self.tol = tol
        self.seed = seed
        self.centroids_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf
        self.iterations_: int = 0

    def _init_pp(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding."""
        n = len(X)
        centroids = np.empty((self.k, X.shape[1]))
        centroids[0] = X[rng.integers(n)]
        d2 = ((X - centroids[0]) ** 2).sum(axis=1)
        for i in range(1, self.k):
            probs = d2 / d2.sum() if d2.sum() > 0 else np.full(n, 1.0 / n)
            centroids[i] = X[rng.choice(n, p=probs)]
            d2 = np.minimum(d2, ((X - centroids[i]) ** 2).sum(axis=1))
        return centroids

    def _lloyd(self, X: np.ndarray, centroids: np.ndarray):
        labels = np.zeros(len(X), dtype=np.int64)
        inertia = np.inf
        iterations = 0
        for it in range(self.max_iter):
            d2 = (
                -2.0 * X @ centroids.T
                + (centroids * centroids).sum(axis=1)[None, :]
                + (X * X).sum(axis=1)[:, None]
            )
            labels = np.argmin(d2, axis=1)
            new_inertia = float(d2[np.arange(len(X)), labels].sum())
            new_centroids = centroids.copy()
            for c in range(self.k):
                members = labels == c
                if members.any():
                    new_centroids[c] = X[members].mean(axis=0)
            iterations = it + 1
            if inertia - new_inertia < self.tol * max(1.0, abs(inertia)):
                centroids = new_centroids
                inertia = new_inertia
                break
            centroids = new_centroids
            inertia = new_inertia
        return centroids, labels, inertia, iterations

    def fit(self, X: np.ndarray) -> "KMeans":
        X = np.asarray(X, dtype=np.float64)
        if len(X) < self.k:
            raise ValueError(f"need at least k={self.k} samples, got {len(X)}")
        rng = np.random.default_rng(self.seed)
        best = None
        total_iters = 0
        for _ in range(self.n_init):
            centroids = self._init_pp(X, rng)
            centroids, labels, inertia, iters = self._lloyd(X, centroids)
            total_iters += iters
            if best is None or inertia < best[2]:
                best = (centroids, labels, inertia)
        self.centroids_, self.labels_, self.inertia_ = best
        self.iterations_ = total_iters
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.centroids_ is None:
            raise RuntimeError("KMeans used before fit")
        X = np.asarray(X, dtype=np.float64)
        d2 = (
            -2.0 * X @ self.centroids_.T
            + (self.centroids_ * self.centroids_).sum(axis=1)[None, :]
        )
        return np.argmin(d2, axis=1)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_

    def compute_profile(self, n_samples: int, n_features: int) -> ComputeProfile:
        """Per-input clustering cost: distances to k centroids per iteration."""
        per_input_flops = 2.0 * self.k * n_features * max(1, self.iterations_)
        return ComputeProfile(
            train_flops=per_input_flops * n_samples,
            infer_flops=2.0 * self.k * n_features,
            train_bytes=8.0 * self.k * n_features * max(1, self.iterations_) * n_samples,
            infer_bytes=8.0 * self.k * n_features,
        )
