"""Random forest: bagged CART trees with sqrt-feature subsampling.

The paper's most *energy-efficient* classic-ML baseline (Fig. 3/8): a
forest of shallow trees is cheap at inference, which is exactly why the
paper uses RF as the efficiency yardstick for conventional devices.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.common import ComputeProfile, LabelCodec
from repro.baselines.decision_tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees with majority voting."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: Optional[int] = 12,
        min_samples_leaf: int = 1,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.codec = LabelCodec()
        self.trees_: List[DecisionTreeClassifier] = []
        self._n_features_fitted: int = 1

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y_idx = self.codec.fit(y)
        n_classes = self.codec.n_classes
        rng = np.random.default_rng(self.seed)
        self._n_features_fitted = X.shape[1]
        self.trees_ = []
        for t in range(self.n_estimators):
            boot = rng.integers(0, len(X), size=len(X))
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features="sqrt",
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[boot], y_idx[boot], n_classes)
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("RandomForestClassifier used before fit")
        X = np.asarray(X, dtype=np.float64)
        votes = np.zeros((len(X), self.codec.n_classes), dtype=np.int64)
        for tree in self.trees_:
            preds = tree.predict_idx(X)
            votes[np.arange(len(X)), preds] += 1
        return self.codec.decode(np.argmax(votes, axis=1))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def compute_profile(self, n_train: int) -> ComputeProfile:
        if not self.trees_:
            raise RuntimeError("compute_profile needs a fitted model")
        avg_depth = max(1.0, float(np.mean([t.depth_ for t in self.trees_])))
        total_nodes = sum(t.n_nodes_ for t in self.trees_)
        # inference: one comparison per level per tree -- trees are the
        # *cheapest* inference among the baselines (the paper's Fig. 3 RF).
        infer_flops = self.n_estimators * avg_depth
        # training: every tree level re-partitions all n samples, and each
        # node's split search sorts/scans ~sqrt(d) candidate features over
        # its samples -- trees x depth x n x sqrt(d) x log2(n) flops.
        sqrt_d = np.sqrt(max(1.0, self._n_features_fitted))
        train_flops = (
            self.n_estimators
            * avg_depth
            * n_train
            * sqrt_d
            * max(1.0, np.log2(max(2, n_train)))
        )
        node_bytes = 24.0  # feature id + threshold + child pointers
        return ComputeProfile(
            train_flops=float(train_flops),
            infer_flops=infer_flops,
            train_bytes=float(
                self.n_estimators * avg_depth * n_train * sqrt_d * 8.0
            ),
            infer_bytes=self.n_estimators * avg_depth * node_bytes,
            train_syncs=float(total_nodes),  # one host dispatch per node
        )
