"""From-scratch NumPy baselines the paper benchmarks against.

The paper compares HDC with scikit-learn models (MLP, SVM, random
forest, kNN, logistic regression), an AutoKeras-searched DNN, and
K-means for clustering.  This environment has no scikit-learn, so each
algorithm is implemented here with a small, well-tested NumPy core.
Every model exposes ``fit`` / ``predict`` / ``score`` plus a
``compute_profile`` used by the device models of
:mod:`repro.platforms` to estimate energy and latency (Fig. 3/8/9/10).
"""

from repro.baselines.common import ComputeProfile, standardize, train_test_split
from repro.baselines.dnn import DNNClassifier
from repro.baselines.kmeans import KMeans
from repro.baselines.knn import KNNClassifier
from repro.baselines.logistic import LogisticRegression
from repro.baselines.mlp import MLPClassifier
from repro.baselines.random_forest import RandomForestClassifier
from repro.baselines.svm import SVMClassifier

__all__ = [
    "ComputeProfile",
    "DNNClassifier",
    "KMeans",
    "KNNClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "RandomForestClassifier",
    "SVMClassifier",
    "standardize",
    "train_test_split",
]
