"""CART decision tree (gini impurity), the unit of the random forest.

The split search is vectorized per candidate feature: values are sorted
once, class counts are accumulated cumulatively, and the gini gain of
every threshold is evaluated in one pass -- fast enough in NumPy for the
forest sizes the benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    prediction: int = -1  # class index at leaves
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_for_feature(values: np.ndarray, y: np.ndarray, n_classes: int):
    """Best gini gain for one feature; returns (gain, threshold) or None."""
    order = np.argsort(values, kind="stable")
    v = values[order]
    cls = y[order]
    n = len(v)
    # cumulative class counts for prefixes [0..i)
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), cls] = 1.0
    prefix = np.cumsum(onehot, axis=0)
    total = prefix[-1]

    # candidate split after position i (left = first i+1 samples), only where
    # the value changes so thresholds are meaningful
    idx = np.nonzero(v[1:] > v[:-1])[0]
    if len(idx) == 0:
        return None
    left_counts = prefix[idx]
    right_counts = total - left_counts
    n_left = idx + 1.0
    n_right = n - n_left
    gini_left = 1.0 - ((left_counts / n_left[:, None]) ** 2).sum(axis=1)
    gini_right = 1.0 - ((right_counts / n_right[:, None]) ** 2).sum(axis=1)
    parent = 1.0 - ((total / n) ** 2).sum()
    gain = parent - (n_left * gini_left + n_right * gini_right) / n
    best = int(np.argmax(gain))
    if gain[best] <= 1e-12:
        return None
    threshold = 0.5 * (v[idx[best]] + v[idx[best] + 1])
    return float(gain[best]), threshold


class DecisionTreeClassifier:
    """CART tree on class indices (the forest handles label decoding)."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[str] = None,  # None or "sqrt"
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root_: Optional[_Node] = None
        self.n_classes_: int = 0
        self.n_nodes_: int = 0
        self.depth_: int = 0

    def fit(self, X: np.ndarray, y_idx: np.ndarray, n_classes: int) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y_idx = np.asarray(y_idx, dtype=np.int64)
        self.n_classes_ = n_classes
        rng = np.random.default_rng(self.seed)
        self.n_nodes_ = 0
        self.depth_ = 0
        self.root_ = self._grow(X, y_idx, depth=0, rng=rng)
        return self

    def _n_candidate_features(self, d: int) -> int:
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        return d

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int, rng) -> _Node:
        self.n_nodes_ += 1
        self.depth_ = max(self.depth_, depth)
        counts = np.bincount(y, minlength=self.n_classes_)
        node = _Node(prediction=int(np.argmax(counts)), n_samples=len(y))
        if (
            len(y) < self.min_samples_split
            or counts.max() == len(y)
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node

        d = X.shape[1]
        k = self._n_candidate_features(d)
        features = rng.choice(d, size=k, replace=False) if k < d else np.arange(d)
        best = None
        for f in features:
            result = _best_split_for_feature(X[:, f], y, self.n_classes_)
            if result is None:
                continue
            gain, threshold = result
            if best is None or gain > best[0]:
                best = (gain, int(f), threshold)
        if best is None:
            return node

        _, feature, threshold = best
        mask = X[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return node

    def predict_idx(self, X: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("DecisionTreeClassifier used before fit")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X), dtype=np.int64)
        # iterative batched traversal: route index sets down the tree
        stack = [(self.root_, np.arange(len(X)))]
        while stack:
            node, idx = stack.pop()
            if len(idx) == 0:
                continue
            if node.is_leaf:
                out[idx] = node.prediction
                continue
            mask = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out
