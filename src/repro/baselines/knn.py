"""k-nearest-neighbours classifier (discarded in the paper for accuracy,
shown in Fig. 3's KNN energy bars)."""

from __future__ import annotations

import numpy as np

from repro.baselines.common import ComputeProfile, LabelCodec, Standardizer


class KNNClassifier:
    """Brute-force kNN with Euclidean distance and majority vote."""

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.codec = LabelCodec()
        self.scaler = Standardizer()
        self.X_: np.ndarray | None = None
        self.y_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        self.X_ = self.scaler.fit_transform(np.asarray(X, dtype=np.float64))
        self.y_ = self.codec.fit(y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.X_ is None:
            raise RuntimeError("KNNClassifier used before fit")
        Q = self.scaler.transform(np.asarray(X, dtype=np.float64))
        # ||q - x||^2 = ||q||^2 - 2 q.x + ||x||^2 ; the q term is constant per row
        d2 = -2.0 * Q @ self.X_.T + (self.X_ * self.X_).sum(axis=1)[None, :]
        k = min(self.k, len(self.X_))
        nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
        votes = self.y_[nearest]
        preds = np.array(
            [np.bincount(row, minlength=self.codec.n_classes).argmax() for row in votes]
        )
        return self.codec.decode(preds)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def compute_profile(self, n_train: int) -> ComputeProfile:
        if self.X_ is None:
            raise RuntimeError("compute_profile needs a fitted model")
        d = self.X_.shape[1]
        infer_flops = 2.0 * n_train * d  # distance to every stored sample
        return ComputeProfile(
            train_flops=n_train * d,  # just standardize + store
            infer_flops=infer_flops,
            train_bytes=8.0 * n_train * d,
            infer_bytes=8.0 * n_train * d,
        )
