"""Support vector machine: linear one-vs-rest with optional RBF features.

The paper's strongest classic-ML baseline is an SVM.  We train a linear
one-vs-rest SVM with the squared-hinge loss via minibatch SGD; an
optional random-Fourier-feature (RFF) map approximates an RBF kernel for
datasets where a linear margin is too weak -- the standard Rahimi-Recht
construction ``z(x) = sqrt(2/D) cos(W x + b)`` with ``W ~ N(0, gamma I)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import (
    ComputeProfile,
    LabelCodec,
    Standardizer,
    minibatches,
    one_hot,
)


class SVMClassifier:
    """One-vs-rest squared-hinge SVM with optional RBF (RFF) lift."""

    def __init__(
        self,
        C: float = 1.0,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 0.1,
        kernel: str = "linear",
        rff_dim: int = 1024,
        gamma: Optional[float] = None,
        seed: int = 0,
    ):
        if kernel not in ("linear", "rbf"):
            raise ValueError(f"kernel must be 'linear' or 'rbf', got {kernel!r}")
        self.C = C
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.kernel = kernel
        self.rff_dim = rff_dim
        self.gamma = gamma
        self.seed = seed

        self.codec = LabelCodec()
        self.scaler = Standardizer()
        self.W: Optional[np.ndarray] = None
        self.b: Optional[np.ndarray] = None
        self._rff_w: Optional[np.ndarray] = None
        self._rff_b: Optional[np.ndarray] = None

    # -- feature map --------------------------------------------------------------

    def _lift(self, X: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return X
        return np.sqrt(2.0 / self.rff_dim) * np.cos(X @ self._rff_w + self._rff_b)

    def _init_rff(self, n_features: int, rng: np.random.Generator) -> None:
        gamma = self.gamma if self.gamma is not None else 1.0 / n_features
        self._rff_w = rng.normal(0.0, np.sqrt(2.0 * gamma), size=(n_features, self.rff_dim))
        self._rff_b = rng.uniform(0.0, 2.0 * np.pi, size=self.rff_dim)

    # -- training ----------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVMClassifier":
        rng = np.random.default_rng(self.seed)
        X = self.scaler.fit_transform(np.asarray(X, dtype=np.float64))
        y_idx = self.codec.fit(y)
        n_classes = self.codec.n_classes
        if self.kernel == "rbf":
            self._init_rff(X.shape[1], rng)
        Z = self._lift(X)
        # one-vs-rest targets in {-1, +1}
        T = 2.0 * one_hot(y_idx, n_classes) - 1.0

        self.W = np.zeros((Z.shape[1], n_classes))
        self.b = np.zeros(n_classes)
        lam = 1.0 / (self.C * len(Z))
        lr0 = self.lr
        step = 0
        for _ in range(self.epochs):
            for batch in minibatches(len(Z), self.batch_size, rng):
                step += 1
                lr = lr0 / (1.0 + 1e-3 * step)
                zb, tb = Z[batch], T[batch]
                margins = tb * (zb @ self.W + self.b)
                # squared hinge: grad = -2 t z max(0, 1 - m)
                slack = np.maximum(0.0, 1.0 - margins)
                coeff = -2.0 * tb * slack / len(batch)
                grad_w = zb.T @ coeff + lam * self.W
                grad_b = coeff.sum(axis=0)
                self.W -= lr * grad_w
                self.b -= lr * grad_b
        return self

    # -- prediction ---------------------------------------------------------------

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.W is None:
            raise RuntimeError("SVMClassifier used before fit")
        Z = self._lift(self.scaler.transform(X))
        return Z @ self.W + self.b

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.codec.decode(np.argmax(self.decision_function(X), axis=1))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def compute_profile(self, n_train: int) -> ComputeProfile:
        if self.W is None:
            raise RuntimeError("compute_profile needs a fitted model")
        lift_flops = 0.0 if self.kernel == "linear" else 2.0 * self._rff_w.size
        infer_flops = lift_flops + 2.0 * self.W.size
        train_flops = 3.0 * infer_flops * n_train * self.epochs
        model_bytes = 8.0 * (self.W.size + (0 if self._rff_w is None else self._rff_w.size))
        return ComputeProfile(
            train_flops=train_flops,
            infer_flops=infer_flops,
            train_bytes=model_bytes * self.epochs,
            infer_bytes=model_bytes,
        )
