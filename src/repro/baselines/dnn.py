"""DNN baseline with a small architecture search (AutoKeras stand-in).

The paper uses AutoKeras to search DNN models per dataset.  Without
network access (and without Keras) we substitute a deterministic grid
search over a small family of fully connected architectures and learning
rates, trained with the same :class:`~repro.baselines.mlp.MLPClassifier`
core and selected on a validation split.  This preserves what matters
for the evaluation: a per-dataset tuned neural model that is strictly
heavier than the single-hidden-layer MLP.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.common import ComputeProfile, train_test_split
from repro.baselines.mlp import MLPClassifier

DEFAULT_SEARCH_SPACE: Tuple[Tuple[Tuple[int, ...], float], ...] = (
    ((256,), 1e-3),
    ((256, 128), 1e-3),
    ((512, 256), 1e-3),
    ((256, 128, 64), 1e-3),
    ((256, 128), 3e-4),
)


class DNNClassifier:
    """Grid search over MLP architectures; keeps the best by validation."""

    def __init__(
        self,
        search_space: Sequence[Tuple[Tuple[int, ...], float]] = DEFAULT_SEARCH_SPACE,
        epochs: int = 60,
        batch_size: int = 64,
        validation_fraction: float = 0.2,
        seed: int = 0,
    ):
        self.search_space = tuple(search_space)
        self.epochs = epochs
        self.batch_size = batch_size
        self.validation_fraction = validation_fraction
        self.seed = seed
        self.best_: Optional[MLPClassifier] = None
        self.best_config_: Optional[Tuple[Tuple[int, ...], float]] = None
        self.search_log_: List[Tuple[Tuple[int, ...], float, float]] = []
        self._n_candidates_trained = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DNNClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        X_tr, X_val, y_tr, y_val = train_test_split(
            X, y, test_fraction=self.validation_fraction, seed=self.seed
        )
        self.search_log_ = []
        best_acc = -1.0
        for hidden, lr in self.search_space:
            model = MLPClassifier(
                hidden=hidden,
                lr=lr,
                epochs=self.epochs,
                batch_size=self.batch_size,
                seed=self.seed,
            ).fit(X_tr, y_tr)
            acc = model.score(X_val, y_val)
            self.search_log_.append((hidden, lr, acc))
            self._n_candidates_trained += 1
            if acc > best_acc:
                best_acc = acc
                self.best_ = model
                self.best_config_ = (hidden, lr)
        # refit the winner on all data
        hidden, lr = self.best_config_
        self.best_ = MLPClassifier(
            hidden=hidden,
            lr=lr,
            epochs=self.epochs,
            batch_size=self.batch_size,
            seed=self.seed,
        ).fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.best_ is None:
            raise RuntimeError("DNNClassifier used before fit")
        return self.best_.predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def compute_profile(self, n_train: int) -> ComputeProfile:
        """The search multiplies training cost; inference uses the winner."""
        if self.best_ is None:
            raise RuntimeError("compute_profile needs a fitted model")
        winner = self.best_.compute_profile(n_train)
        search_factor = max(1, self._n_candidates_trained)
        return ComputeProfile(
            train_flops=winner.train_flops * search_factor,
            infer_flops=winner.infer_flops,
            train_bytes=winner.train_bytes * search_factor,
            infer_bytes=winner.infer_bytes,
        )
