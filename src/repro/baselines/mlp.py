"""Multi-layer perceptron trained with Adam (scikit-learn MLP stand-in)."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.baselines.common import (
    AdamState,
    ComputeProfile,
    LabelCodec,
    Standardizer,
    minibatches,
    one_hot,
    relu,
    softmax,
)


class MLPClassifier:
    """Fully connected ReLU network with a softmax output.

    Parameters mirror scikit-learn's defaults where sensible: one hidden
    layer of 100 units, Adam, minibatch training with early stopping on
    a held-out validation slice.
    """

    def __init__(
        self,
        hidden: Sequence[int] = (100,),
        lr: float = 1e-3,
        epochs: int = 60,
        batch_size: int = 64,
        l2: float = 1e-4,
        patience: int = 8,
        validation_fraction: float = 0.1,
        seed: int = 0,
    ):
        self.hidden = tuple(hidden)
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.patience = patience
        self.validation_fraction = validation_fraction
        self.seed = seed

        self.codec = LabelCodec()
        self.scaler = Standardizer()
        self.weights: list = []
        self.biases: list = []
        self.history_: list = []

    # -- internals -------------------------------------------------------------

    def _init_params(self, n_in: int, n_out: int, rng: np.random.Generator) -> None:
        sizes = (n_in, *self.hidden, n_out)
        self.weights = []
        self.biases = []
        for a, b in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / a)  # He init for ReLU stacks
            self.weights.append(rng.normal(0.0, scale, size=(a, b)))
            self.biases.append(np.zeros(b))

    def _forward(self, X: np.ndarray) -> Tuple[list, np.ndarray]:
        acts = [X]
        h = X
        for W, b in zip(self.weights[:-1], self.biases[:-1]):
            h = relu(h @ W + b)
            acts.append(h)
        logits = h @ self.weights[-1] + self.biases[-1]
        return acts, logits

    def _backward(self, acts: list, probs: np.ndarray, targets: np.ndarray):
        n = len(targets)
        grads_w = [None] * len(self.weights)
        grads_b = [None] * len(self.biases)
        delta = (probs - targets) / n
        for layer in range(len(self.weights) - 1, -1, -1):
            grads_w[layer] = acts[layer].T @ delta + self.l2 * self.weights[layer]
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights[layer].T) * (acts[layer] > 0)
        return grads_w, grads_b

    # -- public API ---------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        rng = np.random.default_rng(self.seed)
        X = self.scaler.fit_transform(np.asarray(X, dtype=np.float64))
        y_idx = self.codec.fit(y)
        n_classes = self.codec.n_classes
        targets = one_hot(y_idx, n_classes)

        n_val = max(1, int(len(X) * self.validation_fraction))
        order = rng.permutation(len(X))
        val_idx, tr_idx = order[:n_val], order[n_val:]
        X_tr, T_tr = X[tr_idx], targets[tr_idx]
        X_val, y_val = X[val_idx], y_idx[val_idx]

        self._init_params(X.shape[1], n_classes, rng)
        params = self.weights + self.biases
        adam = AdamState(params, lr=self.lr)

        best_acc = -1.0
        best_params = None
        stale = 0
        for _ in range(self.epochs):
            for batch in minibatches(len(X_tr), self.batch_size, rng):
                acts, logits = self._forward(X_tr[batch])
                probs = softmax(logits)
                grads_w, grads_b = self._backward(acts, probs, T_tr[batch])
                adam.step(self.weights + self.biases, grads_w + grads_b)
            val_acc = float(np.mean(self._predict_idx(X_val) == y_val))
            self.history_.append(val_acc)
            if val_acc > best_acc + 1e-6:
                best_acc = val_acc
                best_params = (
                    [W.copy() for W in self.weights],
                    [b.copy() for b in self.biases],
                )
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break
        if best_params is not None:
            self.weights, self.biases = best_params
        return self

    def _predict_idx(self, X_scaled: np.ndarray) -> np.ndarray:
        _, logits = self._forward(X_scaled)
        return np.argmax(logits, axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.weights:
            raise RuntimeError("MLPClassifier used before fit")
        _, logits = self._forward(self.scaler.transform(X))
        return softmax(logits)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.weights:
            raise RuntimeError("MLPClassifier used before fit")
        idx = self._predict_idx(self.scaler.transform(X))
        return self.codec.decode(idx)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def compute_profile(self, n_train: int) -> ComputeProfile:
        """FLOP/byte estimate for the device models."""
        if not self.weights:
            raise RuntimeError("compute_profile needs a fitted model")
        mac_per_input = sum(W.size for W in self.weights)
        infer_flops = 2.0 * mac_per_input
        epochs = max(1, len(self.history_))
        train_flops = 3.0 * infer_flops * n_train * epochs  # fwd + bwd
        weight_bytes = 8.0 * mac_per_input
        return ComputeProfile(
            train_flops=train_flops,
            infer_flops=infer_flops,
            train_bytes=weight_bytes * epochs * max(1, n_train // self.batch_size),
            infer_bytes=weight_bytes,
        )
