"""Cycle-accurate search unit (Fig. 4, bottom half).

The ``m`` class memories hold the model striped exactly as Section
4.3.2 describes: the ``m`` dimensions of pass ``p`` for class ``c``
live in row ``p * n_C + c`` of the m memories (one 16-bit word each),
so an application always occupies the *first* rows and unused bank
suffixes can be gated.

Per pass, the unit reads the ``n_C`` rows (one class per cycle from all
m memories in parallel), MACs them against the pass's partial encoding
through the pipelined adder tree, and accumulates into the score
memory.  Finalization reads the blocked norm2 rows and pushes each
score through the (corrected) Mitchell divider, tracking the maximum.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.norms import SubNormTable
from repro.hardware.mitchell import mitchell_divide
from repro.rtl.sram import SyncSRAM


class RTLSearch:
    """Clock-stepped dot-product search over striped class memories."""

    def __init__(self, dim: int, lanes: int, n_classes: int, norm_block: int = 128):
        if dim % lanes:
            raise ValueError("dim must be a multiple of the lane count")
        self.dim = dim
        self.lanes = lanes
        self.n_classes = n_classes
        self.norm_block = min(norm_block, dim)
        self.passes = dim // lanes

        rows = self.passes * n_classes
        self.class_mems = [
            SyncSRAM(f"class{l}", rows=rows, width=1) for l in range(lanes)
        ]
        self.score_mem = SyncSRAM("score", rows=n_classes, width=1)
        self.blocks = max(1, dim // self.norm_block)
        self.norm2_mem = SyncSRAM("norm2", rows=n_classes, width=self.blocks)

    # -- host side ----------------------------------------------------------------

    def load_classes(self, matrix: np.ndarray) -> None:
        """Stripe a (n_C, dim) class matrix into the m memories."""
        matrix = np.asarray(matrix)
        if matrix.shape != (self.n_classes, self.dim):
            raise ValueError(
                f"class matrix {matrix.shape} != ({self.n_classes}, {self.dim})"
            )
        for lane, mem in enumerate(self.class_mems):
            contents = np.empty((self.passes * self.n_classes, 1), dtype=np.int64)
            for p in range(self.passes):
                for c in range(self.n_classes):
                    contents[p * self.n_classes + c, 0] = matrix[c, p * self.lanes + lane]
            mem.load(contents)
        # blocked squared norms into the norm2 memory
        norms = SubNormTable(self.n_classes, self.dim, block=self.norm_block)
        norms.recompute(matrix.astype(np.float64))
        self.norm2_mem.load(norms.table.astype(np.int64))

    # -- per-pass execution ------------------------------------------------------------

    def reset_scores(self) -> None:
        self.score_mem.data[:] = 0

    def accumulate_pass(self, pass_index: int, partial_dims: np.ndarray) -> int:
        """MAC one pass's m dims against every class; returns cycles (n_C)."""
        partial = np.asarray(partial_dims, dtype=np.int64)
        if partial.shape != (self.lanes,):
            raise ValueError(f"partial dims shape {partial.shape} != ({self.lanes},)")
        cycles = 0
        for c in range(self.n_classes):
            row = pass_index * self.n_classes + c
            words = np.empty(self.lanes, dtype=np.int64)
            for lane, mem in enumerate(self.class_mems):
                mem.issue_read(row)
                mem.tick()
                words[lane] = mem.read_data[0]
            mac = int(np.dot(words, partial))
            self.score_mem.issue_read(c)
            self.score_mem.tick()
            current = int(self.score_mem.read_data[0])
            self.score_mem.issue_write(c, np.array([current + mac]))
            self.score_mem.tick()
            cycles += 1
        return cycles

    # -- finalize -----------------------------------------------------------------------

    def finalize(self, dim_used: Optional[int] = None) -> tuple:
        """Normalize scores with the Mitchell divider; returns
        (winner, scores, cycles)."""
        dim_used = self.dim if dim_used is None else dim_used
        if dim_used % self.norm_block:
            raise ValueError(
                f"dim_used={dim_used} must be a multiple of {self.norm_block}"
            )
        blocks_used = dim_used // self.norm_block
        scores = np.empty(self.n_classes, dtype=np.float64)
        cycles = 0
        for c in range(self.n_classes):
            self.score_mem.issue_read(c)
            self.score_mem.tick()
            dot = float(self.score_mem.read_data[0])
            self.norm2_mem.issue_read(c)
            self.norm2_mem.tick()
            norm2 = float(self.norm2_mem.read_data[:blocks_used].sum())
            if norm2 <= 0:
                scores[c] = 0.0
            else:
                ratio = float(
                    mitchell_divide(np.array([dot * dot]), np.array([norm2]),
                                    correct=True)[0]
                )
                scores[c] = np.sign(dot) * ratio
            cycles += 1
        winner = int(np.argmax(scores))
        return winner, scores, cycles
