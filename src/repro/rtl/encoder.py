"""Cycle-accurate encoder pipeline (Fig. 4, left half).

One pass over the stored input produces ``m`` encoding dimensions
``[base, base + m)``.  Per cycle the pipeline:

1. issues a feature-memory read (stage F);
2. quantizes the returned feature to a level bin and issues the level
   row read for an ``m + n - 1`` bit slice starting at ``base - (n-1)``
   (stage Q) -- the extra ``n - 1`` bits feed the per-stage one-bit
   shifts of the window register stack;
3. pushes the returned slice onto the window stack and, once ``n``
   slices are present, folds the window product, binds the on-the-fly
   id bits and accumulates into the ``m`` lane accumulators (stage W).

The window stack mirrors the ``reg n .. reg 1`` chain of the paper: a
slice entering at stage 0 uses sub-bits ``[0, m)``; each stage it ages,
its effective window advances one bit (``[s, s + m)`` at age ``s``),
which is exactly the permutation-by-``j`` of the GENERIC encoding since
age ``s`` corresponds to in-window offset ``j = n - 1 - s``.

The id path reproduces Section 4.3.1: the seed id lives in an SRAM of
``m``-bit rows; a ``tmp`` register refills from it once every ``m``
windows and shifts one bit per window into ``reg_id``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rtl.sram import SyncSRAM


@dataclass
class EncoderConfig:
    """Static configuration of the encoder pipeline."""

    dim: int
    lanes: int  # m
    window: int  # n
    num_levels: int
    n_features: int
    use_ids: bool


class RTLEncoder:
    """Clock-stepped encoder producing m dimensions per pass."""

    def __init__(
        self,
        config: EncoderConfig,
        level_bits: np.ndarray,  # (num_levels, dim) in {0,1}
        seed_bits: Optional[np.ndarray],  # (dim,) in {0,1} or None
        lo: np.ndarray,
        hi: np.ndarray,
    ):
        c = config
        if c.dim % c.lanes:
            raise ValueError("dim must be a multiple of the lane count")
        self.config = c
        self.level_bits = np.asarray(level_bits, dtype=np.uint8)
        if self.level_bits.shape != (c.num_levels, c.dim):
            raise ValueError(
                f"level table {self.level_bits.shape} != "
                f"({c.num_levels}, {c.dim})"
            )
        self.seed_bits = (
            None if seed_bits is None else np.asarray(seed_bits, dtype=np.uint8)
        )
        if c.use_ids and self.seed_bits is None:
            raise ValueError("use_ids requires a seed id")
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)

        # memories: feature SRAM (one element per row), level SRAM modeled
        # as the packed bit table with slice reads, seed SRAM of m-bit rows
        self.feature_mem = SyncSRAM("feature", rows=c.n_features, width=1,
                                    dtype=np.float64)
        self.level_reads = 0
        self.seed_reads = 0

        self._reset_pass_state()

    # -- host side ---------------------------------------------------------------

    def load_input(self, x: np.ndarray) -> int:
        """Serial load: one element per cycle into the feature memory.

        Returns the cycles consumed (= d), matching the paper's
        element-by-element input port.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.config.n_features,):
            raise ValueError(
                f"input shape {x.shape} != ({self.config.n_features},)"
            )
        for t, value in enumerate(x):
            self.feature_mem.issue_write(t, np.array([value]))
            self.feature_mem.tick()
        return self.config.n_features

    # -- per-pass execution ----------------------------------------------------------

    def _reset_pass_state(self) -> None:
        self._stack: list = []  # youngest first: slices of (m + n - 1) bits
        self._acc = np.zeros(self.config.lanes, dtype=np.int64)
        self._windows_folded = 0
        self._pipeline: list = []  # (stage, payload) in-flight items

    def quantize(self, value: float) -> int:
        span = np.where(self.hi > self.lo, self.hi - self.lo, 1.0)
        scaled = (value - self.lo) / span
        return int(np.clip(np.floor(scaled * self.config.num_levels),
                           0, self.config.num_levels - 1))

    def _level_slice(self, bin_index: int, base: int) -> np.ndarray:
        """m + n - 1 level bits starting at ``base - (n - 1)`` (wrapped)."""
        c = self.config
        start = (base - (c.window - 1)) % c.dim
        idx = (start + np.arange(c.lanes + c.window - 1)) % c.dim
        self.level_reads += 1
        return self.level_bits[bin_index, idx]

    def _id_bits(self, window_index: int, base: int) -> np.ndarray:
        """m id bits for one window: rho^i(seed)[base .. base+m)."""
        c = self.config
        if not c.use_ids:
            return np.zeros(c.lanes, dtype=np.uint8)
        # tmp-register refill: one seed-row read per m windows
        if window_index % c.lanes == 0:
            self.seed_reads += 1
        idx = (base - window_index + np.arange(c.lanes)) % c.dim
        return self.seed_bits[idx]

    def run_pass(self, pass_index: int) -> tuple:
        """Encode dims [pass*m, pass*m + m); returns (partial_dims, cycles).

        Cycle accounting: one feature per cycle plus the 3-stage
        pipeline fill (fetch, quantize+level read, fold).
        """
        c = self.config
        base = pass_index * c.lanes
        if base + c.lanes > c.dim:
            raise ValueError(f"pass {pass_index} beyond D_hv={c.dim}")
        self._reset_pass_state()

        cycles = 0
        window_index = 0
        # stage-F/Q/W software pipeline: issue feature reads one per cycle
        for t in range(c.n_features):
            self.feature_mem.issue_read(t)
            self.feature_mem.tick()
            value = float(self.feature_mem.read_data[0])
            cycles += 1
            bin_index = self.quantize(value)
            slice_bits = self._level_slice(bin_index, base)
            # push youngest-first; age grows with position
            self._stack.insert(0, slice_bits)
            if len(self._stack) > c.window:
                self._stack.pop()
            if len(self._stack) == c.window:
                # fold: XOR over ages s of bits [s, s+m)
                folded = np.zeros(c.lanes, dtype=np.uint8)
                for age, stored in enumerate(self._stack):
                    folded ^= stored[age : age + c.lanes]
                folded ^= self._id_bits(window_index, base)
                # bipolar accumulate: bit 0 -> +1, bit 1 -> -1
                self._acc += 1 - 2 * folded.astype(np.int64)
                window_index += 1
        cycles += 3  # pipeline fill/drain (fetch, quantize, fold stages)
        return self._acc.copy(), cycles
