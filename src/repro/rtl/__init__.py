"""Cycle-accurate behavioural model of the GENERIC ASIC ("RTL twin").

The paper implements GENERIC in SystemVerilog and verifies it in
Modelsim.  :mod:`repro.hardware` models the design *analytically*
(closed-form cycle counts, functional math); this package models it
*structurally*: clocked registers, synchronous SRAMs with one-cycle
read latency, the window register stack with its per-stage one-bit
shifts (the ``<<`` boxes of Fig. 4), the seed-id ``tmp`` register that
refills every ``m`` windows, the striped class memories, and the
controller FSM -- executed cycle by cycle.

It is intentionally slow (a Python event loop) and is used at small
configurations to *cross-validate* the fast models:

- encodings are bit-exact with :class:`repro.core.encoders.GenericEncoder`
  and :class:`repro.hardware.encoder_unit.EncoderUnit`;
- predictions match :class:`repro.hardware.search_unit.SearchUnit`;
- measured cycle counts track the analytical controller model.
"""

from repro.rtl.top import GenericRTL, RTLInferenceResult
from repro.rtl.trace import Trace, TraceEvent
from repro.rtl.train_top import GenericRTLTrainer

__all__ = [
    "GenericRTL",
    "GenericRTLTrainer",
    "RTLInferenceResult",
    "Trace",
    "TraceEvent",
]
