"""Synchronous SRAM model with one-cycle read latency and access counts.

A read issued in cycle ``t`` (``issue_read``) delivers its data in
cycle ``t+1`` (``read_data``), like a registered-output SRAM macro.
Writes commit at the clock edge.  Rows hold NumPy arrays (bit slices or
words); the model also counts accesses so RTL runs can be charged by
the same energy model as the analytical simulator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class SyncSRAM:
    """Single-port synchronous SRAM (1R or 1W per cycle)."""

    def __init__(self, name: str, rows: int, width: int, dtype=np.int64):
        if rows <= 0 or width <= 0:
            raise ValueError(f"{name}: rows and width must be positive")
        self.name = name
        self.rows = rows
        self.width = width
        self.data = np.zeros((rows, width), dtype=dtype)
        self.reads = 0
        self.writes = 0

        self._read_pending: Optional[int] = None
        self._read_output: Optional[np.ndarray] = None
        self._write_pending: Optional[tuple] = None

    # -- combinational phase -------------------------------------------------

    def issue_read(self, row: int) -> None:
        """Request row contents; available via read_data after the edge."""
        if not 0 <= row < self.rows:
            raise IndexError(f"{self.name}: read row {row} out of range")
        if self._write_pending is not None:
            raise RuntimeError(f"{self.name}: single port already writing")
        self._read_pending = row

    def issue_write(self, row: int, value: np.ndarray) -> None:
        """Schedule a row write for the coming clock edge."""
        if not 0 <= row < self.rows:
            raise IndexError(f"{self.name}: write row {row} out of range")
        if self._read_pending is not None:
            raise RuntimeError(f"{self.name}: single port already reading")
        value = np.asarray(value)
        if value.shape != (self.width,):
            raise ValueError(
                f"{self.name}: write width {value.shape} != ({self.width},)"
            )
        self._write_pending = (row, value.astype(self.data.dtype))

    # -- sequential phase -----------------------------------------------------

    def tick(self) -> None:
        """Clock edge: commit the write, latch the read output."""
        if self._write_pending is not None:
            row, value = self._write_pending
            self.data[row] = value
            self.writes += 1
            self._write_pending = None
        if self._read_pending is not None:
            self._read_output = self.data[self._read_pending].copy()
            self.reads += 1
            self._read_pending = None

    @property
    def read_data(self) -> np.ndarray:
        """Data latched by the most recent read (valid one cycle later)."""
        if self._read_output is None:
            raise RuntimeError(f"{self.name}: no read has completed yet")
        return self._read_output

    # -- backdoor (host/config port) -----------------------------------------------

    def load(self, contents: np.ndarray) -> None:
        """Host-side bulk load through the config port (not cycle-counted)."""
        contents = np.asarray(contents, dtype=self.data.dtype)
        if contents.shape[0] > self.rows or contents.shape[1] != self.width:
            raise ValueError(
                f"{self.name}: cannot load shape {contents.shape} into "
                f"({self.rows}, {self.width})"
            )
        self.data[: contents.shape[0]] = contents

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0
