"""Clocked primitives: registers and the two-phase update discipline.

Everything stateful in the RTL twin follows the same contract: during a
cycle, combinational code reads current values and schedules next
values with ``set_next``; :func:`clock_edge` then commits every
scheduled value at once.  This mirrors non-blocking assignment
semantics in Verilog and prevents order-dependent bugs in the Python
model.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

import numpy as np


class Register:
    """A clocked register holding an arbitrary value (int or ndarray)."""

    def __init__(self, name: str, reset_value: Any = 0):
        self.name = name
        self._reset_value = self._copy(reset_value)
        self.value = self._copy(reset_value)
        self._next: Optional[Any] = None
        self._pending = False

    @staticmethod
    def _copy(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            return value.copy()
        return value

    def set_next(self, value: Any) -> None:
        """Schedule the value to commit at the next clock edge."""
        self._next = self._copy(value)
        self._pending = True

    def tick(self) -> None:
        """Commit the scheduled value (no-op if nothing was scheduled)."""
        if self._pending:
            self.value = self._next
            self._next = None
            self._pending = False

    def reset(self) -> None:
        self.value = self._copy(self._reset_value)
        self._next = None
        self._pending = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Register({self.name}={self.value!r})"


class RegisterFile:
    """A named collection of registers ticked together."""

    def __init__(self):
        self._registers: List[Register] = []

    def new(self, name: str, reset_value: Any = 0) -> Register:
        reg = Register(name, reset_value)
        self._registers.append(reg)
        return reg

    def extend(self, registers: Iterable[Register]) -> None:
        self._registers.extend(registers)

    def tick(self) -> None:
        for reg in self._registers:
            reg.tick()

    def reset(self) -> None:
        for reg in self._registers:
            reg.reset()

    def __len__(self) -> int:
        return len(self._registers)


def clock_edge(*files: RegisterFile) -> None:
    """Commit every register in the given files (one rising edge)."""
    for f in files:
        f.tick()
