"""Waveform-style tracing for the RTL twin (a Modelsim stand-in).

The paper verified its RTL in Modelsim; the twin offers the same
observability through a lightweight event trace: components record
named events with a cycle stamp, and the trace can be filtered,
asserted on in tests, or dumped as a text "waveform" where each signal
gets one row and each cycle one column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    signal: str
    value: object


@dataclass
class Trace:
    """Append-only event log with query helpers."""

    events: List[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, cycle: int, signal: str, value: object = 1) -> None:
        if self.enabled:
            self.events.append(TraceEvent(cycle, signal, value))

    # -- queries -------------------------------------------------------------

    def signals(self) -> List[str]:
        seen: Dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.signal, None)
        return list(seen)

    def of(self, signal: str) -> List[TraceEvent]:
        return [e for e in self.events if e.signal == signal]

    def count(self, signal: str) -> int:
        return sum(1 for e in self.events if e.signal == signal)

    def last_cycle(self) -> int:
        return max((e.cycle for e in self.events), default=0)

    def between(self, start: int, stop: int) -> "Trace":
        return Trace(
            events=[e for e in self.events if start <= e.cycle < stop],
            enabled=self.enabled,
        )

    # -- rendering ----------------------------------------------------------------

    def render(self, width: Optional[int] = None) -> str:
        """Text waveform: one row per signal, '#' where the signal fired."""
        if not self.events:
            return "(empty trace)"
        last = self.last_cycle()
        width = width or min(last + 1, 120)
        scale = (last + 1) / width
        names = self.signals()
        label_w = max(len(n) for n in names)
        lines = [f"{''.ljust(label_w)}  cycles 0..{last}"]
        for name in names:
            row = [" "] * width
            for e in self.of(name):
                col = min(width - 1, int(e.cycle / scale))
                row[col] = "#"
            lines.append(f"{name.ljust(label_w)} |{''.join(row)}|")
        return "\n".join(lines)
