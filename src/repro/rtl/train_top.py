"""Trainable RTL top: on-device training and clustering, clock-stepped.

``GenericRTLTrainer`` is the RTL counterpart of
:meth:`repro.hardware.accelerator.GenericAccelerator.train` /
``.cluster``: programmed with encoding tables only (no offline model),
it initializes, retrains and clusters entirely through the
class-memory learning datapath of :mod:`repro.rtl.learn`.

Cross-validation (see ``tests/rtl/test_rtl_training.py``): given the
same sample order, the RTL trainer produces the *same class matrix*
and the same predictions as the functional accelerator.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.hypervector import to_binary
from repro.hardware.mitchell import mitchell_divide
from repro.rtl.encoder import EncoderConfig, RTLEncoder
from repro.rtl.learn import LearnReport, RTLLearnUnit
from repro.rtl.trace import Trace


class GenericRTLTrainer:
    """Clock-stepped GENERIC engine with training and clustering modes."""

    def __init__(self, lanes: int = 16, norm_block: int = 128,
                 trace: Optional[Trace] = None):
        self.lanes = lanes
        self.norm_block = norm_block
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.encoder: Optional[RTLEncoder] = None
        self.learn: Optional[RTLLearnUnit] = None
        self.class_labels: Optional[np.ndarray] = None
        self.dim = 0

    # -- programming -----------------------------------------------------------

    def configure(
        self,
        dim: int,
        n_features: int,
        n_classes: int,
        level_table: np.ndarray,
        seed_id: Optional[np.ndarray],
        lo,
        hi,
        window: int = 3,
        with_copy_set: bool = False,
    ) -> "GenericRTLTrainer":
        level_table = np.asarray(level_table)
        config = EncoderConfig(
            dim=dim,
            lanes=self.lanes,
            window=window,
            num_levels=level_table.shape[0],
            n_features=n_features,
            use_ids=seed_id is not None,
        )
        self.encoder = RTLEncoder(
            config,
            level_bits=to_binary(level_table),
            seed_bits=None if seed_id is None else to_binary(np.asarray(seed_id)),
            lo=np.asarray(lo),
            hi=np.asarray(hi),
        )
        self.learn = RTLLearnUnit(
            dim=dim,
            lanes=self.lanes,
            n_classes=n_classes,
            with_copy_set=with_copy_set,
            norm_block=min(self.norm_block, dim),
            trace=self.trace,
        )
        self.dim = dim
        return self

    def _require_ready(self) -> None:
        if self.encoder is None or self.learn is None:
            raise RuntimeError("GenericRTLTrainer used before configure()")

    # -- shared kernels ----------------------------------------------------------

    def _encode_all_passes(self, x: np.ndarray, store_temp: bool) -> np.ndarray:
        """Encode every pass; optionally stream into the temp rows."""
        passes = self.dim // self.lanes
        encoding = np.empty(self.dim, dtype=np.int64)
        self.encoder.load_input(np.asarray(x, dtype=np.float64))
        self.learn.cycle += self.encoder.config.n_features  # serial load
        for p in range(passes):
            dims, cycles = self.encoder.run_pass(p)
            self.learn.cycle += cycles
            encoding[p * self.lanes : (p + 1) * self.lanes] = dims
            if store_temp:
                self.learn.store_temp(p, dims)
        return encoding

    def _score(self, encoding: np.ndarray) -> np.ndarray:
        """Hardware similarity against the active classes."""
        passes = self.dim // self.lanes
        dots = np.zeros(self.learn.n_classes, dtype=np.int64)
        for p in range(passes):
            dots += self.learn.score_pass(
                p, encoding[p * self.lanes : (p + 1) * self.lanes]
            )
        norm2 = self.learn.norms()
        safe = np.where(norm2 <= 0.0, np.inf, norm2)
        ratio = mitchell_divide(
            (dots * dots).astype(np.float64), safe, correct=True
        )
        return np.sign(dots) * ratio

    # -- training -------------------------------------------------------------------

    def train(
        self,
        X: np.ndarray,
        y: Sequence,
        epochs: int = 5,
        seed: int = 0,
    ) -> LearnReport:
        """Initialization + per-sample retraining (Section 4.2.2)."""
        self._require_ready()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        labels, y_idx = np.unique(np.asarray(y), return_inverse=True)
        if len(labels) > self.learn.n_classes:
            raise ValueError(
                f"{len(labels)} labels exceed n_C={self.learn.n_classes}"
            )
        self.class_labels = labels
        rng = np.random.default_rng(seed)
        passes = self.dim // self.lanes

        encodings = np.empty((len(X), self.dim), dtype=np.int64)
        for i, x in enumerate(X):
            encodings[i] = self._encode_all_passes(x, store_temp=False)
            for p in range(passes):
                self.learn.accumulate_encoding(
                    int(y_idx[i]), p,
                    encodings[i, p * self.lanes : (p + 1) * self.lanes],
                )
        for c in range(self.learn.n_classes):
            self.learn.refresh_norm(c)

        updates = 0
        order = np.arange(len(X))
        for _ in range(epochs):
            rng.shuffle(order)
            epoch_updates = 0
            for i in order:
                # scoring re-reads the stored encoding through the temp rows
                for p in range(passes):
                    self.learn.store_temp(
                        p, encodings[i, p * self.lanes : (p + 1) * self.lanes]
                    )
                scores = self._score(encodings[i])
                pred = int(np.argmax(scores))
                truth = int(y_idx[i])
                if pred != truth:
                    self.learn.apply_update_from_temp(pred, sign=-1)
                    self.learn.apply_update_from_temp(truth, sign=+1)
                    self.learn.refresh_norm(pred)
                    self.learn.refresh_norm(truth)
                    epoch_updates += 1
            updates += epoch_updates
            if epoch_updates == 0:
                break
        return LearnReport(
            cycles=self.learn.cycle, inputs=len(X), updates=updates
        )

    def infer(self, X: np.ndarray) -> np.ndarray:
        """Classify through the trained class memories."""
        self._require_ready()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        preds = []
        for x in X:
            encoding = self._encode_all_passes(x, store_temp=False)
            winner = int(np.argmax(self._score(encoding)))
            preds.append(
                winner if self.class_labels is None else self.class_labels[winner]
            )
        return np.asarray(preds)

    # -- clustering --------------------------------------------------------------------

    def cluster(self, X: np.ndarray, k: int, epochs: int = 5) -> LearnReport:
        """Copy-centroid clustering (Section 4.2.3)."""
        self._require_ready()
        if not self.learn.with_copy_set:
            raise RuntimeError("configure(with_copy_set=True) for clustering")
        if k > self.learn.n_classes:
            raise ValueError(f"k={k} exceeds n_C={self.learn.n_classes}")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if len(X) < k:
            raise ValueError(f"need at least k={k} inputs")
        passes = self.dim // self.lanes

        encodings = np.empty((len(X), self.dim), dtype=np.int64)
        for i, x in enumerate(X):
            encodings[i] = self._encode_all_passes(x, store_temp=False)
        # the first k encodings seed the active centroids
        for c in range(k):
            for p in range(passes):
                self.learn.accumulate_encoding(
                    c, p, encodings[c, p * self.lanes : (p + 1) * self.lanes]
                )
            self.learn.refresh_norm(c)

        labels = np.zeros(len(X), dtype=np.int64)
        for epoch in range(epochs):
            self.learn.clear_copy_set()
            new_labels = np.empty(len(X), dtype=np.int64)
            for i in range(len(X)):
                for p in range(passes):
                    self.learn.store_temp(
                        p, encodings[i, p * self.lanes : (p + 1) * self.lanes]
                    )
                scores = self._score(encodings[i])[:k]
                winner = int(np.argmax(scores))
                new_labels[i] = winner
                self.learn.apply_update_from_temp(winner, sign=+1, copy_set=True)
            # empty clusters keep their previous centroid
            counts = np.bincount(new_labels, minlength=k)
            for c in range(k):
                if counts[c] == 0:
                    old = self.learn.read_class(c)
                    for p in range(passes):
                        self.learn._write_row(
                            p, self.learn._slot_copy(c),
                            old[p * self.lanes : (p + 1) * self.lanes],
                        )
            converged = epoch > 0 and np.array_equal(new_labels, labels)
            labels = new_labels
            self.learn.commit_copy_set()
            if converged:
                break
        return LearnReport(
            cycles=self.learn.cycle, inputs=len(X), updates=int(epochs),
            labels=labels,
        )
