"""Top-level RTL twin: controller FSM tying encoder and search together.

``GenericRTL`` is programmed exactly like the analytical simulator --
from a :class:`~repro.core.model_io.ConfigImage` -- and runs inference
one input at a time:

1. serial input load (``d`` cycles);
2. ``D_hv / m`` passes; each pass encodes ``m`` dimensions while the
   search unit consumes the *previous* pass's dimensions (the pipeline
   of Section 4.2.1), so a pass costs ``max(encode, search)`` cycles;
3. a drain pass for the final search plus score finalization.

The twin is slow (pure Python per cycle) and intended for
cross-validation at small configurations; production experiments use
:mod:`repro.hardware`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.model_io import ConfigImage
from repro.core.hypervector import to_binary
from repro.rtl.encoder import EncoderConfig, RTLEncoder
from repro.rtl.search import RTLSearch


@dataclass
class RTLInferenceResult:
    """Outcome of one RTL inference."""

    prediction: object
    winner_index: int
    scores: np.ndarray
    cycles: int
    encoding: np.ndarray
    pass_cycles: List[int] = field(default_factory=list)


class GenericRTL:
    """Cycle-stepped GENERIC engine (inference)."""

    def __init__(self, lanes: int = 16, norm_block: int = 128):
        self.lanes = lanes
        self.norm_block = norm_block
        self.encoder: Optional[RTLEncoder] = None
        self.search: Optional[RTLSearch] = None
        self.class_labels: Optional[np.ndarray] = None
        self.dim = 0

    # -- programming -----------------------------------------------------------------

    def load_image(self, image: ConfigImage) -> "GenericRTL":
        if image.dim % self.lanes:
            raise ValueError(
                f"D_hv={image.dim} must be a multiple of m={self.lanes}"
            )
        lo = np.atleast_1d(image.quantizer_lo)
        hi = np.atleast_1d(image.quantizer_hi)
        if lo.size != 1 or hi.size != 1:
            raise ValueError("the RTL twin supports global quantizer ranges")
        config = EncoderConfig(
            dim=image.dim,
            lanes=self.lanes,
            window=image.window,
            num_levels=image.num_levels,
            n_features=image.n_features,
            use_ids=image.use_ids,
        )
        self.encoder = RTLEncoder(
            config,
            level_bits=to_binary(image.level_table),
            seed_bits=None if image.seed_id is None else to_binary(image.seed_id),
            lo=lo[0],
            hi=hi[0],
        )
        self.search = RTLSearch(
            dim=image.dim,
            lanes=self.lanes,
            n_classes=image.n_classes,
            norm_block=min(self.norm_block, image.dim),
        )
        self.search.load_classes(np.rint(image.class_matrix).astype(np.int64))
        self.class_labels = np.asarray(image.class_labels)
        self.dim = image.dim
        return self

    def _require_ready(self) -> None:
        if self.encoder is None or self.search is None:
            raise RuntimeError("GenericRTL used before load_image()")

    # -- execution --------------------------------------------------------------------

    def infer_one(self, x: np.ndarray) -> RTLInferenceResult:
        """Run one input through the full load/encode/search/finalize flow."""
        self._require_ready()
        cycles = self.encoder.load_input(np.asarray(x, dtype=np.float64))

        passes = self.dim // self.lanes
        self.search.reset_scores()
        encoding = np.empty(self.dim, dtype=np.int64)
        pass_cycles: List[int] = []
        pending: Optional[tuple] = None  # (pass_index, partial_dims)
        for p in range(passes):
            partial, encode_cycles = self.encoder.run_pass(p)
            encoding[p * self.lanes : (p + 1) * self.lanes] = partial
            search_cycles = 0
            if pending is not None:
                search_cycles = self.search.accumulate_pass(*pending)
            pending = (p, partial)
            step = max(encode_cycles, search_cycles)
            pass_cycles.append(step)
            cycles += step
        # drain: the last pass's dimensions still need their search
        cycles += self.search.accumulate_pass(*pending)
        winner, scores, fin_cycles = self.search.finalize(self.dim)
        cycles += fin_cycles

        label = winner if self.class_labels is None else self.class_labels[winner]
        return RTLInferenceResult(
            prediction=label,
            winner_index=winner,
            scores=scores,
            cycles=cycles,
            encoding=encoding,
            pass_cycles=pass_cycles,
        )

    def infer(self, X: np.ndarray) -> List[RTLInferenceResult]:
        """Convenience wrapper over a batch (still one input at a time)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return [self.infer_one(x) for x in X]
