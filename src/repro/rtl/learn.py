"""RTL-level training and clustering (paper Sections 4.2.2, 4.2.3).

Extends the RTL twin beyond inference with the learning datapaths of
Fig. 4:

- **initialization** -- encoded inputs are accumulated into the label's
  class rows through the adder/mux pair (markers 3/4): one
  read-modify-write of a class row per pass;
- **retraining** -- while a training input is scored, its encoding is
  written to *temporary rows* of the class memories; on a
  misprediction the controller replays the rows: read class row, read
  temp row, write back -- the paper's ``3 x D_hv / m`` cycles per
  class update -- then refreshes the squared-norm row through the
  multiplier feedback path (marker 8);
- **clustering** -- the first ``k`` encoded inputs seed the centroids;
  each input is scored against the *frozen* centroids and added into a
  *copy centroid* row set, which replaces the active set at the end of
  the epoch.

Row budget per pass: ``n_C`` active slots, ``n_C`` copy slots
(clustering) and one temp slot, all striped across the m memories like
the active classes, so the same power-gating prefix argument applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rtl.sram import SyncSRAM
from repro.rtl.trace import Trace


@dataclass
class LearnReport:
    """Outcome of an RTL training or clustering run."""

    cycles: int
    inputs: int
    updates: int
    labels: Optional[np.ndarray] = None


class RTLLearnUnit:
    """Class-memory learning datapath with temp and copy row sets."""

    def __init__(
        self,
        dim: int,
        lanes: int,
        n_classes: int,
        with_copy_set: bool = False,
        norm_block: int = 128,
        trace: Optional[Trace] = None,
    ):
        if dim % lanes:
            raise ValueError("dim must be a multiple of the lane count")
        self.dim = dim
        self.lanes = lanes
        self.n_classes = n_classes
        self.passes = dim // lanes
        self.norm_block = min(norm_block, dim)
        self.blocks = max(1, dim // self.norm_block)
        self.with_copy_set = with_copy_set
        self.trace = trace if trace is not None else Trace(enabled=False)

        # slots per pass: active classes, optional copy classes, one temp
        self.slots = n_classes * (2 if with_copy_set else 1) + 1
        rows = self.passes * self.slots
        self.class_mems = [
            SyncSRAM(f"class{l}", rows=rows, width=1) for l in range(lanes)
        ]
        self.norm2_mem = SyncSRAM("norm2", rows=n_classes, width=self.blocks)
        self.cycle = 0

    # -- row addressing --------------------------------------------------------

    def _row(self, pass_index: int, slot: int) -> int:
        return pass_index * self.slots + slot

    def _slot_active(self, class_index: int) -> int:
        return class_index

    def _slot_copy(self, class_index: int) -> int:
        if not self.with_copy_set:
            raise RuntimeError("no copy row set configured")
        return self.n_classes + class_index

    @property
    def _slot_temp(self) -> int:
        return self.slots - 1

    # -- primitive row operations ----------------------------------------------------

    def _read_row(self, pass_index: int, slot: int) -> np.ndarray:
        words = np.empty(self.lanes, dtype=np.int64)
        row = self._row(pass_index, slot)
        for lane, mem in enumerate(self.class_mems):
            mem.issue_read(row)
            mem.tick()
            words[lane] = mem.read_data[0]
        self.cycle += 1
        return words

    def _write_row(self, pass_index: int, slot: int, words: np.ndarray) -> None:
        row = self._row(pass_index, slot)
        for lane, mem in enumerate(self.class_mems):
            mem.issue_write(row, np.array([words[lane]]))
            mem.tick()
        self.cycle += 1

    # -- learning datapaths -----------------------------------------------------------

    def accumulate_encoding(
        self, class_index: int, pass_index: int, dims: np.ndarray, sign: int = 1
    ) -> None:
        """Initialization: class row += encoded dims (one RMW, 2 cycles)."""
        slot = self._slot_active(class_index)
        current = self._read_row(pass_index, slot)
        self._write_row(pass_index, slot, current + sign * np.asarray(dims))
        self.trace.record(self.cycle, "class_rmw")

    def store_temp(self, pass_index: int, dims: np.ndarray) -> None:
        """Write the pass's encoding into the temporary rows (1 cycle)."""
        self._write_row(pass_index, self._slot_temp, np.asarray(dims))
        self.trace.record(self.cycle, "temp_write")

    def apply_update_from_temp(self, class_index: int, sign: int,
                               copy_set: bool = False) -> None:
        """Replay temp rows into a class: the paper's 3 x D_hv/m cycles."""
        slot = (
            self._slot_copy(class_index) if copy_set
            else self._slot_active(class_index)
        )
        for p in range(self.passes):
            current = self._read_row(p, slot)
            temp = self._read_row(p, self._slot_temp)
            self._write_row(p, slot, current + sign * temp)
        self.trace.record(self.cycle, "class_update")

    def refresh_norm(self, class_index: int) -> None:
        """Recompute one class's blocked squared norms (marker 8 path)."""
        values = self.read_class(class_index)
        blocked = values.reshape(self.blocks, self.norm_block).astype(np.float64)
        norms = (blocked * blocked).sum(axis=1)
        self.norm2_mem.issue_write(class_index, norms.astype(np.int64))
        self.norm2_mem.tick()
        self.cycle += self.passes  # one squared-accumulate sweep
        self.trace.record(self.cycle, "norm_refresh")

    def commit_copy_set(self) -> None:
        """Clustering epoch boundary: copy centroids replace the active set."""
        for c in range(self.n_classes):
            for p in range(self.passes):
                words = self._read_row(p, self._slot_copy(c))
                self._write_row(p, self._slot_active(c), words)
            self.refresh_norm(c)
        self.trace.record(self.cycle, "copy_commit")

    def clear_copy_set(self) -> None:
        for c in range(self.n_classes):
            for p in range(self.passes):
                self._write_row(p, self._slot_copy(c), np.zeros(self.lanes,
                                                                dtype=np.int64))

    # -- read-back / scoring ------------------------------------------------------------

    def read_class(self, class_index: int, copy_set: bool = False) -> np.ndarray:
        """Assemble one class hypervector from its striped rows."""
        slot = (
            self._slot_copy(class_index) if copy_set
            else self._slot_active(class_index)
        )
        out = np.empty(self.dim, dtype=np.int64)
        for p in range(self.passes):
            out[p * self.lanes : (p + 1) * self.lanes] = self._read_row(p, slot)
        return out

    def score_pass(self, pass_index: int, dims: np.ndarray) -> np.ndarray:
        """Partial dot products of one pass against every active class."""
        partial = np.asarray(dims, dtype=np.int64)
        out = np.empty(self.n_classes, dtype=np.int64)
        for c in range(self.n_classes):
            words = self._read_row(pass_index, self._slot_active(c))
            out[c] = int(np.dot(words, partial))
        return out

    def norms(self) -> np.ndarray:
        """Current squared norms of the active classes."""
        out = np.empty(self.n_classes, dtype=np.float64)
        for c in range(self.n_classes):
            self.norm2_mem.issue_read(c)
            self.norm2_mem.tick()
            out[c] = float(self.norm2_mem.read_data.sum())
        return out
