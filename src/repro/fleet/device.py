"""One simulated edge device: local data, local training, costed uplink.

An :class:`EdgeDevice` owns a non-IID shard of the training set, a
:class:`~repro.platforms.device.DeviceModel` (energy/latency), an
uplink bandwidth, and optionally a
:class:`~repro.hardware.faultspec.FaultSpec` corrupting its uploads.
Per round it produces a :class:`DeviceUpdate`:

- **bootstrap round** (the global model is still all-zero): the device
  bundles its shard -- per-class integer sums of the encodings, the
  same one-hot GEMM centralized :meth:`~repro.core.classifier.
  HDClassifier.fit` uses for initialization.  Because the fleet's
  shards are a disjoint cover, these bundles sum to the centralized
  ``epochs=0`` model *bit-identically* (integer adds reordered).
- **refinement rounds**: the device seeds a local classifier with the
  broadcast global model and runs the paper's ±h retraining (via the
  Gram engine where exact) over its shard for ``epochs`` local epochs;
  the upload is the integer delta ``M_local - M_global``.

Encodings are computed once and cached (the shard is static); the cost
model charges the encode workload on first participation and the
retraining workload every round, scaled by the device's ``speed`` and
pushed through its :class:`DeviceModel` for latency/energy.  Upload
time is payload bytes over ``uplink_bps``; the aggregator compares
``train_s + upload_s`` against the round deadline to drop stragglers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import training
from repro.core.classifier import HDClassifier
from repro.core.config import ComputeConfig
from repro.core.encoders.base import Encoder
from repro.core.norms import DEFAULT_BLOCK, SubNormTable
from repro.hardware.faultspec import FaultSpec
from repro.platforms import (
    RASPBERRY_PI,
    DeviceModel,
    hdc_inference_workload,
    hdc_training_workload,
)
from repro.fleet.compression import (
    CompressedUpdate,
    UpdateCodec,
    corrupt_update,
)

__all__ = ["DeviceUpdate", "EdgeDevice"]


@dataclass
class DeviceUpdate:
    """One device's contribution to one round, with simulated costs."""

    device_id: int
    update: CompressedUpdate
    n_samples: int
    train_s: float
    upload_s: float
    energy_j: float

    @property
    def total_s(self) -> float:
        return self.train_s + self.upload_s


class EdgeDevice:
    """A fleet member: shard + compute model + uplink.

    Parameters
    ----------
    device_id:
        Stable integer identity (seeds the device's rng streams).
    X, y_idx:
        The device's shard: raw features and labels already mapped to
        *fleet-wide class indices* (the aggregator fixes ``classes``
        once; devices never see labels outside that set).
    encoder:
        The shared, already-fitted encoder (a real fleet broadcasts the
        level/id tables once at enrollment).
    device_model:
        Platform cost model; defaults to the Raspberry Pi.
    speed:
        Relative compute speed multiplier (heterogeneous fleet); only
        latency scales, energy does not.
    uplink_bps:
        Uplink bandwidth in bits/second.
    faults:
        Optional uplink fault spec; bit-flips the payload words of
        every upload (see :func:`repro.fleet.compression.corrupt_update`).
    """

    def __init__(
        self,
        device_id: int,
        X: np.ndarray,
        y_idx: np.ndarray,
        encoder: Encoder,
        device_model: Optional[DeviceModel] = None,
        speed: float = 1.0,
        uplink_bps: float = 1e6,
        faults: Optional[FaultSpec] = None,
        norm_block: int = DEFAULT_BLOCK,
        seed: int = 0,
    ):
        if not encoder.fitted:
            raise ValueError(
                f"device {device_id}: the shared encoder must be fitted "
                "before enrollment (broadcast its tables first)"
            )
        if speed <= 0.0:
            raise ValueError(f"speed must be positive, got {speed}")
        if uplink_bps <= 0.0:
            raise ValueError(f"uplink_bps must be positive, got {uplink_bps}")
        self.device_id = device_id
        self.X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        self.y_idx = np.asarray(y_idx, dtype=np.int64)
        if len(self.X) != len(self.y_idx):
            raise ValueError(
                f"device {device_id}: {len(self.X)} samples but "
                f"{len(self.y_idx)} labels"
            )
        self.encoder = encoder
        self.device_model = device_model or RASPBERRY_PI
        self.speed = float(speed)
        self.uplink_bps = float(uplink_bps)
        self.faults = faults
        self.norm_block = norm_block
        self.rng = np.random.default_rng(seed ^ (device_id * 0x9E3779B9))
        self.rounds_participated = 0
        self._encodings: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.X)

    @property
    def encodings(self) -> np.ndarray:
        """The shard's encodings (computed once, cached -- static data)."""
        if self._encodings is None:
            self._encodings = np.asarray(
                self.encoder.encode_batch(self.X), dtype=np.float64
            )
        return self._encodings

    # -- local computation ---------------------------------------------------

    def local_bundle(self, n_classes: int) -> np.ndarray:
        """Per-class encoding sums over the shard (init contribution)."""
        onehot = np.zeros((len(self.y_idx), n_classes), dtype=np.float64)
        if len(self.y_idx):
            onehot[np.arange(len(self.y_idx)), self.y_idx] = 1.0
        return onehot.T @ self.encodings if len(self.y_idx) else np.zeros(
            (n_classes, self.encoder.dim)
        )

    def local_delta(
        self,
        global_model: np.ndarray,
        classes: np.ndarray,
        epochs: int,
    ) -> np.ndarray:
        """Integer delta from retraining the global model on the shard."""
        if epochs <= 0 or len(self.y_idx) == 0:
            return np.zeros_like(global_model)
        clf = HDClassifier(
            self.encoder,
            epochs=epochs,
            shuffle=True,
            seed=int(self.rng.integers(2**31)),
            norm_block=self.norm_block,
            config=ComputeConfig(train_engine="auto"),
        )
        clf.classes_ = classes
        clf.model_ = np.asarray(global_model, dtype=np.float64).copy()
        clf.norms_ = SubNormTable(
            len(classes), self.encoder.dim, block=self.norm_block
        )
        clf.norms_.recompute(clf.model_)
        training.retrain(clf, self.encodings, self.y_idx)
        return clf.model_ - global_model

    # -- the round step ------------------------------------------------------

    def run_round(
        self,
        global_model: np.ndarray,
        classes: np.ndarray,
        codec: UpdateCodec,
        epochs: int,
    ) -> DeviceUpdate:
        """Produce this device's (possibly corrupted) costed upload."""
        bootstrap = not np.any(global_model)
        first = self.rounds_participated == 0
        if bootstrap:
            delta = self.local_bundle(len(classes))
        else:
            delta = self.local_delta(global_model, classes, epochs)
        update = corrupt_update(codec.encode(delta), self.faults, self.rng)

        n = max(len(self.X), 1)
        if bootstrap:
            work = hdc_inference_workload(self.encoder, len(classes)).scaled(n)
        else:
            work = hdc_training_workload(
                self.encoder, len(classes), n_train=n, epochs=max(epochs, 1)
            )
            if not first:
                # encodings are cached: later rounds only pay retraining
                encode = hdc_inference_workload(
                    self.encoder, len(classes)
                ).scaled(n)
                work = type(work)(
                    flops=max(work.flops - encode.flops, 0.0),
                    bitops=max(work.bitops - encode.bitops, 0.0),
                    bytes_moved=max(work.bytes_moved - encode.bytes_moved, 0.0),
                    sync_points=work.sync_points,
                    label=work.label,
                )
        self.rounds_participated += 1
        return DeviceUpdate(
            device_id=self.device_id,
            update=update,
            n_samples=len(self.X),
            train_s=self.device_model.latency_s(work) / self.speed,
            upload_s=update.nbytes * 8.0 / self.uplink_bps,
            energy_j=self.device_model.energy_j(work),
        )
