"""Non-IID data partitioning for the simulated device fleet.

Federated HDC only gets interesting when the devices see *different*
data: a device that only ever observes two of the eight classes
contributes class hypervectors the rest of the fleet cannot build.  The
standard way to synthesize that regime (Hsu et al., and every FedAvg
benchmark since) is **Dirichlet label skew**: for each class, a
Dirichlet(``alpha``) draw decides what fraction of that class's samples
each device receives.  Small ``alpha`` concentrates a class on a few
devices (pathological non-IID); large ``alpha`` approaches a uniform
IID split.

The partition is **disjoint and complete** by construction -- every
sample index lands on exactly one device -- which is what makes the
round-0 federated bundle bit-identical to centralized initialization
(the aggregator test relies on it: integer class sums over a disjoint
cover add up to the class sums over the union).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["dirichlet_shards", "shard_summary"]


def dirichlet_shards(
    y: np.ndarray,
    n_devices: int,
    alpha: float = 0.5,
    seed: int = 0,
) -> List[np.ndarray]:
    """Partition sample indices over ``n_devices`` with Dirichlet skew.

    Returns one sorted index array per device.  The arrays are disjoint
    and their union covers ``range(len(y))`` exactly; a device may
    receive zero samples under extreme skew (it then contributes nothing
    until other devices' merges reach it).

    ``alpha`` is the Dirichlet concentration: ``0.1`` is heavily
    non-IID, ``100`` is effectively IID.
    """
    if n_devices < 1:
        raise ValueError(f"need at least one device, got {n_devices}")
    if alpha <= 0.0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    y = np.asarray(y)
    rng = np.random.default_rng(seed)
    buckets: List[List[np.ndarray]] = [[] for _ in range(n_devices)]
    for cls in np.unique(y):
        idx = np.flatnonzero(y == cls)
        rng.shuffle(idx)
        props = rng.dirichlet(np.full(n_devices, alpha))
        # cumulative rounding keeps the split exact: the boundaries are
        # round(cumsum * n) so the per-device counts always sum to n
        bounds = np.round(np.cumsum(props) * len(idx)).astype(int)
        start = 0
        for dev, stop in enumerate(bounds):
            if stop > start:
                buckets[dev].append(idx[start:stop])
            start = stop
    return [
        np.sort(np.concatenate(parts)) if parts
        else np.empty(0, dtype=np.int64)
        for parts in buckets
    ]


def shard_summary(shards: List[np.ndarray], y: np.ndarray) -> Dict:
    """Skew diagnostics for a partition (reported by the fleet bench).

    ``label_skew`` is the mean total-variation distance between each
    non-empty device's label histogram and the global one: 0 for an IID
    split, approaching 1 when every device holds a single class.
    """
    y = np.asarray(y)
    classes = np.unique(y)
    global_hist = np.array(
        [np.count_nonzero(y == c) for c in classes], dtype=np.float64
    )
    global_hist /= max(global_hist.sum(), 1.0)
    sizes = [len(s) for s in shards]
    tvs = []
    for shard in shards:
        if len(shard) == 0:
            continue
        local = y[shard]
        hist = np.array(
            [np.count_nonzero(local == c) for c in classes],
            dtype=np.float64,
        )
        hist /= hist.sum()
        tvs.append(0.5 * float(np.abs(hist - global_hist).sum()))
    return {
        "devices": len(shards),
        "empty_devices": int(sum(1 for s in sizes if s == 0)),
        "samples": int(sum(sizes)),
        "min_shard": int(min(sizes)) if sizes else 0,
        "max_shard": int(max(sizes)) if sizes else 0,
        "label_skew": round(float(np.mean(tvs)), 4) if tvs else 0.0,
    }
