"""Federated on-device learning for a simulated edge fleet.

GENERIC's pitch is training *on* the edge device; this subpackage
scales that from one device to a fleet.  Thousands of simulated edge
devices (per-device compute/energy from :mod:`repro.platforms`, uplink
bit-flips from :class:`~repro.hardware.faultspec.FaultSpec`) each train
locally on a non-IID shard, and a :class:`FleetAggregator` merges
their class hypervectors under a bandwidth budget -- HDC's integer
bundling makes the merge a sum, no gradients anywhere -- then publishes
every merged model through a live :class:`~repro.serve.surface.
ServingSurface` backend so the fleet-trained model serves between
rounds.

Entry points:

- :func:`~repro.fleet.sharding.dirichlet_shards` -- Dirichlet label-skew
  partitioning (disjoint + complete);
- :class:`~repro.fleet.device.EdgeDevice` -- local bundle/retrain with
  simulated latency, energy and uplink faults;
- :mod:`repro.fleet.compression` -- full-int / sign / top-k uplink
  codecs with provable reconstruction bounds;
- :class:`FleetAggregator` / :class:`FleetConfig` -- the round
  protocol: churn, participation sampling, straggler deadlines, merge,
  publish, evaluate;
- ``python -m repro.fleet.bench`` -- accuracy vs. rounds vs.
  communicated bytes against centralized training (``BENCH_fed.json``).
"""

from repro.fleet.aggregator import FleetAggregator, FleetConfig, RoundReport
from repro.fleet.compression import (
    CompressedUpdate,
    FullIntCodec,
    SignCodec,
    TopKCodec,
    UpdateCodec,
    corrupt_update,
    make_codec,
)
from repro.fleet.device import DeviceUpdate, EdgeDevice
from repro.fleet.sharding import dirichlet_shards, shard_summary

__all__ = [
    "CompressedUpdate",
    "DeviceUpdate",
    "EdgeDevice",
    "FleetAggregator",
    "FleetConfig",
    "FullIntCodec",
    "RoundReport",
    "SignCodec",
    "TopKCodec",
    "UpdateCodec",
    "corrupt_update",
    "dirichlet_shards",
    "make_codec",
    "shard_summary",
]
