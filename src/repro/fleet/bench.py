"""Federated fleet benchmark: accuracy vs. rounds vs. communicated bytes.

Simulates a fleet of edge devices (Dirichlet non-IID shards,
heterogeneous speeds and uplinks, per-round churn, straggler deadline)
training a GENERIC model by class-hypervector merging, served live
through an :class:`~repro.serve.server.InferenceServer` between rounds,
and compares it against centralized training on the pooled data:

- **accuracy**: per-round held-out accuracy of the *deployed* model,
  vs. the centralized classifier's accuracy;
- **bytes**: cumulative uplink traffic under the chosen codec, vs. the
  bytes centralizing the raw training data would have cost;
- **liveness**: real requests are submitted to the running server
  between rounds (a fleet whose serving path stalls during merges
  fails the CI gate in ``benchmarks/bench_fed.py``).

Run as a module::

    PYTHONPATH=src python -m repro.fleet.bench                # full
    PYTHONPATH=src python -m repro.fleet.bench --quick
    PYTHONPATH=src python -m repro.fleet.bench --codec topk:256 --rounds 20

Results land in ``BENCH_fed.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.hardware.faultspec import FaultSpec
from repro.platforms import RASPBERRY_PI
from repro.serve import InferenceServer, ServeConfig
from repro.fleet.aggregator import FleetAggregator, FleetConfig
from repro.fleet.device import EdgeDevice
from repro.fleet.sharding import dirichlet_shards, shard_summary

OUT_PATH = pathlib.Path("BENCH_fed.json")

__all__ = [
    "bit_identity_check",
    "build_fleet",
    "make_fleet_workload",
    "run_bench",
    "main",
]


def make_fleet_workload(
    n_classes: int = 8,
    n_features: int = 32,
    n_train: int = 4096,
    n_eval: int = 1024,
    noise: float = 2.2,
    seed: int = 7,
):
    """Gaussian-prototype problem hard enough to leave accuracy headroom."""
    rng = np.random.default_rng(seed)
    protos = rng.normal(scale=1.5, size=(n_classes, n_features))
    y = rng.integers(0, n_classes, size=n_train)
    X = protos[y] + rng.normal(scale=noise, size=(n_train, n_features))
    y_eval = rng.integers(0, n_classes, size=n_eval)
    X_eval = protos[y_eval] + rng.normal(
        scale=noise, size=(n_eval, n_features)
    )
    return X, y, X_eval, y_eval


def build_fleet(
    X: np.ndarray,
    y: np.ndarray,
    encoder,
    n_devices: int,
    alpha: float = 0.3,
    mean_uplink_bps: float = 2e6,
    fault_rate: float = 0.0,
    fault_bits: int = 16,
    seed: int = 0,
):
    """Non-IID shards -> heterogeneous devices (speed/uplink lognormal)."""
    classes = np.unique(y)
    y_idx = np.searchsorted(classes, y)
    shards = dirichlet_shards(y, n_devices, alpha=alpha, seed=seed)
    rng = np.random.default_rng(seed + 1)
    faults = (FaultSpec(error_rate=fault_rate, bits=fault_bits)
              if fault_rate > 0.0 else None)
    devices = [
        EdgeDevice(
            i, X[shard], y_idx[shard], encoder,
            device_model=RASPBERRY_PI,
            speed=float(rng.lognormal(0.0, 0.3)),
            uplink_bps=float(mean_uplink_bps * rng.lognormal(0.0, 0.5)),
            faults=faults,
            seed=seed,
        )
        for i, shard in enumerate(shards)
    ]
    return devices, classes, shard_summary(shards, y)


def run_centralized(
    X: np.ndarray, y: np.ndarray,
    X_eval: np.ndarray, y_eval: np.ndarray,
    dim: int, epochs: int, seed: int,
) -> Dict:
    """Pool-everything baseline: accuracy + the bytes pooling costs."""
    enc = GenericEncoder(dim=dim, num_levels=16, seed=seed)
    clf = HDClassifier(enc, epochs=epochs, seed=seed)
    t0 = time.perf_counter()
    clf.fit(X, y)
    train_s = time.perf_counter() - t0
    return {
        "accuracy": round(clf.score(X_eval, y_eval), 4),
        "epochs": epochs,
        # shipping the raw float32 features + a label byte per sample
        "bytes_to_cloud": int(X.size * 4 + len(y)),
        "wall_train_s": round(train_s, 3),
    }


def _serve_live(server, model_name: str, X_eval, y_eval, n: int,
                rng: np.random.Generator) -> Dict:
    """Submit ``n`` real requests between rounds; report served quality."""
    picks = rng.integers(0, len(X_eval), size=n)
    futures = [server.submit(model_name, X_eval[i]) for i in picks]
    served, failed, correct, latencies = 0, 0, 0, []
    for i, fut in zip(picks, futures):
        try:
            pred = fut.result(timeout=30.0)
        except Exception:
            failed += 1
            continue
        served += 1
        correct += int(pred.label == y_eval[i])
        latencies.append(pred.latency)
    return {
        "served": served,
        "failed": failed,
        "accuracy": round(correct / served, 4) if served else None,
        "p95_ms": (round(float(np.percentile(latencies, 95) * 1e3), 3)
                   if latencies else None),
    }


def run_bench(
    n_devices: int = 256,
    rounds: int = 10,
    dim: int = 1024,
    codec: str = "sign",
    churn: float = 0.1,
    alpha: float = 0.3,
    participation: float = 1.0,
    local_epochs: int = 1,
    deadline_s: Optional[float] = 5.0,
    centralized_epochs: int = 3,
    n_train: int = 4096,
    n_eval: int = 1024,
    noise: float = 2.2,
    fault_rate: float = 0.0,
    live_requests: int = 32,
    seed: int = 7,
) -> Dict:
    """One full federated-vs-centralized comparison; returns the report."""
    X, y, X_eval, y_eval = make_fleet_workload(
        n_train=n_train, n_eval=n_eval, noise=noise, seed=seed,
    )
    centralized = run_centralized(
        X, y, X_eval, y_eval, dim=dim, epochs=centralized_epochs, seed=seed,
    )

    enc = GenericEncoder(dim=dim, num_levels=16, seed=seed)
    enc.fit(X)  # enrollment: level/id tables broadcast to the fleet once
    devices, classes, shards = build_fleet(
        X, y, enc, n_devices, alpha=alpha, fault_rate=fault_rate, seed=seed,
    )

    cfg = FleetConfig(
        codec=codec, churn=churn, participation=participation,
        local_epochs=local_epochs, deadline_s=deadline_s, seed=seed,
    )
    live_rng = np.random.default_rng(seed + 2)
    live: List[Dict] = []
    t0 = time.perf_counter()
    server = InferenceServer(ServeConfig(n_workers=2, max_batch=32))
    with server:
        agg = FleetAggregator(
            server, devices, classes, X_eval, y_eval, config=cfg,
        )
        round_reports = []
        for _ in range(rounds):
            report = agg.run_round()
            round_reports.append(report.to_dict())
            if agg.published and live_requests:
                live.append(_serve_live(
                    server, cfg.model_name, X_eval, y_eval,
                    live_requests, live_rng,
                ))
        fleet_stats = agg.stats()
        server.wait_idle(timeout=30.0)
    wall_s = time.perf_counter() - t0

    fed_final = round_reports[-1]["accuracy"]
    cumulative = int(np.cumsum(
        [r["bytes_merged"] for r in round_reports])[-1])
    return {
        "harness": "repro.fleet.bench",
        "config": {
            "n_devices": n_devices,
            "rounds": rounds,
            "dim": dim,
            "codec": codec,
            "churn": churn,
            "alpha": alpha,
            "participation": participation,
            "local_epochs": local_epochs,
            "deadline_s": deadline_s,
            "fault_rate": fault_rate,
            "n_train": n_train,
            "noise": noise,
            "seed": seed,
        },
        "shards": shards,
        "centralized": centralized,
        "rounds": round_reports,
        "live_serving": live,
        "fleet": fleet_stats,
        "summary": {
            "centralized_accuracy": centralized["accuracy"],
            "federated_accuracy": fed_final,
            "gap_points": round(
                100.0 * (centralized["accuracy"] - fed_final), 2),
            "federated_bytes": cumulative,
            "centralized_bytes": centralized["bytes_to_cloud"],
            "bytes_ratio": round(
                cumulative / max(centralized["bytes_to_cloud"], 1), 3),
            "sim_fleet_s": fleet_stats["sim_total_s"],
            "wall_s": round(wall_s, 3),
        },
        "numpy": np.__version__,
    }


def bit_identity_check(dim: int = 256, n_devices: int = 16,
                       seed: int = 3) -> Dict:
    """Lossless bootstrap merge == centralized init, bit for bit.

    The exactness contract behind the whole design: with the full-int
    codec, no churn and no deadline, one bootstrap round over a
    disjoint shard cover reproduces centralized ``fit(epochs=0)``
    exactly (integer class sums reordered).  Used by the CI gate.
    """
    X, y, X_eval, y_eval = make_fleet_workload(
        n_train=640, n_eval=64, seed=seed,
    )
    enc = GenericEncoder(dim=dim, num_levels=16, seed=seed)
    central = HDClassifier(
        GenericEncoder(dim=dim, num_levels=16, seed=seed), epochs=0, seed=0,
    )
    central.fit(X, y)
    enc.fit(X)
    devices, classes, _ = build_fleet(X, y, enc, n_devices, seed=seed)
    server = InferenceServer(ServeConfig(n_workers=1))
    with server:
        agg = FleetAggregator(
            server, devices, classes, config=FleetConfig(
                codec="full", churn=0.0, deadline_s=None, seed=seed,
            ),
        )
        agg.run_round()
        deployed = server.registry.get(agg.cfg.model_name).model.model_
        ok = bool(
            np.array_equal(agg.model, central.model_)
            and np.array_equal(deployed, central.model_)
        )
    return {"ok": ok, "devices": n_devices, "dim": dim}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.bench",
        description="Federated fleet vs. centralized training",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small smoke workload (CI)")
    parser.add_argument("--devices", type=int, default=256)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--codec", default="sign",
                        help="uplink codec: full, sign or topk:<k>")
    parser.add_argument("--churn", type=float, default=0.1)
    parser.add_argument("--alpha", type=float, default=0.3)
    parser.add_argument("--participation", type=float, default=1.0)
    parser.add_argument("--local-epochs", type=int, default=1)
    parser.add_argument("--deadline-s", type=float, default=5.0)
    parser.add_argument("--fault-rate", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    dim = args.dim or (512 if args.quick else 1024)
    rounds = args.rounds or (5 if args.quick else 10)
    n_train = 2048 if args.quick else 4096

    report = run_bench(
        n_devices=args.devices, rounds=rounds, dim=dim, codec=args.codec,
        churn=args.churn, alpha=args.alpha,
        participation=args.participation, local_epochs=args.local_epochs,
        deadline_s=args.deadline_s, n_train=n_train,
        fault_rate=args.fault_rate, seed=args.seed,
    )
    report["profile"] = "quick" if args.quick else "full"
    report["bit_identity"] = bit_identity_check(seed=args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    s = report["summary"]
    print(f"wrote {args.out}")
    print(
        f"centralized {s['centralized_accuracy']:.4f} vs federated "
        f"{s['federated_accuracy']:.4f} (gap {s['gap_points']:+.2f} pts) | "
        f"{s['federated_bytes'] / 1e6:.2f} MB uplink over "
        f"{len(report['rounds'])} rounds "
        f"({s['bytes_ratio']:.2f}x the raw-data upload) | "
        f"bit-identity {report['bit_identity']['ok']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
