"""The fleet round protocol: sample, train locally, merge, publish.

:class:`FleetAggregator` coordinates a population of
:class:`~repro.fleet.device.EdgeDevice` against any
:class:`~repro.serve.surface.ServingSurface` backend.  Per round:

1. **Churn + sampling** -- each device is independently offline with
   probability ``churn``; a ``participation`` fraction of the online
   devices is sampled for the round.
2. **Local work** -- every sampled device runs
   :meth:`~repro.fleet.device.EdgeDevice.run_round`: the bootstrap
   round uploads its class-hypervector bundle, later rounds upload the
   integer delta of local ±h retraining, through the configured
   :mod:`~repro.fleet.compression` codec.
3. **Straggler cut** -- devices whose simulated ``train + upload`` time
   exceeds ``deadline_s`` miss the round; their bytes are counted as
   wasted uplink but excluded from the merge.
4. **Merge** -- decoded updates are summed onto the global model
   (class-hypervector addition is the natural HDC merge: the bootstrap
   merge over a disjoint shard cover is *bit-identical* to centralized
   initialization).  ``merge="mean"`` averages refinement deltas
   instead, damping overshoot on very large fleets; bootstrap bundles
   are always summed, anything else would change the model's scale.
5. **Publish** -- the merged model is wrapped via
   :meth:`~repro.core.classifier.HDClassifier.with_model` and pushed
   through the surface's ``register``/``swap`` path, so a live server
   (threaded or process-sharded) serves the fleet-trained model between
   rounds with the usual drain semantics.
6. **Evaluate** -- the held-out set is scored through the server's
   :meth:`~repro.serve.surface.ServingSurfaceBase.predict_encoded`
   side-door (stage-1 representation computed once and cached), so the
   reported accuracy is measured against the *deployed* model, not a
   local copy.

Everything is observable: ``fleet.round`` / ``fleet.upload`` /
``fleet.merge`` spans, ``fleet_*`` counters and gauges on the
surface's metrics hub, and a ``fleet_round`` flight-recorder event per
round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.config import ComputeConfig
from repro.core.norms import DEFAULT_BLOCK, SubNormTable
from repro.obs import trace as obs_trace
from repro.serve.surface import ServingSurface
from repro.fleet.compression import UpdateCodec, make_codec
from repro.fleet.device import DeviceUpdate, EdgeDevice

__all__ = ["FleetAggregator", "FleetConfig", "RoundReport"]


@dataclass
class FleetConfig:
    """Knobs for one federated run."""

    #: deployment name the aggregator registers/swaps on the surface
    model_name: str = "fleet"
    #: uplink codec spec: ``full``, ``sign`` or ``topk:<k>``
    codec: str = "sign"
    #: local retraining epochs per refinement round
    local_epochs: int = 1
    #: fraction of *online* devices sampled each round
    participation: float = 1.0
    #: per-round probability that a device is offline (churn)
    churn: float = 0.0
    #: straggler deadline on simulated train+upload seconds (None: off)
    deadline_s: Optional[float] = None
    #: ``"sum"`` (HDC-native) or ``"mean"`` for refinement deltas
    merge: str = "sum"
    #: drain in-flight batches on the old version during publish swaps
    swap_drain: bool = True
    #: sub-norm table block for locally retrained models
    norm_block: int = DEFAULT_BLOCK
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.participation <= 1.0:
            raise ValueError(
                f"participation must be in (0, 1], got {self.participation}"
            )
        if not 0.0 <= self.churn < 1.0:
            raise ValueError(f"churn must be in [0, 1), got {self.churn}")
        if self.merge not in ("sum", "mean"):
            raise ValueError(f"merge must be 'sum' or 'mean', got {self.merge!r}")


@dataclass
class RoundReport:
    """What one round did, cost and quality-wise (JSON-friendly)."""

    round: int
    bootstrap: bool
    sampled: int
    offline: int
    stragglers: int
    merged: int
    bytes_uploaded: int
    bytes_merged: int
    sim_round_s: float
    energy_j: float
    model_version: int
    accuracy: Optional[float]
    device_ids: List[int] = field(default_factory=list, repr=False)

    def to_dict(self) -> Dict:
        return {
            "round": self.round,
            "bootstrap": self.bootstrap,
            "sampled": self.sampled,
            "offline": self.offline,
            "stragglers": self.stragglers,
            "merged": self.merged,
            "bytes_uploaded": self.bytes_uploaded,
            "bytes_merged": self.bytes_merged,
            "sim_round_s": round(self.sim_round_s, 6),
            "energy_j": round(self.energy_j, 6),
            "model_version": self.model_version,
            "accuracy": (round(self.accuracy, 4)
                         if self.accuracy is not None else None),
        }


class FleetAggregator:
    """Merge a device fleet's updates and publish through a server.

    Parameters
    ----------
    surface:
        Any started-or-startable :class:`ServingSurface` backend; the
        aggregator registers ``config.model_name`` on the first merge
        and hot-swaps every round after.
    devices:
        The fleet.  Devices must share ``classes`` (their ``y_idx``
        index into it) and a fitted encoder of one dimension.
    classes:
        The fleet-wide label set, fixed up front (a federation cannot
        infer it from any single shard).
    eval_X, eval_y:
        Optional held-out set scored through the deployed model after
        every round.
    """

    def __init__(
        self,
        surface: "ServingSurface",
        devices: Sequence[EdgeDevice],
        classes: np.ndarray,
        eval_X: Optional[np.ndarray] = None,
        eval_y: Optional[np.ndarray] = None,
        config: Optional[FleetConfig] = None,
    ):
        if not devices:
            raise ValueError("a fleet needs at least one device")
        dims = {d.encoder.dim for d in devices}
        if len(dims) != 1:
            raise ValueError(f"devices disagree on encoder dim: {sorted(dims)}")
        self.surface = surface
        self.devices = list(devices)
        self.classes = np.asarray(classes)
        self.cfg = config or FleetConfig()
        self.codec: UpdateCodec = make_codec(self.cfg.codec)
        self.rng = np.random.default_rng(self.cfg.seed)
        self.dim = next(iter(dims))
        self.model = np.zeros((len(self.classes), self.dim), dtype=np.float64)
        self.round_idx = 0
        self.published = False
        self.reports: List[RoundReport] = []
        self.eval_X = (None if eval_X is None
                       else np.atleast_2d(np.asarray(eval_X, dtype=np.float64)))
        self.eval_y = None if eval_y is None else np.asarray(eval_y)
        self._eval_repr: Optional[np.ndarray] = None
        # template for with_model publishing: a fitted-shaped classifier
        # sharing the fleet encoder (never trained itself)
        template = HDClassifier(
            self.devices[0].encoder,
            epochs=0,
            norm_block=self.cfg.norm_block,
            config=ComputeConfig(train_engine="auto"),
        )
        template.classes_ = self.classes
        template.model_ = self.model
        template.norms_ = SubNormTable(
            len(self.classes), self.dim, block=self.cfg.norm_block
        )
        self._template = template

    # -- round protocol ------------------------------------------------------

    def _sample_round(self):
        """Churn then participation sampling; returns (devices, offline)."""
        online = [d for d in self.devices
                  if self.rng.random() >= self.cfg.churn]
        offline = len(self.devices) - len(online)
        if not online:
            return [], offline
        k = max(1, int(round(self.cfg.participation * len(online))))
        if k >= len(online):
            return online, offline
        picks = self.rng.choice(len(online), size=k, replace=False)
        return [online[i] for i in sorted(picks)], offline

    def run_round(self) -> RoundReport:
        """Execute one full round: sample, collect, merge, publish, eval."""
        self.round_idx += 1
        bootstrap = not self.published
        with obs_trace.span("fleet.round", round=self.round_idx,
                            bootstrap=bootstrap) as round_sp:
            sampled, offline = self._sample_round()
            accepted: List[DeviceUpdate] = []
            stragglers = 0
            bytes_uploaded = 0
            energy = 0.0
            slowest = 0.0
            for dev in sampled:
                with obs_trace.span("fleet.upload", device=dev.device_id):
                    up = dev.run_round(
                        self.model, self.classes, self.codec,
                        self.cfg.local_epochs,
                    )
                bytes_uploaded += up.update.nbytes
                energy += up.energy_j
                if (self.cfg.deadline_s is not None
                        and up.total_s > self.cfg.deadline_s):
                    stragglers += 1
                    slowest = max(slowest, self.cfg.deadline_s)
                    continue
                slowest = max(slowest, up.total_s)
                accepted.append(up)

            bytes_merged = sum(u.update.nbytes for u in accepted)
            with obs_trace.span("fleet.merge", updates=len(accepted),
                                codec=self.codec.name):
                if accepted:
                    delta = np.zeros_like(self.model)
                    for up in accepted:
                        delta += self.codec.decode(up.update)
                    if self.cfg.merge == "mean" and not bootstrap:
                        delta /= len(accepted)
                    self.model = self.model + np.rint(delta)

            version = self._publish() if accepted or self.published else 0
            accuracy = self._evaluate()
            if round_sp.recording:
                round_sp.set(merged=len(accepted), bytes=bytes_merged)

        report = RoundReport(
            round=self.round_idx,
            bootstrap=bootstrap,
            sampled=len(sampled),
            offline=offline,
            stragglers=stragglers,
            merged=len(accepted),
            bytes_uploaded=bytes_uploaded,
            bytes_merged=bytes_merged,
            sim_round_s=slowest,
            energy_j=energy,
            model_version=version,
            accuracy=accuracy,
            device_ids=[u.device_id for u in accepted],
        )
        self.reports.append(report)
        self._record(report)
        return report

    def run(self, rounds: int) -> List[RoundReport]:
        return [self.run_round() for _ in range(rounds)]

    # -- publish / evaluate --------------------------------------------------

    def _publish(self) -> int:
        """Push the merged model through the serving surface."""
        clone = self._template.with_model(self.model)
        if not self.published:
            dep = self.surface.register(self.cfg.model_name, clone)
            self.published = True
        else:
            dep = self.surface.swap(
                self.cfg.model_name, clone, drain=self.cfg.swap_drain
            )
        return dep.version

    def _evaluate(self) -> Optional[float]:
        """Held-out accuracy against the *deployed* model version."""
        if self.eval_X is None or not self.published:
            return None
        if self._eval_repr is None:
            # stage-1 representation depends only on the (frozen) encoder,
            # so it is computed once through the deployment and reused
            dep = self.surface.registry.get(self.cfg.model_name)
            self._eval_repr = dep.encode(self.eval_X)
        preds = self.surface.predict_encoded(
            self.cfg.model_name, self._eval_repr
        )
        return float(np.mean(preds == self.eval_y))

    def _record(self, report: RoundReport) -> None:
        metrics = self.surface.metrics
        metrics.counter("fleet_rounds").inc()
        metrics.counter("fleet_bytes_uploaded").inc(report.bytes_uploaded)
        metrics.counter("fleet_bytes_merged").inc(report.bytes_merged)
        metrics.counter("fleet_stragglers").inc(report.stragglers)
        metrics.gauge("fleet_participants").set(report.merged)
        if report.accuracy is not None:
            metrics.gauge("fleet_accuracy").set(report.accuracy)
        self.surface.recorder.record_event(
            "fleet_round",
            round=report.round,
            merged=report.merged,
            stragglers=report.stragglers,
            offline=report.offline,
            bytes=report.bytes_merged,
            accuracy=report.accuracy,
            model=self.cfg.model_name,
        )

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict:
        """Run-level summary (bytes, rounds, current accuracy)."""
        return {
            "rounds": self.round_idx,
            "devices": len(self.devices),
            "codec": self.codec.describe(),
            "bytes_uploaded": int(sum(r.bytes_uploaded for r in self.reports)),
            "bytes_merged": int(sum(r.bytes_merged for r in self.reports)),
            "stragglers": int(sum(r.stragglers for r in self.reports)),
            "energy_j": float(sum(r.energy_j for r in self.reports)),
            "sim_total_s": float(sum(r.sim_round_s for r in self.reports)),
            "accuracy": (self.reports[-1].accuracy
                         if self.reports else None),
        }
