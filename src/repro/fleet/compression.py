"""Uplink codecs: what a device's model update costs on the wire.

A round's upload is an integer delta matrix ``(n_classes, dim)`` --
the difference between the device's locally-retrained class
hypervectors and the global model it started from (the paper's ±h
update rule only ever adds/subtracts integer encodings, so deltas are
exactly integer-valued).  The three codecs trade bytes for fidelity:

- :class:`FullIntCodec` -- int32 per dimension, lossless.  The
  reference budget: ``4 * n_classes * dim`` bytes per upload.
- :class:`SignCodec` -- one sign bit per dimension plus one int32
  scale per class row (``s = round(mean |row|)``, clamped to
  ``max |row|``).  ~32x smaller; the per-entry reconstruction error is
  bounded by the row's max magnitude (:meth:`SignCodec.error_bound`),
  which the lossy-merge property test checks.
- :class:`TopKCodec` -- the ``k`` largest-magnitude entries per row,
  transmitted exactly (int32 index + int32 value); everything else is
  decoded as zero.  Lossless whenever a row has <= ``k`` nonzeros.

:func:`corrupt_update` models an unreliable uplink: it applies a
:class:`~repro.hardware.faultspec.FaultSpec`'s independent per-bit
flips to the integer words actually on the wire (values for full/top-k
payloads, sign bits for sign payloads), reusing the repo's one fault
model instead of inventing a channel model here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.hardware.faultspec import FaultSpec, inject_bitflips

__all__ = [
    "CompressedUpdate",
    "FullIntCodec",
    "SignCodec",
    "TopKCodec",
    "UpdateCodec",
    "corrupt_update",
    "make_codec",
]


@dataclass
class CompressedUpdate:
    """One device's encoded upload: payload arrays + wire size."""

    codec: str
    shape: tuple
    payload: Dict[str, np.ndarray]
    nbytes: int


class UpdateCodec:
    """Encode/decode an integer delta matrix for the uplink."""

    name: str = "base"
    lossless: bool = False

    def encode(self, delta: np.ndarray) -> CompressedUpdate:
        raise NotImplementedError

    def decode(self, update: CompressedUpdate) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> Dict:
        return {"name": self.name, "lossless": self.lossless}


class FullIntCodec(UpdateCodec):
    """Lossless int32 transfer of the whole delta matrix."""

    name = "full"
    lossless = True

    def encode(self, delta: np.ndarray) -> CompressedUpdate:
        values = np.rint(np.asarray(delta)).astype(np.int32)
        return CompressedUpdate(
            codec=self.name, shape=values.shape,
            payload={"values": values}, nbytes=4 * values.size,
        )

    def decode(self, update: CompressedUpdate) -> np.ndarray:
        return update.payload["values"].astype(np.float64)


class SignCodec(UpdateCodec):
    """One bit per dimension plus a per-class integer scale.

    Decoded entries are ``s_c * sign(delta)`` with
    ``s_c = clip(round(mean |row_c| over nonzeros), 1, max |row_c|)``,
    so every reconstructed entry differs from the original by at most
    ``max |row_c|`` (zeros decode exactly: their sign is zero).
    """

    name = "sign"
    lossless = False

    def encode(self, delta: np.ndarray) -> CompressedUpdate:
        values = np.rint(np.asarray(delta)).astype(np.int64)
        mag = np.abs(values)
        row_max = mag.max(axis=1)
        nnz = np.count_nonzero(values, axis=1)
        mean_mag = mag.sum(axis=1) / np.maximum(nnz, 1)
        scales = np.clip(
            np.rint(mean_mag), 1, np.maximum(row_max, 1)
        ).astype(np.int32)
        scales[nnz == 0] = 0
        signs = np.sign(values).astype(np.int8)
        # wire size: one bit of sign + one presence bit per dimension
        # (zero entries must be distinguishable), plus the row scales
        nbits = 2 * values.size
        return CompressedUpdate(
            codec=self.name, shape=values.shape,
            payload={"signs": signs, "scales": scales},
            nbytes=(nbits + 7) // 8 + 4 * len(scales),
        )

    def decode(self, update: CompressedUpdate) -> np.ndarray:
        signs = update.payload["signs"].astype(np.float64)
        return signs * update.payload["scales"][:, None].astype(np.float64)

    @staticmethod
    def error_bound(delta: np.ndarray) -> np.ndarray:
        """Per-row ∞-norm bound on ``|decode(encode(delta)) - delta|``."""
        return np.abs(np.rint(np.asarray(delta))).max(axis=1)


class TopKCodec(UpdateCodec):
    """Exact transfer of the ``k`` largest-magnitude entries per row."""

    name = "topk"
    lossless = False

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"top-k needs k >= 1, got {k}")
        self.k = int(k)

    def encode(self, delta: np.ndarray) -> CompressedUpdate:
        values = np.rint(np.asarray(delta)).astype(np.int32)
        k = min(self.k, values.shape[1])
        # argpartition per row: indices of the k largest magnitudes
        idx = np.argpartition(np.abs(values), -k, axis=1)[:, -k:]
        kept = np.take_along_axis(values, idx, axis=1)
        return CompressedUpdate(
            codec=f"{self.name}:{self.k}", shape=values.shape,
            payload={"indices": idx.astype(np.int32), "values": kept},
            nbytes=8 * kept.size,
        )

    def decode(self, update: CompressedUpdate) -> np.ndarray:
        out = np.zeros(update.shape, dtype=np.float64)
        np.put_along_axis(
            out, update.payload["indices"].astype(np.int64),
            update.payload["values"].astype(np.float64), axis=1,
        )
        return out

    def describe(self) -> Dict:
        return {"name": self.name, "lossless": self.lossless, "k": self.k}


def make_codec(spec: str) -> UpdateCodec:
    """Codec from a CLI-style spec: ``full``, ``sign`` or ``topk:64``."""
    name, _, arg = spec.partition(":")
    if name == "full":
        return FullIntCodec()
    if name == "sign":
        return SignCodec()
    if name == "topk":
        if not arg:
            raise ValueError("topk codec needs a k, e.g. 'topk:64'")
        return TopKCodec(int(arg))
    raise ValueError(
        f"unknown codec {spec!r}; choose full, sign or topk:<k>"
    )


def corrupt_update(
    update: CompressedUpdate,
    spec: Optional[FaultSpec],
    rng: np.random.Generator,
) -> CompressedUpdate:
    """Flip bits of the on-wire integer words per the fault spec.

    Values (full / top-k payloads) are clipped into the spec's
    ``bits``-bit signed range first -- a real uplink would saturate the
    word -- then take independent per-bit flips; sign payloads flip the
    single stored sign bit (``bits=1`` semantics).  Returns a new
    update; the input payload is never mutated.
    """
    if spec is None or not spec.active:
        return update
    payload = dict(update.payload)
    if "values" in payload:
        lo = -(1 << (spec.bits - 1))
        hi = (1 << (spec.bits - 1)) - 1
        clipped = np.clip(payload["values"], lo, hi)
        payload["values"] = inject_bitflips(
            clipped, spec.bits, spec.error_rate, rng
        ).astype(np.int32)
    if "signs" in payload:
        signs = payload["signs"].astype(np.int64)
        flips = rng.random(signs.shape) < spec.error_rate
        payload["signs"] = np.where(flips, -signs, signs).astype(np.int8)
    return CompressedUpdate(
        codec=update.codec, shape=update.shape,
        payload=payload, nbytes=update.nbytes,
    )
