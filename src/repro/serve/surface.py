"""The one serving surface both server backends satisfy.

Three PRs of serving growth (threaded :class:`~repro.serve.server.
InferenceServer`, process-sharded :class:`~repro.serve.sharded.server.
ShardedServer`, and their consumers in :mod:`repro.stream.loop`,
:mod:`repro.serve.bench` and now :mod:`repro.fleet`) converged on the
same call surface by copy-paste and duck-typing -- ``getattr(server,
"workers", None)`` in the bench, ``getattr(server, "ladder", None)`` in
the stream loop, two hand-maintained ``stats()`` assemblies that had
already drifted (the sharded one grew ``shards``/``router`` keys the
thread one never had).  This module makes the contract explicit:

- :class:`ServingSurface` -- a :func:`typing.runtime_checkable`
  :class:`~typing.Protocol` naming the methods and attributes a serving
  backend must provide.  Anything that drives "a server" (StreamLoop,
  the benches, the fleet aggregator) types against this, not against a
  concrete class.
- :class:`ServingSurfaceBase` -- the shared implementation both servers
  inherit: request admission (``submit``), the synchronous and async
  conveniences (``predict`` / ``predict_many`` / ``asubmit`` /
  ``apredict``), the registry side-door ``predict_encoded``, the
  context-manager lifecycle, and the canonical ``stats()`` assembly.
- :data:`STATS_REQUIRED_KEYS` / :data:`STATS_OPTIONAL_KEYS` /
  :func:`validate_stats` -- the ``stats()`` schema contract, enforced
  by a shared conformance test instead of per-server snapshots.

The schema: every backend's ``stats()`` carries exactly the required
top-level keys (metric families + ``queue`` / ``policy`` /
``deployments`` / ``resilience`` / ``slo`` / ``recorder``); a sharded
backend may add the optional ``shards`` / ``shard_metrics`` /
``router`` keys; nothing else is allowed at the top level.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Future
from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

import numpy as np

from repro.obs import distributed as obs_distributed
from repro.obs import trace as obs_trace
from repro.serve.errors import Backpressure
from repro.serve.queue import QueueFull, Request
from repro.serve.registry import Deployment, Model
from repro.serve.workers import Prediction

__all__ = [
    "STATS_OPTIONAL_KEYS",
    "STATS_REQUIRED_KEYS",
    "ServingSurface",
    "ServingSurfaceBase",
    "validate_stats",
]

#: every backend's ``stats()`` must carry exactly these top-level keys
STATS_REQUIRED_KEYS = frozenset({
    "counters", "gauges", "histograms",          # the metrics hub families
    "queue", "policy", "deployments",            # serving state
    "resilience", "slo", "recorder",             # failure-handling state
})

#: a sharded backend may additionally carry these (and only these)
STATS_OPTIONAL_KEYS = frozenset({"shards", "shard_metrics", "router"})

#: per-entry schema of the nested required dicts
_QUEUE_KEYS = frozenset({"depth", "maxsize"})
_POLICY_KEYS = frozenset({
    "level", "max_level_seen", "shed_events", "recover_events",
    "recent_p95_s",
})
_RESILIENCE_KEYS = frozenset({
    "breakers", "ladder", "retry", "worker_restarts", "chaos",
})
#: every deployment entry carries at least these (backends may add more,
#: e.g. the sharded server's segment/epoch/model_bytes)
_DEPLOYMENT_KEYS = frozenset({
    "kind", "dim", "min_dim", "version", "serving_dim", "degraded",
})


def validate_stats(snap: Dict) -> None:
    """Raise ``ValueError`` unless ``snap`` conforms to the stats schema.

    Checked by the shared conformance test against both serving
    backends, and usable by any consumer that wants to fail fast on a
    foreign backend's snapshot.
    """
    keys = set(snap)
    missing = STATS_REQUIRED_KEYS - keys
    if missing:
        raise ValueError(f"stats() missing required keys: {sorted(missing)}")
    unknown = keys - STATS_REQUIRED_KEYS - STATS_OPTIONAL_KEYS
    if unknown:
        raise ValueError(f"stats() has unknown top-level keys: "
                         f"{sorted(unknown)}")
    if set(snap["queue"]) != _QUEUE_KEYS:
        raise ValueError(f"stats()['queue'] keys {sorted(snap['queue'])} "
                         f"!= {sorted(_QUEUE_KEYS)}")
    if set(snap["policy"]) != _POLICY_KEYS:
        raise ValueError(f"stats()['policy'] keys {sorted(snap['policy'])} "
                         f"!= {sorted(_POLICY_KEYS)}")
    if set(snap["resilience"]) != _RESILIENCE_KEYS:
        raise ValueError(
            f"stats()['resilience'] keys {sorted(snap['resilience'])} "
            f"!= {sorted(_RESILIENCE_KEYS)}")
    for name, dep in snap["deployments"].items():
        short = _DEPLOYMENT_KEYS - set(dep)
        if short:
            raise ValueError(
                f"stats()['deployments'][{name!r}] missing {sorted(short)}")


@runtime_checkable
class ServingSurface(Protocol):
    """What it means to be a serving backend.

    Satisfied structurally by :class:`~repro.serve.server.
    InferenceServer` and :class:`~repro.serve.sharded.server.
    ShardedServer` (enforced by the conformance test, not just by
    ``isinstance``).  Consumers -- :class:`~repro.stream.loop.
    StreamLoop`, :class:`~repro.fleet.aggregator.FleetAggregator`, the
    load benches -- accept any object with this surface.
    """

    # -- collaborating state every backend exposes --------------------------
    registry: object       # ModelRegistry mirror (get/names/swap)
    metrics: object        # MetricsHub (counter/gauge/histogram/registry)
    policy: object         # LoadShedPolicy (level, recent_p95)
    ladder: object         # DegradationLadder (tier, add_dim_shed_hook)
    recorder: object       # FlightRecorder (record_event, dump)
    config: object         # ServeConfig-like

    # -- deployments --------------------------------------------------------
    def register(self, name: str, model: Model, **kwargs) -> Deployment: ...

    def swap(self, name: str, model: Model,
             dim_order: Optional[np.ndarray] = None,
             drain: bool = True, **kwargs) -> Deployment: ...

    # -- lifecycle ----------------------------------------------------------
    def start(self): ...

    def stop(self, timeout: Optional[float] = 5.0) -> None: ...

    # -- request path -------------------------------------------------------
    def submit(self, model: str, x: np.ndarray,
               deadline: Optional[float] = None) -> "Future[Prediction]": ...

    def predict(self, model: str, x: np.ndarray,
                timeout: Optional[float] = None,
                deadline: Optional[float] = None) -> object: ...

    def predict_many(self, model: str, X: Sequence[np.ndarray],
                     timeout: Optional[float] = None,
                     deadline: Optional[float] = None) -> List[Prediction]: ...

    def predict_encoded(self, model: str, encodings: np.ndarray,
                        dim: Optional[int] = None) -> np.ndarray: ...

    # -- introspection ------------------------------------------------------
    def stats(self) -> Dict: ...

    def worker_utilization(self) -> Dict[str, List[float]]: ...

    def render_prometheus(self) -> str: ...

    def wait_idle(self, timeout: float = 10.0,
                  poll: float = 0.005) -> bool: ...


class ServingSurfaceBase:
    """Shared :class:`ServingSurface` implementation for real backends.

    Subclasses provide the transport (thread pool / process shards) and
    these hooks:

    - attributes ``registry``, ``metrics``, ``policy``, ``ladder``,
      ``queue``, ``scheduler``, ``recorder``, ``slo``, ``chaos``,
      ``config``, ``_started``;
    - :meth:`_breaker_list` -- the per-worker/shard circuit breakers;
    - :meth:`_restart_count` -- workers/shards respawned so far;
    - :meth:`_deployment_extra` -- backend-specific per-deployment
      stats fields;
    - :meth:`_extra_stats` -- backend-specific optional top-level keys
      (must stay within :data:`STATS_OPTIONAL_KEYS`).
    """

    # -- request admission (shared verbatim by both backends) ---------------

    def submit(self, model: str, x: np.ndarray,
               deadline: Optional[float] = None) -> "Future[Prediction]":
        """Enqueue one prediction; returns a future of :class:`Prediction`.

        ``deadline`` is a per-request latency budget in seconds
        (defaults to ``config.default_deadline``); once it expires the
        request is shed with :class:`~repro.serve.errors.
        DeadlineExceeded` instead of served.  Raises
        :class:`~repro.serve.queue.QueueFull` when the bounded queue
        rejects the request and its subclass :class:`~repro.serve.
        errors.Backpressure` at the ladder's rejecting tier.
        """
        if not self._started:
            raise RuntimeError(
                f"{type(self).__name__}.submit() before start()")
        if model not in self.registry:
            raise KeyError(
                f"no deployment named {model!r}; registered: "
                f"{self.registry.names()}"
            )
        if self.ladder.rejecting:
            self.metrics.counter("degraded_rejections").inc()
            raise Backpressure(
                "server is at degradation tier "
                f"{self.ladder.tier} ({self.ladder.tier_name}); "
                "request rejected"
            )
        if deadline is None:
            deadline = self.config.default_deadline
        abs_deadline = (None if deadline is None
                        else time.monotonic() + deadline)
        # mint the request's distributed trace identity only while
        # tracing is on: the untraced path stays id-allocation free
        ctx = (obs_distributed.new_trace()
               if obs_trace.tracing_enabled() else None)
        req = Request(x=np.asarray(x, dtype=np.float64), model=model,
                      deadline=abs_deadline, ctx=ctx)
        try:
            self.queue.put(req)
        except QueueFull:
            self.metrics.counter("rejected").inc()
            raise
        self.metrics.counter("submitted").inc()
        return req.future

    def asubmit(self, model: str, x: np.ndarray,
                deadline: Optional[float] = None) -> "asyncio.Future":
        """``await``-able submit: the same future, asyncio-wrapped."""
        return asyncio.wrap_future(self.submit(model, x, deadline=deadline))

    async def apredict(self, model: str, x: np.ndarray,
                       deadline: Optional[float] = None) -> object:
        """Async single prediction; returns the label only."""
        return (await self.asubmit(model, x, deadline=deadline)).label

    def predict(self, model: str, x: np.ndarray,
                timeout: Optional[float] = None,
                deadline: Optional[float] = None) -> object:
        """Synchronous single prediction; returns the label only."""
        return self.submit(model, x, deadline=deadline).result(
            timeout=timeout
        ).label

    def predict_many(
        self, model: str, X: Sequence[np.ndarray],
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> List[Prediction]:
        """Submit a whole batch and gather the resolved predictions."""
        futures = [self.submit(model, x, deadline=deadline)
                   for x in np.atleast_2d(np.asarray(X))]
        return [f.result(timeout=timeout) for f in futures]

    def predict_encoded(self, model: str, encodings: np.ndarray,
                        dim: Optional[int] = None) -> np.ndarray:
        """Search pre-encoded queries against the current model version.

        The registry side-door: runs stage-2 associative search
        directly on the caller's thread, bypassing the queue, batcher,
        shedding and retry machinery.  ``encodings`` must be the
        deployment's stage-1 representation (float encodings for a
        classifier deployment, packed query words for a packed one --
        i.e. whatever :meth:`~repro.serve.registry.Deployment.encode`
        produces).  The call is bracketed with
        :meth:`~repro.serve.registry.Deployment.serving`, so drained
        hot swaps still account for it.  Used by the fleet aggregator's
        between-round evaluation and by offline replay tooling; live
        traffic should go through :meth:`submit`.
        """
        dep = self.registry.get(model)
        with dep.serving():
            return dep.search(np.atleast_2d(np.asarray(encodings)), dim=dim)

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self):
        return self if self._started else self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- stats assembly (the one schema) ------------------------------------

    def _breaker_list(self):
        raise NotImplementedError

    def _restart_count(self) -> int:
        raise NotImplementedError

    def _deployment_extra(self, name: str, dep: Deployment) -> Dict:
        """Backend-specific additions to one deployment's stats entry."""
        return {}

    def _extra_stats(self) -> Dict:
        """Backend-specific optional top-level keys (see schema)."""
        return {}

    def stats(self) -> Dict:
        """JSON-serializable snapshot conforming to the shared schema.

        Top-level keys are exactly :data:`STATS_REQUIRED_KEYS` plus
        whatever subset of :data:`STATS_OPTIONAL_KEYS` the backend's
        :meth:`_extra_stats` contributes -- checked by
        :func:`validate_stats` in the conformance tests.
        """
        snap = self.metrics.snapshot()
        snap["queue"] = {"depth": self.queue.depth(),
                         "maxsize": self.queue.maxsize}
        snap["policy"] = {
            "level": self.policy.level,
            "max_level_seen": self.policy.max_level_seen,
            "shed_events": self.policy.shed_events,
            "recover_events": self.policy.recover_events,
            "recent_p95_s": self.policy.recent_p95(),
        }
        snap["deployments"] = {}
        for name in self.registry.names():
            dep = self.registry.get(name)
            entry = {
                "kind": dep.kind,
                "dim": dep.dim,
                "min_dim": dep.min_dim,
                "version": dep.version,
                "serving_dim": dep.dim_for_level(self.policy.level),
                "degraded": dep.degraded,
            }
            entry.update(self._deployment_extra(name, dep))
            snap["deployments"][name] = entry
        snap["resilience"] = {
            "breakers": [b.stats() for b in self._breaker_list()],
            "ladder": self.ladder.stats(),
            "retry": {
                "scheduled": self.scheduler.scheduled,
                "requeued": self.scheduler.requeued,
                "pending": self.scheduler.pending(),
            },
            "worker_restarts": self._restart_count(),
            "chaos": self.chaos.stats() if self.chaos is not None else None,
        }
        snap["slo"] = self.slo.snapshot() if self.slo is not None else None
        snap["recorder"] = self.recorder.snapshot()
        extra = self._extra_stats()
        illegal = set(extra) - STATS_OPTIONAL_KEYS
        if illegal:
            raise RuntimeError(
                f"{type(self).__name__}._extra_stats() produced keys "
                f"outside the stats schema: {sorted(illegal)}"
            )
        snap.update(extra)
        return snap
