"""Worker pool: batched encode + search, stage timing, future resolution.

Each worker loops: pull a micro-batch, group it by target model, run
the deployment's two inference stages on the coalesced feature matrix,
resolve every request's future with a :class:`Prediction`, then let the
shed policy observe the post-batch queue depth.

The encode stage runs whatever engine the deployment selected
(``ServeConfig.engine`` / ``register(engine=...)``): with the GENERIC
encoders that defaults to the bit-packed XOR kernel of
:mod:`repro.core.kernels`, so the worker threads spend their time in
GIL-releasing NumPy word ops rather than int8 multiplies.

Per-stage latency histograms (``queue_wait``, ``encode``, ``search``,
``total``) land in the shared :class:`~repro.serve.metrics.MetricsHub`;
the ``shed_level`` gauge mirrors the policy so a snapshot shows the
degradation state at a glance.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs import trace as obs_trace
from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import MetricsHub
from repro.serve.policy import LoadShedPolicy
from repro.serve.queue import Request
from repro.serve.registry import ModelRegistry


@dataclass
class Prediction:
    """What a resolved request future holds."""

    label: object
    model: str
    version: int
    dim: int
    shed_level: int
    latency: float


class WorkerPool:
    """N threads draining one batcher into the registry's deployments."""

    def __init__(
        self,
        batcher: MicroBatcher,
        registry: ModelRegistry,
        policy: LoadShedPolicy,
        metrics: MetricsHub,
        n_workers: int = 2,
        poll_interval: float = 0.05,
    ):
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.batcher = batcher
        self.registry = registry
        self.policy = policy
        self.metrics = metrics
        self.n_workers = n_workers
        self.poll_interval = poll_interval
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("worker pool already started")
        self._stop.clear()
        for i in range(self.n_workers):
            t = threading.Thread(
                target=self._run, name=f"serve-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        self._stop.set()
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = []

    @property
    def running(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    # -- the serving loop ---------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self.batcher.next_batch(timeout=self.poll_interval)
            if not batch:
                if self._stop.is_set() or self.batcher.queue.closed:
                    return
                continue
            self._serve_batch(batch)
            # adapt from the load this batch left behind
            level = self.policy.observe(self.batcher.queue.depth())
            self.metrics.gauge("shed_level").set(level)
            self.metrics.gauge("queue_depth").set(self.batcher.queue.depth())

    def _serve_batch(self, batch: List[Request]) -> None:
        self.metrics.histogram("batch_size").record(len(batch))
        by_model = {}
        for req in batch:
            by_model.setdefault(req.model, []).append(req)
        for model_name, requests in by_model.items():
            self._serve_group(model_name, requests)

    def _serve_group(self, model_name: str, requests: List[Request]) -> None:
        t_start = time.monotonic()
        for req in requests:
            self.metrics.histogram("queue_wait").record(
                t_start - req.enqueue_t
            )
        try:
            dep = self.registry.get(model_name)
            level = self.policy.level
            dim = dep.dim_for_level(level)
            X = np.stack([np.asarray(r.x, dtype=np.float64) for r in requests])

            t0 = time.monotonic()
            with obs_trace.span(
                "serve.encode", model=model_name, batch=len(requests)
            ):
                encoded = dep.encode(X)
            t1 = time.monotonic()
            with obs_trace.span(
                "serve.search", model=model_name, batch=len(requests),
                dim=dim,
            ) as sp:
                labels = dep.search(encoded, dim=dim)
                if sp.recording:
                    # similarity against every class over the served
                    # prefix: one MAC per (request, class, dimension)
                    if dep.kind == "packed":
                        n_classes = len(dep.model.class_words)
                    else:
                        n_classes = dep.model.n_classes
                    macs = len(requests) * n_classes * dim
                    sp.add_ops(add_ops=macs, mul_ops=macs,
                               mem_bytes=n_classes * dim * 8)
            t2 = time.monotonic()
        except BaseException as exc:  # resolve futures, never kill the worker
            for req in requests:
                if not req.future.cancelled():
                    req.future.set_exception(exc)
            self.metrics.counter("errors").inc(len(requests))
            return

        self.metrics.histogram("encode").record(t1 - t0)
        self.metrics.histogram("search").record(t2 - t1)
        if dim < dep.dim:
            self.metrics.counter("shed_predictions").inc(len(requests))
        done = time.monotonic()
        for req, label in zip(requests, labels):
            latency = done - req.enqueue_t
            self.metrics.histogram("total").record(latency)
            self.policy.record_latency(latency)
            if not req.future.cancelled():
                req.future.set_result(Prediction(
                    label=label,
                    model=dep.name,
                    version=dep.version,
                    dim=dim,
                    shed_level=level,
                    latency=latency,
                ))
        self.metrics.counter("served").inc(len(requests))
