"""Worker pool: batched encode + search, resilience, future resolution.

Each worker loops: consult its circuit breaker, pull a micro-batch,
group it by target model, run the deployment's two inference stages on
the coalesced feature matrix, resolve every request's future with a
:class:`Prediction`, then let the shed policy observe the post-batch
queue depth.

The encode stage runs whatever engine the deployment selected
(``ServeConfig.config.engine`` / ``register(engine=...)``): with the
GENERIC encoders that defaults to the bit-packed XOR kernel of
:mod:`repro.core.kernels`, so the worker threads spend their time in
GIL-releasing NumPy word ops rather than int8 multiplies.

Resilience wiring (the fault path, all optional):

- every worker owns a :class:`~repro.serve.resilience.breaker.
  CircuitBreaker`; an open breaker makes that worker sit out while the
  rest of the pool drains the shared queue;
- a :class:`~repro.serve.resilience.chaos.ChaosPolicy` may inject
  transient faults, latency, worker kills and VOS-style class-memory
  bit flips (:meth:`Deployment.search` then scores against a corrupted
  clone);
- failures resolve futures with structured
  :class:`~repro.serve.errors.ServeError` subclasses -- retryable ones
  re-enter the queue through the :class:`~repro.serve.resilience.retry.
  RetryScheduler` when the deadline budget allows;
- expired requests are shed (``DeadlineExceeded``) instead of served;
- a supervisor thread respawns killed workers, exports per-worker
  ``breaker_state`` gauges and drives the
  :class:`~repro.serve.resilience.degrade.DegradationLadder`.

Per-stage latency histograms (``queue_wait``, ``encode``, ``search``,
``total``) land in the shared :class:`~repro.serve.metrics.MetricsHub`;
the ``shed_level`` gauge mirrors the policy so a snapshot shows the
degradation state at a glance.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.obs import distributed as obs_distributed
from repro.obs import trace as obs_trace
from repro.serve.batcher import MicroBatcher
from repro.serve.errors import (
    DeadlineExceeded,
    RetriesExhausted,
    ServeError,
    WorkerError,
    WorkerKilled,
)
from repro.serve.metrics import MetricsHub
from repro.serve.policy import LoadShedPolicy
from repro.serve.queue import QueueClosed, Request
from repro.serve.registry import ModelRegistry
from repro.serve.resilience.breaker import BreakerConfig, CircuitBreaker


@dataclass
class Prediction:
    """What a resolved request future holds."""

    label: object
    model: str
    version: int
    dim: int
    shed_level: int
    latency: float
    #: retries burned before this answer (0 = served first try)
    attempts: int = 0
    #: shard process that served the request (None on the thread server)
    shard: Optional[int] = None
    #: 16-hex trace id when the request was traced (None otherwise) --
    #: the key to find this request's spans in an exported JSONL trace
    trace_id: Optional[str] = None


class WorkerPool:
    """N threads draining one batcher into the registry's deployments."""

    def __init__(
        self,
        batcher: MicroBatcher,
        registry: ModelRegistry,
        policy: LoadShedPolicy,
        metrics: MetricsHub,
        n_workers: int = 2,
        poll_interval: float = 0.05,
        chaos=None,
        breaker_config: Optional[BreakerConfig] = None,
        retry_policy=None,
        retry_scheduler=None,
        ladder=None,
        slo=None,
        recorder=None,
    ):
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.batcher = batcher
        self.registry = registry
        self.policy = policy
        self.metrics = metrics
        self.n_workers = n_workers
        self.poll_interval = poll_interval
        self.chaos = chaos
        self.retry_policy = retry_policy
        self.scheduler = retry_scheduler
        self.ladder = ladder
        self.slo = slo
        self.recorder = recorder
        self.breakers = [
            CircuitBreaker(breaker_config, name=f"worker-{i}")
            for i in range(n_workers)
        ]
        self._breaker_gauge = metrics.registry.gauge(
            "breaker_state",
            help="0=closed 1=half-open 2=open, per worker",
            labels=("worker",),
        )
        self._threads: Dict[int, threading.Thread] = {}
        self._thread_lock = threading.Lock()
        self._supervisor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.worker_restarts = 0
        # per-worker utilization accounting (busy seconds / batches
        # served), so the bench can report how evenly load spreads
        self._util_lock = threading.Lock()
        self._busy_seconds = [0.0] * n_workers
        self._served_by_worker = [0] * n_workers

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        with self._thread_lock:
            if self._threads:
                raise RuntimeError("worker pool already started")
            self._stop.clear()
            for i in range(self.n_workers):
                self._threads[i] = self._spawn(i)
        self._supervisor = threading.Thread(
            target=self._supervise, name="serve-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn(self, worker_id: int) -> threading.Thread:
        t = threading.Thread(
            target=self._run, args=(worker_id,),
            name=f"serve-worker-{worker_id}", daemon=True,
        )
        t.start()
        return t

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        self._stop.set()
        supervisor, self._supervisor = self._supervisor, None
        if supervisor is not None:
            supervisor.join(timeout=timeout)
        with self._thread_lock:
            threads = list(self._threads.values())
            self._threads = {}
        for t in threads:
            t.join(timeout=timeout)

    @property
    def running(self) -> bool:
        with self._thread_lock:
            return any(t.is_alive() for t in self._threads.values())

    # -- supervision --------------------------------------------------------

    def _supervise(self) -> None:
        """Respawn dead workers, export breaker gauges, drive the ladder."""
        prev_codes = [b.state_code for b in self.breakers]
        prev_tier = self.ladder.tier if self.ladder is not None else 0
        while not self._stop.wait(self.poll_interval):
            if self.batcher.queue.closed:
                return
            with self._thread_lock:
                if self._stop.is_set():
                    return
                for i, t in list(self._threads.items()):
                    if not t.is_alive():
                        self.worker_restarts += 1
                        self.metrics.counter("worker_restarts").inc()
                        if self.recorder is not None:
                            self.recorder.record_event(
                                "worker_respawn", worker=i
                            )
                        self._threads[i] = self._spawn(i)
            for i, breaker in enumerate(self.breakers):
                code = breaker.state_code
                self._breaker_gauge.labels(worker=str(i)).set(code)
                if code != prev_codes[i]:
                    if self.recorder is not None:
                        self.recorder.record_event(
                            "breaker_transition", worker=i,
                            state=breaker.state, code=code,
                        )
                    prev_codes[i] = code
            if self.ladder is not None:
                self.ladder.observe(self.breakers)
            if self.slo is not None:
                self.slo.evaluate()
            if self.ladder is not None and self.recorder is not None:
                tier = self.ladder.tier
                if tier != prev_tier:
                    self.recorder.record_event(
                        "ladder_tier", old=prev_tier, new=tier
                    )
                    prev_tier = tier

    # -- the serving loop ---------------------------------------------------

    def _run(self, worker_id: int = 0) -> None:
        breaker = self.breakers[worker_id]
        while True:
            if not breaker.allow():
                # open breaker: sit out, let the rest of the pool drain
                if self._stop.is_set() or self.batcher.queue.closed:
                    return
                time.sleep(self.poll_interval)
                continue
            batch = self.batcher.next_batch(timeout=self.poll_interval)
            if not batch:
                if self._stop.is_set() or self.batcher.queue.closed:
                    return
                continue
            try:
                self._serve_batch(worker_id, batch)
            except WorkerKilled:
                # the thread dies like a crashed worker would; the
                # supervisor respawns a replacement (the postmortem
                # bundle was dumped where the batch was still in hand)
                self.metrics.counter("worker_kills").inc()
                return
            # adapt from the load this batch left behind
            level = self.policy.observe(self.batcher.queue.depth())
            self.metrics.gauge("shed_level").set(level)
            self.metrics.gauge("queue_depth").set(self.batcher.queue.depth())

    def worker_utilization(self) -> Dict[str, List[float]]:
        """Per-worker busy time and served-request counts (snapshot)."""
        with self._util_lock:
            return {"busy_seconds": list(self._busy_seconds),
                    "served": list(self._served_by_worker)}

    def _serve_batch(self, worker_id: int, batch: List[Request]) -> None:
        t_batch = time.monotonic()
        try:
            self._serve_batch_inner(worker_id, batch)
        finally:
            with self._util_lock:
                self._busy_seconds[worker_id] += time.monotonic() - t_batch
                self._served_by_worker[worker_id] += len(batch)

    def _serve_batch_inner(self, worker_id: int,
                           batch: List[Request]) -> None:
        self.metrics.histogram("batch_size").record(len(batch))
        by_model: Dict[str, List[Request]] = {}
        for req in batch:
            by_model.setdefault(req.model, []).append(req)
        try:
            for model_name, requests in by_model.items():
                self._serve_group(worker_id, model_name, requests)
        except WorkerKilled as kill:
            # the worker is going down mid-batch: every request it was
            # still holding must be retried or failed, never left as a
            # hung future
            err = WorkerError(
                f"worker {worker_id} died mid-batch",
                worker=worker_id, retryable=True, cause=kill,
            )
            for requests in by_model.values():
                for req in requests:
                    if not req.future.done():
                        self._fail_or_retry(req, err)
            if self.recorder is not None:
                affected = next(
                    (obs_distributed.fmt_id(r.ctx.trace_id)
                     for reqs in by_model.values() for r in reqs
                     if r.ctx is not None),
                    None,
                )
                self.recorder.record_event(
                    "worker_kill", worker=worker_id, trace_id=affected
                )
                self.recorder.dump(
                    "worker_kill", trace_id=affected,
                    extra={"worker": worker_id,
                           "batch": sum(len(r) for r in by_model.values())},
                )
            raise

    def _serve_group(self, worker_id: int, model_name: str,
                     requests: List[Request]) -> None:
        breaker = self.breakers[worker_id]
        t_start = time.monotonic()
        live: List[Request] = []
        for req in requests:
            if req.expired(t_start):
                self.expire_request(req)
                continue
            self.metrics.histogram("queue_wait").record(
                t_start - req.enqueue_t
            )
            live.append(req)
        if not live:
            return
        requests = live
        # a micro-batch coalesces many traces; its spans parent under
        # the first traced request (the "leader") and carry the other
        # trace ids as links so no trace is orphaned entirely
        leader_ctx = next((r.ctx for r in requests if r.ctx is not None),
                          None)
        batch_attrs = {}
        if leader_ctx is not None:
            links = [obs_distributed.fmt_id(r.ctx.trace_id)
                     for r in requests
                     if r.ctx is not None and r.ctx is not leader_ctx][:16]
            if links:
                batch_attrs["links"] = links
        try:
            if self.chaos is not None:
                # may sleep, raise InjectedFault, or raise WorkerKilled
                self.chaos.on_group(worker_id, model_name)
            dep = self.registry.get(model_name)
            # serving() brackets the batch so ModelRegistry.swap can
            # drain this (possibly outgoing) version precisely
            with dep.serving(), obs_distributed.use_context(leader_ctx):
                level = self.policy.level
                dim = dep.dim_for_level(level)
                X = np.stack(
                    [np.asarray(r.x, dtype=np.float64) for r in requests]
                )

                t0 = time.monotonic()
                with obs_trace.span(
                    "serve.encode", model=model_name, batch=len(requests),
                    **batch_attrs,
                ):
                    encoded = dep.encode(X)
                t1 = time.monotonic()
                fault_draw = (self.chaos.memory_fault(worker_id)
                              if self.chaos is not None else None)
                with obs_trace.span(
                    "serve.search", model=model_name, batch=len(requests),
                    dim=dim, **batch_attrs,
                ) as sp:
                    if fault_draw is not None:
                        spec, rng = fault_draw
                        labels = dep.search(encoded, dim=dim, fault=spec,
                                            rng=rng)
                    else:
                        labels = dep.search(encoded, dim=dim)
                    if sp.recording:
                        # similarity against every class over the served
                        # prefix: one MAC per (request, class, dimension)
                        if dep.kind == "packed":
                            n_classes = len(dep.model.class_words)
                        else:
                            n_classes = dep.model.n_classes
                        macs = len(requests) * n_classes * dim
                        sp.add_ops(add_ops=macs, mul_ops=macs,
                                   mem_bytes=n_classes * dim * 8)
                t2 = time.monotonic()
        except Exception as exc:
            # structured failure: record on the breaker, then retry or
            # fail every future -- never leave one unresolved
            err = self._wrap_error(worker_id, model_name, exc)
            breaker.record_failure(time.monotonic() - t_start)
            for req in requests:
                if not req.future.done():
                    self._fail_or_retry(req, err)
            return

        breaker.record_success(t2 - t_start)
        self.metrics.histogram("encode").record(t1 - t0)
        self.metrics.histogram("search").record(t2 - t1)
        if dim < dep.dim:
            self.metrics.counter("shed_predictions").inc(len(requests))
        done = time.monotonic()
        for req, label in zip(requests, labels):
            latency = done - req.enqueue_t
            self.metrics.histogram("total").record(latency)
            self.policy.record_latency(latency)
            if self.slo is not None:
                self.slo.record(latency, ok=True)
            trace_id = None
            if req.ctx is not None:
                trace_id = obs_distributed.fmt_id(req.ctx.trace_id)
                # the trace's root span: the whole request, submit to
                # resolve, emitted with the span id minted at submit()
                # so every stage span already parents under it
                obs_trace.emit_span(
                    "serve.request", latency,
                    attrs={"model": dep.name, "worker": worker_id},
                    ctx=req.ctx, span_id=req.ctx.span_id,
                )
            if not req.future.cancelled():
                req.future.set_result(Prediction(
                    label=label,
                    model=dep.name,
                    version=dep.version,
                    dim=dim,
                    shed_level=level,
                    latency=latency,
                    attempts=req.attempts,
                    trace_id=trace_id,
                ))
        self.metrics.counter("served").inc(len(requests))

    # -- failure disposition -------------------------------------------------

    def expire_request(self, request: Request) -> None:
        """Shed one expired request (also the batcher's on_expired hook)."""
        self.metrics.counter("deadline_expired").inc()
        if self.slo is not None:
            self.slo.record(time.monotonic() - request.enqueue_t, ok=False)
        if self.recorder is not None:
            self.recorder.record_event(
                "deadline_expired", model=request.model,
                attempts=request.attempts,
                trace_id=(obs_distributed.fmt_id(request.ctx.trace_id)
                          if request.ctx is not None else None),
            )
        if not request.future.done():
            request.future.set_exception(DeadlineExceeded(
                f"deadline expired before {request.model!r} could serve "
                f"the request (after {request.attempts} retries)",
                model=request.model, attempts=request.attempts,
            ))

    def _wrap_error(self, worker_id: int, model: str,
                    exc: BaseException) -> ServeError:
        """Normalize whatever escaped the serve path into a ServeError."""
        if isinstance(exc, ServeError):
            if exc.worker is None:
                exc.worker = worker_id
            if exc.model is None:
                exc.model = model
            return exc
        # unknown model exceptions are treated as deterministic
        # (re-running the same batch would fail the same way)
        return WorkerError(
            f"{type(exc).__name__} while serving {model!r}: {exc}",
            model=model, worker=worker_id, retryable=False, cause=exc,
        )

    def _fail_or_retry(self, request: Request, err: ServeError) -> None:
        """Schedule a deadline-aware retry, or resolve the future failed."""
        now = time.monotonic()
        if (self.retry_policy is not None and self.scheduler is not None
                and self.retry_policy.should_retry(request, err, now)):
            request.attempts += 1
            delay = self.retry_policy.delay_for(request.attempts)
            try:
                self.scheduler.schedule(request, delay, now)
                self.metrics.counter("retries").inc()
                return
            except QueueClosed:
                pass  # shutting down: fall through to a failed future
        self.metrics.counter("errors").inc()
        if self.slo is not None:
            self.slo.record(now - request.enqueue_t, ok=False)
        if request.future.done():
            return
        final: ServeError = err
        if request.attempts > 0 and getattr(err, "retryable", False):
            final = RetriesExhausted(
                f"gave up on {request.model!r} after "
                f"{request.attempts + 1} attempts",
                model=request.model, worker=err.worker,
                attempts=request.attempts + 1, cause=err,
            )
        request.future.set_exception(final)
