"""Open-loop Poisson traffic harness for the serving layer.

Drives :class:`~repro.serve.server.InferenceServer` with open-loop
Poisson arrivals (exponential inter-arrival times drawn up front from a
seeded generator; the driver never waits for responses, so a slow
server cannot throttle its own offered load -- the standard way to
expose queueing collapse) and emits a JSON report per load point:
throughput, latency percentiles, shed/reject counts.

Run it as a module::

    python -m repro.serve.bench --rates 200,800 --requests 400 --out report.json

or from code via :func:`run_load_point` / :func:`run_bench` (this is
what ``benchmarks/bench_serve.py`` and the tests do).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.config import ComputeConfig
from repro.core.encoders import GenericEncoder
from repro.core.packed import PackedModel
from repro.serve.queue import QueueFull
from repro.serve.server import InferenceServer, ServeConfig


def make_workload(
    n_features: int = 24,
    n_classes: int = 4,
    n_train: int = 240,
    n_queries: int = 512,
    seed: int = 7,
):
    """A learnable Gaussian-prototype problem: (X_train, y_train, queries)."""
    rng = np.random.default_rng(seed)
    protos = rng.normal(scale=1.5, size=(n_classes, n_features))
    y_train = rng.integers(0, n_classes, size=n_train)
    X_train = protos[y_train] + rng.normal(scale=0.6, size=(n_train, n_features))
    y_q = rng.integers(0, n_classes, size=n_queries)
    queries = protos[y_q] + rng.normal(scale=0.6, size=(n_queries, n_features))
    return X_train, y_train, queries


def train_model(
    dim: int = 1024,
    packed: bool = False,
    seed: int = 7,
    n_features: int = 24,
    n_classes: int = 4,
    train_engine: str = "auto",
):
    """Train a small GENERIC model for traffic runs; optionally bit-pack it."""
    X_train, y_train, _ = make_workload(
        n_features=n_features, n_classes=n_classes, seed=seed
    )
    enc = GenericEncoder(dim=dim, num_levels=16, seed=seed)
    clf = HDClassifier(enc, epochs=3, seed=seed,
                       config=ComputeConfig(train_engine=train_engine))
    clf.fit(X_train, y_train)
    return PackedModel.from_classifier(clf) if packed else clf


def worker_utilization(server, span_s: float) -> Dict:
    """Per-worker busy fraction over a ``span_s`` window.

    ``server`` is any :class:`~repro.serve.surface.ServingSurface`
    backend; its ``worker_utilization()`` protocol method reports
    busy-seconds and served counts per worker (threads) or per shard
    (processes).  Utilization is busy-time divided by the measurement
    span, so 1.0 means a worker never sat idle during the load point.
    """
    util = server.worker_utilization()
    busy: List[float] = [float(b) for b in util.get("busy_seconds", [])]
    served: List[int] = [int(s) for s in util.get("served", [])]
    if not busy:
        return {}
    span = max(span_s, 1e-9)
    return {
        "busy_seconds": [round(b, 6) for b in busy],
        "served": served,
        "utilization": [round(b / span, 4) for b in busy],
    }


def run_load_point(
    server: InferenceServer,
    queries: np.ndarray,
    rate: float,
    n_requests: int,
    model: str = "default",
    seed: int = 0,
) -> Dict:
    """Offer ``n_requests`` at Poisson ``rate`` req/s; return the report.

    The server must already be started with ``model`` registered.  Each
    load point resets nothing: shed level and metrics carry over unless
    the caller uses a fresh server (``run_bench`` does).
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n_requests))

    futures = []
    rejected = 0
    late = 0
    t_start = time.monotonic()
    for i in range(n_requests):
        target = t_start + arrivals[i]
        now = time.monotonic()
        if now < target:
            time.sleep(target - now)
        else:
            late += 1
        x = queries[i % len(queries)]
        try:
            futures.append(server.submit(model, x))
        except QueueFull:
            rejected += 1
    offered_span = time.monotonic() - t_start

    latencies = []
    errors = 0
    for f in futures:
        try:
            latencies.append(f.result(timeout=60.0).latency)
        except Exception:
            errors += 1
    t_done = time.monotonic()

    lat = np.asarray(latencies) if latencies else np.asarray([0.0])
    completed = len(latencies)
    span = max(t_done - t_start, 1e-9)
    return {
        "offered_rate_rps": rate,
        "n_requests": n_requests,
        "completed": completed,
        "rejected": rejected,
        "errors": errors,
        "late_submissions": late,
        "achieved_throughput_rps": completed / span,
        "rps_per_core": completed / span / max(os.cpu_count() or 1, 1),
        "workers": worker_utilization(server, span),
        "offered_span_s": offered_span,
        "latency_ms": {
            "mean": float(lat.mean() * 1e3),
            "p50": float(np.percentile(lat, 50) * 1e3),
            "p95": float(np.percentile(lat, 95) * 1e3),
            "p99": float(np.percentile(lat, 99) * 1e3),
            "max": float(lat.max() * 1e3),
        },
        "shed": {
            "final_level": server.policy.level,
            "max_level_seen": server.policy.max_level_seen,
            "shed_events": server.policy.shed_events,
            "recover_events": server.policy.recover_events,
            "shed_predictions": server.metrics.counter(
                "shed_predictions").value,
        },
    }


def run_bench(
    rates: Sequence[float],
    n_requests: int = 500,
    dim: int = 1024,
    packed: bool = False,
    config: Optional[ServeConfig] = None,
    seed: int = 7,
) -> Dict:
    """One fresh server per load point; returns the full JSON report."""
    _, _, queries = make_workload(seed=seed)
    cfg = config or ServeConfig()
    model = train_model(dim=dim, packed=packed, seed=seed,
                        train_engine=cfg.config.train_engine or "auto")
    points: List[Dict] = []
    for rate in rates:
        server = InferenceServer(cfg)
        server.register("default", model)
        with server:
            points.append(run_load_point(
                server, queries, rate=rate, n_requests=n_requests, seed=seed,
            ))
            server.wait_idle(timeout=30.0)
        points[-1]["metrics"] = server.stats()
    return {
        "harness": "repro.serve.bench",
        "model": {"kind": "packed" if packed else "classifier", "dim": dim},
        "config": dataclasses.asdict(cfg),
        "load_points": points,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.bench",
        description="Open-loop Poisson traffic against repro.serve",
    )
    parser.add_argument("--rates", default="200,800",
                        help="comma-separated offered rates (req/s)")
    parser.add_argument("--requests", type=int, default=400,
                        help="requests per load point")
    parser.add_argument("--dim", type=int, default=1024)
    parser.add_argument("--packed", action="store_true",
                        help="serve the bit-packed 1-bit model")
    parser.add_argument("--train-engine", default="auto",
                        choices=("auto", "reference", "gram"),
                        help="retraining engine for the served model")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--queue-high", type=int, default=32)
    parser.add_argument("--p95-target-ms", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default: stdout)")
    args = parser.parse_args(argv)

    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    if not rates or any(r <= 0 for r in rates):
        parser.error(f"--rates needs positive req/s values, got {args.rates!r}")
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait=args.max_wait_ms / 1e3,
        n_workers=args.workers,
        queue_high=args.queue_high,
        p95_target=(args.p95_target_ms / 1e3
                    if args.p95_target_ms is not None else None),
        config=ComputeConfig(train_engine=args.train_engine),
    )
    report = run_bench(
        rates, n_requests=args.requests, dim=args.dim,
        packed=args.packed, config=config, seed=args.seed,
    )
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        summary = [
            f"{p['offered_rate_rps']:.0f} rps -> "
            f"{p['achieved_throughput_rps']:.0f} served/s, "
            f"p95 {p['latency_ms']['p95']:.2f} ms, "
            f"shed max level {p['shed']['max_level_seen']}"
            for p in report["load_points"]
        ]
        print(f"wrote {args.out}\n" + "\n".join(summary))
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
