"""Bounded, closable request queue for the serving layer.

The queue is the admission-control point of the service: it is bounded
(a full queue rejects rather than buffers unboundedly, the first line
of load shedding) and closable (shutdown wakes every blocked consumer
instead of leaking worker threads).

A :class:`Request` carries the raw feature vector, the target model
name, a ``concurrent.futures.Future`` the caller waits on, its
enqueue timestamp so queue-wait latency is measurable per request, and
(since the resilience PR) an optional absolute **deadline** plus an
**attempts** counter: expired requests are shed instead of served
(:meth:`Request.expired`), and retryable worker failures re-enter the
queue through :meth:`RequestQueue.put_retry`, which bypasses the
admission bound -- a request that was already admitted must not lose
its slot to fresh arrivals while it backs off.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Optional

import numpy as np


class QueueFull(RuntimeError):
    """Raised on ``put`` when the queue is at capacity (request rejected)."""


class QueueClosed(RuntimeError):
    """Raised on ``put`` after the queue has been closed."""


@dataclass
class Request:
    """One in-flight prediction request."""

    x: np.ndarray
    model: str
    future: Future = field(default_factory=Future)
    enqueue_t: float = field(default_factory=time.monotonic)
    #: absolute time.monotonic() deadline; None = no deadline
    deadline: Optional[float] = None
    #: serving attempts already burned (retries bump this)
    attempts: int = 0
    #: distributed trace identity (repro.obs.distributed.TraceContext):
    #: trace_id + root span_id, minted at submit() when tracing is on;
    #: None otherwise so the untraced hot path pays nothing
    ctx: Optional[object] = None

    def expired(self, now: Optional[float] = None) -> bool:
        """True once the deadline has passed (always False without one)."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def remaining(self, now: Optional[float] = None) -> float:
        """Seconds of budget left (``inf`` without a deadline)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - (time.monotonic() if now is None else now)


class RequestQueue:
    """Thread-safe bounded FIFO of :class:`Request` objects."""

    def __init__(self, maxsize: int = 1024):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._items: Deque[Request] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def put(self, request: Request) -> None:
        """Enqueue or fail fast -- callers must handle :class:`QueueFull`."""
        with self._cond:
            if self._closed:
                raise QueueClosed("queue is closed")
            if len(self._items) >= self.maxsize:
                raise QueueFull(
                    f"queue at capacity ({self.maxsize}); request rejected"
                )
            self._items.append(request)
            self._cond.notify()

    def put_retry(self, request: Request) -> None:
        """Re-admit an already-admitted request (retry path).

        Bypasses ``maxsize`` -- the request held a slot before its
        worker failed, so bouncing it off a momentarily full queue would
        turn a retryable fault into a spurious rejection.  Still raises
        :class:`QueueClosed` after shutdown.
        """
        with self._cond:
            if self._closed:
                raise QueueClosed("queue is closed")
            self._items.append(request)
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Request]:
        """Dequeue one request; ``None`` on timeout or when closed+drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if not self._items:
                            return None
            return self._items.popleft()

    def depth(self) -> int:
        with self._cond:
            return len(self._items)

    def __len__(self) -> int:
        return self.depth()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def close(self) -> None:
        """Stop admitting work and wake every blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list:
        """Remove and return everything queued (used at shutdown to fail
        still-pending futures instead of dropping them silently)."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            return items
