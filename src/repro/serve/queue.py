"""Bounded, closable request queue for the serving layer.

The queue is the admission-control point of the service: it is bounded
(a full queue rejects rather than buffers unboundedly, the first line
of load shedding) and closable (shutdown wakes every blocked consumer
instead of leaking worker threads).

A :class:`Request` carries the raw feature vector, the target model
name, a ``concurrent.futures.Future`` the caller waits on, and its
enqueue timestamp so queue-wait latency is measurable per request.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Optional

import numpy as np


class QueueFull(RuntimeError):
    """Raised on ``put`` when the queue is at capacity (request rejected)."""


class QueueClosed(RuntimeError):
    """Raised on ``put`` after the queue has been closed."""


@dataclass
class Request:
    """One in-flight prediction request."""

    x: np.ndarray
    model: str
    future: Future = field(default_factory=Future)
    enqueue_t: float = field(default_factory=time.monotonic)


class RequestQueue:
    """Thread-safe bounded FIFO of :class:`Request` objects."""

    def __init__(self, maxsize: int = 1024):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._items: Deque[Request] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def put(self, request: Request) -> None:
        """Enqueue or fail fast -- callers must handle :class:`QueueFull`."""
        with self._cond:
            if self._closed:
                raise QueueClosed("queue is closed")
            if len(self._items) >= self.maxsize:
                raise QueueFull(
                    f"queue at capacity ({self.maxsize}); request rejected"
                )
            self._items.append(request)
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Request]:
        """Dequeue one request; ``None`` on timeout or when closed+drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if not self._items:
                            return None
            return self._items.popleft()

    def depth(self) -> int:
        with self._cond:
            return len(self._items)

    def __len__(self) -> int:
        return self.depth()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def close(self) -> None:
        """Stop admitting work and wake every blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list:
        """Remove and return everything queued (used at shutdown to fail
        still-pending futures instead of dropping them silently)."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            return items
