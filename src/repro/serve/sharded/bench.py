"""Open-loop saturation bench: thread workers vs process shards.

The question this harness answers is the one the sharded layer exists
for: *how many predictions per second per core* does the serving stack
sustain once the offered load exceeds capacity?  The thread
:class:`~repro.serve.server.InferenceServer` is GIL-bound -- adding
workers past ~2 buys nothing -- while :class:`~repro.serve.sharded.
ShardedServer` runs one process per shard against a single shared-memory
copy of the packed model.

``saturate`` drives a server with a bounded-window firehose: it keeps
``window`` requests in flight at all times (an open-loop source clamped
only by the admission queue), so the measured throughput is the
service's capacity, not the driver's politeness.  ``run_backends``
trains one packed GENERIC model and pushes the same query stream
through each backend:

- ``thread``    -- InferenceServer, ``n_workers = n_shards`` threads;
- ``replica``   -- ShardedServer, full model per shard process;
- ``partition`` -- ShardedServer, class rows split across shards.

Each backend reports throughput, requests/sec/core, latency
percentiles, per-worker utilization and (for the sharded backends) the
zero-copy evidence: per-worker RSS, the model image's mapped size and
its ``Private_Dirty`` bytes -- the pages a worker would only dirty by
*copying* model memory.

Run it as a module::

    python -m repro.serve.sharded.bench --shards 4 --requests 2000

``benchmarks/bench_shard.py`` wraps this with the CI gates.
"""

from __future__ import annotations

import argparse
import collections
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serve.bench import make_workload, train_model, worker_utilization
from repro.serve.queue import QueueFull
from repro.serve.server import InferenceServer, ServeConfig
from repro.serve.sharded.server import ShardedServeConfig, ShardedServer

__all__ = ["saturate", "run_backends", "main"]


def saturate(server, queries: np.ndarray, n_requests: int,
             window: int = 128, model: str = "bench",
             timeout: float = 120.0) -> Dict:
    """Keep ``window`` requests in flight until ``n_requests`` served.

    Returns the load-point report (throughput, rps/core, latency
    percentiles, per-worker utilization).  Backpressure (``QueueFull``)
    is absorbed by draining the oldest in-flight future -- the driver
    never sleeps while the server has room, which is what makes this a
    saturation measurement.
    """
    inflight = collections.deque()
    latencies: List[float] = []
    errors = 0

    def drain_one() -> None:
        nonlocal errors
        fut = inflight.popleft()
        try:
            latencies.append(fut.result(timeout=timeout).latency)
        except Exception:
            errors += 1

    t0 = time.monotonic()
    for i in range(n_requests):
        x = queries[i % len(queries)]
        while True:
            try:
                inflight.append(server.submit(model, x))
                break
            except QueueFull:
                if inflight:
                    drain_one()
                else:  # queue full with nothing of ours in flight
                    time.sleep(0.001)
        if len(inflight) >= window:
            drain_one()
    while inflight:
        drain_one()
    span = max(time.monotonic() - t0, 1e-9)

    lat = np.asarray(latencies) if latencies else np.asarray([0.0])
    completed = len(latencies)
    return {
        "n_requests": n_requests,
        "completed": completed,
        "errors": errors,
        "window": window,
        "span_s": round(span, 4),
        "throughput_rps": round(completed / span, 2),
        "rps_per_core": round(
            completed / span / max(os.cpu_count() or 1, 1), 2
        ),
        "latency_ms": {
            "p50": round(float(np.percentile(lat, 50) * 1e3), 3),
            "p95": round(float(np.percentile(lat, 95) * 1e3), 3),
            "p99": round(float(np.percentile(lat, 99) * 1e3), 3),
        },
        "workers": worker_utilization(server, span),
    }


def _zero_copy_evidence(server: ShardedServer, model: str = "bench") -> Dict:
    """Per-shard RSS + model-mapping page accounting from /proc."""
    stats = server.shard_stats()
    dep = server.stats()["deployments"].get(model, {})
    spec = server._specs.get(model)
    shards = {}
    for shard, payload in sorted(stats.items()):
        mapping = payload.get("shm", {}).get(model, {}) or {}
        shards[shard] = {
            "rss_kb": payload.get("rss_kb", 0),
            "mapping_rss_kb": mapping.get("rss_kb", 0),
            "mapping_private_dirty_kb": mapping.get("private_dirty_kb", 0),
        }
    return {
        "model_bytes": dep.get("model_bytes"),
        "image_bytes": spec.payload_bytes if spec is not None else None,
        "shards": shards,
    }


def run_backends(
    n_shards: int = 4,
    n_requests: int = 2000,
    dim: int = 2048,
    backends: Sequence[str] = ("thread", "replica", "partition"),
    window: int = 128,
    max_batch: int = 32,
    seed: int = 7,
) -> Dict:
    """Saturate every backend with the same packed model and queries."""
    _, _, queries = make_workload(seed=seed)
    packed = train_model(dim=dim, packed=True, seed=seed)
    results: List[Dict] = []
    for backend in backends:
        if backend == "thread":
            server = InferenceServer(ServeConfig(
                n_workers=n_shards, max_batch=max_batch,
                max_shed_level=0, default_deadline=None,
            ))
        else:
            server = ShardedServer(ShardedServeConfig(
                n_shards=n_shards, mode=backend, max_batch=max_batch,
                max_shed_level=0, default_deadline=None,
            ))
        server.register("bench", packed)
        with server:
            # let process shards finish booting before the clock starts
            server.predict_many("bench", queries[:n_shards], timeout=60.0)
            point = saturate(server, queries, n_requests,
                             window=window)
            point["backend"] = backend
            point["n_workers"] = n_shards
            if isinstance(server, ShardedServer):
                point["zero_copy"] = _zero_copy_evidence(server)
                point["worker_restarts"] = server.worker_restarts
        results.append(point)
        base = next((r for r in results if r["backend"] == "thread"), None)
        speedup = (point["throughput_rps"] / base["throughput_rps"]
                   if base and base is not point else None)
        print(f"{backend:9s}  {point['throughput_rps']:9.1f} rps  "
              f"{point['rps_per_core']:8.1f} rps/core  "
              f"p95 {point['latency_ms']['p95']:7.2f} ms"
              + (f"  x{speedup:.2f} vs thread" if speedup else ""))
    return {
        "harness": "repro.serve.sharded.bench",
        "dim": dim,
        "n_shards": n_shards,
        "n_requests": n_requests,
        "cpu_count": os.cpu_count(),
        "backends": results,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.sharded.bench",
        description="Saturation throughput: thread pool vs process shards",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--requests", type=int, default=2000)
    parser.add_argument("--dim", type=int, default=2048)
    parser.add_argument("--window", type=int, default=128)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--backends", default="thread,replica,partition",
                        help="comma list of thread|replica|partition")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke workload")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default: stdout)")
    args = parser.parse_args(argv)

    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    bad = [b for b in backends
           if b not in ("thread", "replica", "partition")]
    if bad:
        parser.error(f"unknown backends: {bad}")
    if args.quick:
        args.requests = min(args.requests, 400)
        args.dim = min(args.dim, 1024)
    report = run_backends(
        n_shards=args.shards, n_requests=args.requests, dim=args.dim,
        backends=backends, window=args.window, max_batch=args.max_batch,
        seed=args.seed,
    )
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
