"""Process-sharded inference server with zero-copy shared models.

:class:`ShardedServer` keeps the thread server's public surface
(``register`` / ``swap`` / ``submit`` / ``predict`` / ``stats`` /
``start``/``stop`` context manager) but moves the compute out of the
GIL::

    submit() -> RequestQueue -> MicroBatcher -> dispatcher thread
                                                     |  (mp.Queue, FIFO per shard)
                        +---------------+------------+----------+
                        v               v                       v
                   shard proc 0    shard proc 1   ...     shard proc N-1
                   (maps the ONE shared-memory model image read-only)
                        |               |                       |
                        +-------> result queue -> collector thread -> futures

Routing comes in two modes (see
:class:`~repro.serve.sharded.router.ShardRouter`): **replica** sends a
whole batch (encode + search) to one consistent-hash/least-loaded
shard; **partition** encodes on one shard, broadcasts the packed query
words, and exactly merges per-shard top-k scores -- bit-identical to
single-process :meth:`~repro.core.packed.PackedModel.predict_packed`.

Hot swap is epoch-based: ``swap()`` publishes the new model as a fresh
shared segment, enqueues a swap message on every shard's FIFO queue,
and unlinks the old segment only after every shard acks -- FIFO
ordering makes an ack a proof that all pre-swap batches were answered,
so a drained swap drops zero requests by construction.

Resilience is per-shard: each shard process has a circuit breaker
(crashes and errors open it; the router avoids open shards in replica
mode), a supervisor respawns dead processes onto the *same* queues
(undrained messages survive), and the
:class:`~repro.serve.resilience.degrade.DegradationLadder` drives
engine fallback across the process boundary via control messages.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import queue as std_queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.packed import PackedModel
from repro.core.shared import SharedImageSpec, SharedModelArena
from repro.obs import distributed as obs_distributed
from repro.obs import trace as obs_trace
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import Registry
from repro.obs.slo import SLOEngine
from repro.serve.batcher import MicroBatcher
from repro.serve.errors import (
    RetriesExhausted,
    ServeError,
    WorkerError,
    WorkerKilled,
)
from repro.serve.metrics import MetricsHub
from repro.serve.policy import LoadShedPolicy
from repro.serve.queue import QueueClosed, Request, RequestQueue
from repro.serve.registry import Deployment, Model, ModelRegistry
from repro.serve.resilience.breaker import OPEN, BreakerConfig, CircuitBreaker
from repro.serve.resilience.degrade import DegradationLadder
from repro.serve.resilience.retry import RetryPolicy, RetryScheduler
from repro.serve.server import ServeConfig
from repro.serve.sharded import proto
from repro.serve.sharded.router import ShardRouter
from repro.serve.sharded.worker import worker_main
from repro.serve.surface import ServingSurfaceBase
from repro.serve.workers import Prediction

__all__ = ["ShardedServeConfig", "ShardedServer"]


@dataclass
class ShardedServeConfig(ServeConfig):
    """The thread server's knobs plus the process-sharding ones."""

    n_shards: int = 2
    #: "replica" (full model per shard) or "partition" (class-row slices)
    mode: str = "replica"
    #: per-shard top-k width in partition mode (1 is enough for argmin)
    topk: int = 1
    #: multiprocessing start method ("spawn" is safe with parent threads)
    start_method: str = "spawn"
    #: seconds to wait for every shard's swap ack before giving up on
    #: unlinking the old segment (it is then reclaimed at stop())
    swap_ack_timeout: float = 10.0
    #: seconds stats() waits for worker snapshots
    stats_timeout: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.mode not in ("replica", "partition"):
            raise ValueError(
                f"mode must be 'replica' or 'partition', got {self.mode!r}"
            )


class ShardedServer(ServingSurfaceBase):
    """Micro-batching HDC service over N worker *processes*.

    The second :class:`~repro.serve.surface.ServingSurface` backend:
    the same call surface as :class:`~repro.serve.server.
    InferenceServer` (request admission, predict conveniences and the
    ``stats()`` schema are literally shared via
    :class:`~repro.serve.surface.ServingSurfaceBase`), so
    :class:`~repro.stream.loop.StreamLoop`, the benches and the fleet
    aggregator drive either interchangeably.  Models are always served
    from their bit-packed form; registering an
    :class:`~repro.core.classifier.HDClassifier` packs it first
    (sharded serving is the binary deployment path).
    """

    def __init__(self, config: Optional[ShardedServeConfig] = None,
                 chaos=None):
        self.config = config or ShardedServeConfig()
        c = self.config
        self.chaos = chaos
        self.metrics = MetricsHub()
        #: parent-side mirror of the deployments (owned model copies);
        #: StreamLoop and the ladder read/drive this exactly as they
        #: would the thread server's registry
        self.registry = ModelRegistry()
        self.policy = LoadShedPolicy(
            max_level=c.max_shed_level, queue_high=c.queue_high,
            queue_low=c.queue_low, p95_target=c.p95_target,
            cooldown=c.shed_cooldown, window=c.latency_window,
        )
        self.queue = RequestQueue(maxsize=c.queue_size)
        self.batcher = MicroBatcher(
            self.queue, max_batch=c.max_batch, max_wait=c.max_wait
        )
        self.batcher.on_expired = self.expire_request
        self.ladder = DegradationLadder(
            self.registry, self.policy, metrics=self.metrics,
            config=c.degrade,
        )
        self.retry_policy = RetryPolicy(
            max_retries=c.max_retries, backoff=c.retry_backoff,
            backoff_factor=c.retry_backoff_factor,
            max_backoff=c.retry_max_backoff,
        )
        self.scheduler = RetryScheduler(self.queue)
        self.recorder = FlightRecorder(dir=c.postmortem_dir)
        self.slo = (SLOEngine(c.slos, registry=self.metrics.registry,
                              ladder=self.ladder)
                    if c.slos else None)
        self.breakers = [
            CircuitBreaker(c.breaker, name=f"shard-{i}")
            for i in range(c.n_shards)
        ]
        self._breaker_gauge = self.metrics.registry.gauge(
            "breaker_state", help="0=closed 1=half-open 2=open, per shard",
            labels=("shard",),
        )
        self.arena = SharedModelArena(prefix="shardsrv")
        self.router: Optional[ShardRouter] = None
        self._ctx = mp.get_context(c.start_method)
        self._task_queues = [self._ctx.Queue() for _ in range(c.n_shards)]
        self._result_queue = self._ctx.Queue()
        self._procs: List[Optional[mp.process.BaseProcess]] = (
            [None] * c.n_shards
        )
        self._specs: Dict[str, SharedImageSpec] = {}
        self._seq = itertools.count(1)
        self._pending: Dict[int, proto.PendingBatch] = {}
        self._plock = threading.Lock()
        self._acks: Dict[int, Dict] = {}
        self._stats_waiters: Dict[int, Dict] = {}
        self._engine_degraded: Dict[str, bool] = {}
        #: aggregated per-shard observability (absorbed worker registries)
        self.shard_registry = Registry(namespace="shard")
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False
        self.worker_restarts = 0
        #: tracing state last propagated to the worker fleet; the
        #: supervisor forwards TRACE messages when the parent's flips
        self._trace_sent = False

    # -- deployments ---------------------------------------------------------

    @staticmethod
    def _pack(model: Model) -> PackedModel:
        if isinstance(model, PackedModel):
            return model
        if isinstance(model, HDClassifier):
            return PackedModel.from_classifier(model)
        raise TypeError(
            f"cannot shard-deploy {type(model).__name__}; expected "
            "HDClassifier or PackedModel"
        )

    def register(self, name: str, model: Model,
                 min_dim: Optional[int] = None) -> Deployment:
        """Deploy ``model`` on every shard (packed, one shared image)."""
        packed = self._pack(model)
        dep = self.registry.register(
            name, packed, min_dim=min_dim, config=self.config.config,
        )
        spec = packed.to_shared(self.arena, epoch=dep.version)
        old = self._specs.get(name)
        self._specs[name] = spec
        self._engine_degraded[name] = False
        if self._started:
            for q in self._task_queues:
                q.put((proto.DEPLOY, name, spec))
        if old is not None:
            self.arena.unlink(old.segment)
        self.metrics.registry.gauge(
            "model_version", help="deployed model version", labels=("model",),
        ).labels(model=name).set(dep.version)
        return dep

    def swap(self, name: str, model: Model,
             dim_order: Optional[np.ndarray] = None,
             drain: bool = True,
             drain_timeout: Optional[float] = None) -> Deployment:
        """Epoch-based hot swap: publish, flip every shard, then unlink.

        The new image goes out as a *new* shared segment with a bumped
        epoch.  Each shard's FIFO queue gets a swap message; a shard's
        ack therefore certifies that every batch dispatched before the
        swap has been answered.  With ``drain=True`` the call blocks
        until all live shards ack (bounded by ``drain_timeout`` /
        ``ShardedServeConfig.swap_ack_timeout``) and only then unlinks
        the old segment -- zero dropped requests by construction.  On
        an ack timeout the old segment is kept (reclaimed at
        :meth:`stop`) rather than yanked from under a slow shard.

        ``dim_order`` is unsupported here: packed class words bake the
        dimension layout in (the mirror registry enforces the same).
        """
        if dim_order is not None:
            raise ValueError(
                "sharded serving deploys packed models; dim_order "
                "regeneration needs the thread server's classifier path"
            )
        packed = self._pack(model)
        dep = self.registry.swap(name, packed, drain=False)
        old = self._specs.get(name)
        spec = packed.to_shared(self.arena, epoch=dep.version)
        self._specs[name] = spec
        ack_seq = next(self._seq)
        alive = {i for i, p in enumerate(self._procs)
                 if p is not None and p.is_alive()}
        state = {"remaining": set(alive) or set(range(self.config.n_shards)),
                 "event": threading.Event(), "name": name}
        if self._started:
            with self._plock:
                self._acks[ack_seq] = state
            for q in self._task_queues:
                q.put((proto.SWAP, name, spec, ack_seq))
        else:
            state["event"].set()
        self.metrics.counter("model_swaps").inc()
        self.metrics.registry.gauge(
            "model_version", help="deployed model version", labels=("model",),
        ).labels(model=name).set(dep.version)
        if drain and self._started:
            timeout = (self.config.swap_ack_timeout
                       if drain_timeout is None else drain_timeout)
            acked = state["event"].wait(timeout)
            with self._plock:
                self._acks.pop(ack_seq, None)
            if acked and old is not None:
                self.arena.unlink(old.segment)
            elif not acked:
                self.metrics.counter("swap_ack_timeouts").inc()
        elif old is not None and not self._started:
            self.arena.unlink(old.segment)
        return dep

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardedServer":
        if self._started:
            raise RuntimeError("server already started")
        c = self.config
        n_classes = None
        if c.mode == "partition":
            dims = {name: len(self.registry.get(name).model.class_labels)
                    for name in self.registry.names()}
            if not dims:
                raise RuntimeError(
                    "partition mode: register at least one model before "
                    "start() (shards need the class-row layout)"
                )
            if len(set(dims.values())) != 1:
                raise RuntimeError(
                    "partition mode serves models with one shared class "
                    f"count; got {dims}"
                )
            n_classes = next(iter(dims.values()))
        self.router = ShardRouter(
            c.n_shards, mode=c.mode, n_classes=n_classes,
        )
        self._stop.clear()
        self._started = True
        obs_trace.add_sink(self.recorder)
        self._trace_sent = obs_trace.tracing_enabled()
        for i in range(c.n_shards):
            self._procs[i] = self._spawn(i)
        self.scheduler.start()
        for target, tag in ((self._dispatch_loop, "dispatch"),
                            (self._collect_loop, "collect"),
                            (self._supervise_loop, "supervise")):
            t = threading.Thread(target=target,
                                 name=f"sharded-{tag}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def _spawn(self, shard: int):
        proc = self._ctx.Process(
            target=worker_main,
            args=(shard, None, self._task_queues[shard],
                  self._result_queue, dict(self._specs),
                  obs_trace.tracing_enabled()),
            name=f"shard-worker-{shard}", daemon=True,
        )
        proc.start()
        return proc

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop admitting, drain shards, fail leftovers, free segments."""
        if not self._started:
            self.arena.close_all()
            return
        obs_trace.remove_sink(self.recorder)
        self.queue.close()
        self._stop.set()
        for q in self._task_queues:
            try:
                q.put((proto.STOP,))
            except (ValueError, OSError):
                pass
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = []
        self.scheduler.stop(timeout=timeout)
        for i, proc in enumerate(self._procs):
            if proc is None:
                continue
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            self._procs[i] = None
        with self._plock:
            pendings = list(self._pending.values())
            self._pending.clear()
        err = QueueClosed("server stopped before request was served")
        for pending in pendings:
            for req in pending.requests:
                if not req.future.done():
                    req.future.set_exception(err)
        for req in self.queue.drain():
            if not req.future.done():
                req.future.set_exception(err)
        for q in self._task_queues + [self._result_queue]:
            q.cancel_join_thread()
        self.arena.close_all()
        self._started = False

    # submit/asubmit/apredict/predict/predict_many/predict_encoded and
    # the context manager come from ServingSurfaceBase.

    # -- dispatcher ----------------------------------------------------------

    def _eligible_shards(self) -> List[int]:
        return [i for i in range(self.config.n_shards)
                if self.breakers[i].state != OPEN
                and self._procs[i] is not None
                and self._procs[i].is_alive()]

    def _dispatch_loop(self) -> None:
        while True:
            batch = self.batcher.next_batch(timeout=0.05)
            if not batch:
                if self._stop.is_set() or self.queue.closed:
                    return
                continue
            self.metrics.histogram("batch_size").record(len(batch))
            by_model: Dict[str, List[Request]] = {}
            for req in batch:
                by_model.setdefault(req.model, []).append(req)
            for model_name, requests in by_model.items():
                self._dispatch_group(model_name, requests)
            level = self.policy.observe(self.queue.depth())
            self.metrics.gauge("shed_level").set(level)
            self.metrics.gauge("queue_depth").set(self.queue.depth())

    def _dispatch_group(self, model_name: str,
                        requests: List[Request]) -> None:
        now = time.monotonic()
        live = []
        for req in requests:
            if req.expired(now):
                self.expire_request(req)
                continue
            self.metrics.histogram("queue_wait").record(now - req.enqueue_t)
            live.append(req)
        if not live:
            return
        seq = next(self._seq)
        shard = self.router.pick((model_name, seq),
                                 eligible=self._eligible_shards())
        if self.chaos is not None:
            try:
                # may sleep, raise InjectedFault, or raise WorkerKilled
                self.chaos.on_group(shard, model_name)
            except WorkerKilled:
                # a *process* kill: terminate the shard like a real
                # crash; the supervisor respawns it and the requests
                # take the retry path
                self.metrics.counter("worker_kills").inc()
                proc = self._procs[shard]
                if proc is not None and proc.is_alive():
                    proc.terminate()
                err = WorkerError(
                    f"shard {shard} killed by chaos policy",
                    model=model_name, worker=shard, retryable=True,
                )
                self.breakers[shard].record_failure()
                leader = next(
                    (r for r in live if r.ctx is not None), None,
                )
                affected = (obs_distributed.fmt_id(leader.ctx.trace_id)
                            if leader is not None else None)
                if leader is not None:
                    # the affected batch's failed dispatch bracket: puts
                    # the trace into the recorder's ring *before* the
                    # bundle snapshot, so the postmortem leads with it
                    obs_trace.emit_span(
                        "serve.dispatch", time.monotonic() - now,
                        attrs={"model": model_name, "shard": shard,
                               "error": "worker_kill"},
                        ctx=leader.ctx,
                    )
                self.recorder.record_event(
                    "worker_kill", shard=shard, model=model_name,
                    trace_id=affected,
                )
                self.recorder.dump(
                    "worker_kill", trace_id=affected,
                    extra={"shard": shard, "model": model_name,
                           "batch": len(live)},
                )
                for req in live:
                    self._fail_or_retry(req, err)
                return
            except ServeError as err:
                self.breakers[shard].record_failure()
                for req in live:
                    self._fail_or_retry(req, err)
                return
        try:
            dep = self.registry.get(model_name)
        except KeyError:
            err = WorkerError(f"model {model_name!r} was unregistered",
                              model=model_name, retryable=False)
            for req in live:
                self._fail_or_retry(req, err)
            return
        level = self.policy.level
        dim = dep.dim_for_level(level)
        wire_dim = None if dim >= dep.dim else dim
        X = np.stack([np.asarray(r.x, dtype=np.float64) for r in live])
        pending = proto.PendingBatch(
            seq=seq, model=model_name, requests=live, dim=dim,
            shed_level=level, version=dep.version, shard=shard,
            t_dispatch=now,
        )
        # the batch's dispatch->resolve bracket gets its own span under
        # the leader request's trace; the worker parents its spans
        # under that span's id, wired with the message
        leader_ctx = next((r.ctx for r in live if r.ctx is not None), None)
        wire_ctx = None
        if leader_ctx is not None:
            pending.ctx = leader_ctx
            pending.dispatch_span_id = obs_distributed.new_span_id()
            wire_ctx = (leader_ctx.trace_id, pending.dispatch_span_id)
        if self.config.mode == "replica":
            fault_draw = None
            if self.chaos is not None:
                draw = self.chaos.memory_fault(shard)
                if draw is not None:
                    spec_f, rng = draw
                    fault_draw = (spec_f, int(rng.integers(0, 2 ** 63)))
            pending.phase = proto.PREDICT
            with self._plock:
                self._pending[seq] = pending
            self.router.dispatched(shard)
            self._task_queues[shard].put(
                (proto.PREDICT, seq, model_name, X, wire_dim, fault_draw,
                 wire_ctx)
            )
        else:
            pending.phase = proto.ENCODE
            with self._plock:
                self._pending[seq] = pending
            self.router.dispatched(shard)
            self._task_queues[shard].put(
                (proto.ENCODE, seq, model_name, X, wire_ctx)
            )

    # -- collector -----------------------------------------------------------

    def _collect_loop(self) -> None:
        while True:
            try:
                msg = self._result_queue.get(timeout=0.05)
            except (std_queue.Empty, OSError, EOFError):
                if self._stop.is_set():
                    return
                continue
            shard_id, kind, seq, payload = msg[:4]
            if kind == proto.ACK:
                self._handle_ack(shard_id, seq)
            elif kind == proto.STATS_R:
                self._handle_stats(shard_id, seq, payload)
            elif kind == proto.ERR:
                self._handle_error(shard_id, seq, payload)
            elif kind == proto.OK:
                # worker span records piggyback on the OK reply (5th
                # element); emit them before resolving the futures so a
                # caller that joins a traced request always finds the
                # complete tree in the sink
                if len(msg) > 4:
                    for record in msg[4]:
                        obs_trace.emit_foreign(record)
                self._handle_ok(shard_id, seq, payload)
            elif kind == proto.SPANS:
                # worker span records, already carrying the request's
                # trace ids: re-emit into the parent's sinks.  The
                # worker registry is absorbed wholesale by shard_stats,
                # so no local aggregation (aggregate=False).
                for record in payload:
                    obs_trace.emit_foreign(record)

    def _take_pending(self, seq: int,
                      pop: bool) -> Optional[proto.PendingBatch]:
        with self._plock:
            pending = self._pending.get(seq)
            if pending is None or pending.dead:
                return None
            if pop:
                del self._pending[seq]
            return pending

    def _handle_ack(self, shard_id: int, ack_seq: int) -> None:
        with self._plock:
            state = self._acks.get(ack_seq)
            if state is None:
                return
            state["remaining"].discard(shard_id)
            if not state["remaining"]:
                state["event"].set()

    def _handle_stats(self, shard_id: int, seq: int, payload: Dict) -> None:
        with self._plock:
            waiter = self._stats_waiters.get(seq)
            if waiter is None:
                return
            waiter["results"][shard_id] = payload
            if len(waiter["results"]) >= waiter["expect"]:
                waiter["event"].set()

    def _handle_error(self, shard_id: int, seq: int, payload: Dict) -> None:
        pending = self._take_pending(seq, pop=True)
        self.breakers[shard_id].record_failure()
        if pending is None:
            return
        self.router.completed(shard_id)
        err = WorkerError(
            f"shard {shard_id} failed serving {pending.model!r}: "
            f"{payload.get('kind')}: {payload.get('message')}",
            model=pending.model, worker=shard_id, retryable=True,
        )
        for req in pending.requests:
            self._fail_or_retry(req, err)

    def _handle_ok(self, shard_id: int, seq: int, payload) -> None:
        pkind, data = payload
        if pkind == proto.PREDICT:
            pending = self._take_pending(seq, pop=True)
            if pending is None:
                return
            self.router.completed(shard_id)
            self.breakers[shard_id].record_success(
                time.monotonic() - pending.t_dispatch
            )
            self._resolve(pending, data, shard_id)
        elif pkind == proto.ENCODE:
            pending = self._take_pending(seq, pop=False)
            if pending is None:
                return
            self.router.completed(shard_id)
            self.breakers[shard_id].record_success(
                time.monotonic() - pending.t_dispatch
            )
            # phase 2: broadcast the packed query words; every live
            # shard answers a top-k over its class-row slice
            pending.phase = proto.SEARCH
            pending.query_words = data
            dep = self.registry.get(pending.model)
            wire_dim = None if pending.dim >= dep.dim else pending.dim
            targets = tuple(range(self.config.n_shards))
            pending.await_shards = targets
            wire_ctx = (
                (pending.ctx.trace_id, pending.dispatch_span_id)
                if pending.ctx is not None else None
            )
            for s in targets:
                rows = self.router.shard_rows(s)
                self.router.dispatched(s)
                self._task_queues[s].put((
                    proto.SEARCH, seq, pending.model, data, wire_dim,
                    self.config.topk, (rows.start, rows.stop), wire_ctx,
                ))
        elif pkind == proto.SEARCH:
            with self._plock:
                pending = self._pending.get(seq)
                if pending is None or pending.dead:
                    return
                pending.partials[shard_id] = data
                complete = (len(pending.partials)
                            >= len(pending.await_shards))
                if complete:
                    del self._pending[seq]
            self.router.completed(shard_id)
            self.breakers[shard_id].record_success(
                time.monotonic() - pending.t_dispatch
            )
            if not complete:
                return
            t_merge = time.monotonic()
            dists, rows = self.router.merge(pending.partials,
                                            k=self.config.topk)
            dep = self.registry.get(pending.model)
            labels = dep.model.class_labels[rows[:, 0]]
            if pending.ctx is not None:
                obs_trace.emit_span(
                    "serve.merge", time.monotonic() - t_merge,
                    attrs={"model": pending.model,
                           "shards": len(pending.partials)},
                    ctx=obs_distributed.TraceContext(
                        pending.ctx.trace_id, pending.dispatch_span_id
                    ),
                )
            self._resolve(pending, labels, pending.shard)

    def _resolve(self, pending: proto.PendingBatch, labels,
                 shard: Optional[int]) -> None:
        dep = self.registry.get(pending.model)
        done = time.monotonic()
        self.metrics.histogram("serve_seconds").record(
            done - pending.t_dispatch
        )
        if pending.dim < dep.dim:
            self.metrics.counter("shed_predictions").inc(
                len(pending.requests)
            )
        if pending.ctx is not None:
            # the dispatch->resolve bracket: parent of every worker
            # span of this batch, child of the leader request's root
            obs_trace.emit_span(
                "serve.dispatch", done - pending.t_dispatch,
                attrs={"model": pending.model, "shard": shard,
                       "mode": self.config.mode,
                       "batch": len(pending.requests)},
                ctx=pending.ctx, span_id=pending.dispatch_span_id,
            )
        for req, label in zip(pending.requests, np.asarray(labels)):
            latency = done - req.enqueue_t
            self.metrics.histogram("total").record(latency)
            self.policy.record_latency(latency)
            if self.slo is not None:
                self.slo.record(latency, ok=True)
            trace_id = None
            if req.ctx is not None:
                trace_id = obs_distributed.fmt_id(req.ctx.trace_id)
                obs_trace.emit_span(
                    "serve.request", latency,
                    attrs={"model": dep.name, "shard": shard},
                    ctx=req.ctx, span_id=req.ctx.span_id,
                )
            if not req.future.cancelled() and not req.future.done():
                req.future.set_result(Prediction(
                    label=label, model=dep.name, version=pending.version,
                    dim=pending.dim, shed_level=pending.shed_level,
                    latency=latency, attempts=req.attempts, shard=shard,
                    trace_id=trace_id,
                ))
        self.metrics.counter("served").inc(len(pending.requests))

    # -- supervisor ----------------------------------------------------------

    def _supervise_loop(self) -> None:
        prev_codes = [b.state_code for b in self.breakers]
        prev_tier = self.ladder.tier
        while not self._stop.wait(0.05):
            for i, proc in enumerate(self._procs):
                if proc is None or proc.is_alive():
                    continue
                # a dead shard: open-circuit it, respawn onto the SAME
                # queues (unread messages survive), retry its in-flight
                # batches
                self.worker_restarts += 1
                self.metrics.counter("worker_restarts").inc()
                self.breakers[i].record_failure()
                self.recorder.record_event(
                    "worker_respawn", shard=i,
                    exitcode=proc.exitcode,
                )
                self._fail_shard_pendings(i)
                self._procs[i] = self._spawn(i)
            for i, breaker in enumerate(self.breakers):
                code = breaker.state_code
                self._breaker_gauge.labels(shard=str(i)).set(code)
                if code != prev_codes[i]:
                    self.recorder.record_event(
                        "breaker_transition", shard=i,
                        state=breaker.state, code=code,
                    )
                    prev_codes[i] = code
            self.ladder.observe(self.breakers)
            if self.slo is not None:
                self.slo.evaluate()
            tier = self.ladder.tier
            if tier != prev_tier:
                self.recorder.record_event(
                    "ladder_tier", old=prev_tier, new=tier
                )
                prev_tier = tier
            self._propagate_engine_state()
            # forward the parent's tracing state so workers start/stop
            # producing SPANS in step with enable_tracing()
            enabled = obs_trace.tracing_enabled()
            if enabled != self._trace_sent:
                self._trace_sent = enabled
                for q in self._task_queues:
                    try:
                        q.put((proto.TRACE, enabled))
                    except (ValueError, OSError):
                        pass

    def _fail_shard_pendings(self, shard: int) -> None:
        """Retry/fail every in-flight batch the dead shard owned."""
        with self._plock:
            doomed = [p for p in self._pending.values()
                      if p.shard == shard
                      or (p.phase == proto.SEARCH
                          and shard in p.await_shards
                          and shard not in p.partials)]
            for p in doomed:
                p.dead = True
                self._pending.pop(p.seq, None)
            for state in self._acks.values():
                # a swap ack will still arrive if the message survived
                # in the queue; only give up when the respawn also died
                state.setdefault("crashes", 0)
        err_template = "shard {s} died with the batch in flight"
        for p in doomed:
            self.router.completed(shard)
            err = WorkerError(err_template.format(s=shard),
                              model=p.model, worker=shard, retryable=True)
            for req in p.requests:
                self._fail_or_retry(req, err)

    def _propagate_engine_state(self) -> None:
        """Ship the ladder's tier-1 engine fallback across processes.

        The ladder flips :meth:`Deployment.fallback_engine` on the
        *mirror* deployments; workers hold their own model objects, so
        the transition is forwarded as a control message per shard.
        """
        for name in self.registry.names():
            try:
                dep = self.registry.get(name)
            except KeyError:
                continue
            degraded = dep.degraded
            if degraded == self._engine_degraded.get(name, False):
                continue
            self._engine_degraded[name] = degraded
            engine = (self.config.degrade.fallback_engine
                      if degraded else None)
            for q in self._task_queues:
                q.put((proto.ENGINE, name, engine))

    # -- failure disposition -------------------------------------------------

    def expire_request(self, request: Request) -> None:
        """Shed one expired request (also the batcher's on_expired hook)."""
        from repro.serve.errors import DeadlineExceeded

        self.metrics.counter("deadline_expired").inc()
        if self.slo is not None:
            self.slo.record(time.monotonic() - request.enqueue_t, ok=False)
        self.recorder.record_event(
            "deadline_expired", model=request.model,
            attempts=request.attempts,
            trace_id=(obs_distributed.fmt_id(request.ctx.trace_id)
                      if request.ctx is not None else None),
        )
        if not request.future.done():
            request.future.set_exception(DeadlineExceeded(
                f"deadline expired before {request.model!r} could serve "
                f"the request (after {request.attempts} retries)",
                model=request.model, attempts=request.attempts,
            ))

    def _fail_or_retry(self, request: Request, err: ServeError) -> None:
        now = time.monotonic()
        if self.retry_policy.should_retry(request, err, now):
            request.attempts += 1
            delay = self.retry_policy.delay_for(request.attempts)
            try:
                self.scheduler.schedule(request, delay, now)
                self.metrics.counter("retries").inc()
                return
            except QueueClosed:
                pass
        self.metrics.counter("errors").inc()
        if self.slo is not None:
            self.slo.record(now - request.enqueue_t, ok=False)
        if request.future.done():
            return
        final: ServeError = err
        if request.attempts > 0 and getattr(err, "retryable", False):
            final = RetriesExhausted(
                f"gave up on {request.model!r} after "
                f"{request.attempts + 1} attempts",
                model=request.model, worker=err.worker,
                attempts=request.attempts + 1, cause=err,
            )
        request.future.set_exception(final)

    # -- introspection -------------------------------------------------------

    def shard_stats(self, timeout: Optional[float] = None) -> Dict[int, Dict]:
        """Pull each live shard's snapshot; absorbs worker registries.

        Worker metric series land in :attr:`shard_registry` labeled
        ``{shard=i}`` (replacement semantics -- repeated calls never
        double-count).  Returns ``{shard: worker stats dict}``.
        """
        if not self._started:
            return {}
        timeout = self.config.stats_timeout if timeout is None else timeout
        alive = [i for i, p in enumerate(self._procs)
                 if p is not None and p.is_alive()]
        if not alive:
            return {}
        seq = next(self._seq)
        waiter = {"results": {}, "expect": len(alive),
                  "event": threading.Event()}
        with self._plock:
            self._stats_waiters[seq] = waiter
        for i in alive:
            self._task_queues[i].put((proto.STATS, seq))
        waiter["event"].wait(timeout)
        with self._plock:
            self._stats_waiters.pop(seq, None)
        results = dict(waiter["results"])
        for shard, payload in results.items():
            self.shard_registry.absorb_state(
                payload.pop("registry", {}), {"shard": shard}
            )
        return results

    # stats() itself comes from ServingSurfaceBase; the hooks below add
    # the process-sharding specifics (schema-checked optional keys).

    def _breaker_list(self):
        return self.breakers

    def _restart_count(self) -> int:
        return self.worker_restarts

    def _deployment_extra(self, name: str, dep: Deployment) -> Dict:
        spec = self._specs.get(name)
        return {
            "segment": spec.segment if spec is not None else None,
            "epoch": spec.epoch if spec is not None else None,
            "model_bytes": dep.model.model_bytes(),
        }

    def _extra_stats(self) -> Dict:
        return {
            "shards": self.shard_stats(),
            "shard_metrics": self.shard_registry.snapshot(),
            "router": {
                "mode": self.config.mode,
                "n_shards": self.config.n_shards,
                "loads": self.router.loads() if self.router else None,
            },
        }

    def worker_utilization(self) -> Dict[str, List[float]]:
        """Per-shard busy time and served counts (pulled from workers)."""
        busy: List[float] = []
        served: List[int] = []
        for _, payload in sorted(self.shard_stats().items()):
            busy.append(float(payload.get("busy_seconds", 0.0)))
            served.append(int(payload.get("served", 0)))
        return {"busy_seconds": busy, "served": served}

    def render_prometheus(self) -> str:
        """Parent metrics plus the absorbed per-shard series."""
        return (self.metrics.render_prometheus()
                + self.shard_registry.render_prometheus())

    def wait_idle(self, timeout: float = 10.0, poll: float = 0.005) -> bool:
        """Block until queue, retry heap and in-flight batches are empty."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._plock:
                inflight = len(self._pending)
            if (self.queue.depth() == 0 and inflight == 0
                    and self.scheduler.pending() == 0):
                return True
            time.sleep(poll)
        with self._plock:
            inflight = len(self._pending)
        return (self.queue.depth() == 0 and inflight == 0
                and self.scheduler.pending() == 0)
