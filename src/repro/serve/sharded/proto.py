"""Wire protocol between the sharded server and its worker processes.

Messages are plain tuples (cheap to pickle through ``mp.Queue``) whose
first element is one of the kind constants below.  Everything that
crosses the boundary is either a scalar, a NumPy array, or a picklable
spec (:class:`~repro.core.shared.SharedImageSpec`,
:class:`~repro.hardware.faultspec.FaultSpec`) -- never a live model:
models travel as shared-memory image specs and are mapped zero-copy on
the other side.

Ordering is the protocol's backbone: each shard has its own FIFO task
queue fed by the parent, and a worker answers strictly in the order it
receives.  That is what makes the epoch swap safe -- by the time a
shard acks a :data:`SWAP`, every batch the parent enqueued *before* the
swap has already been answered, so once all shards ack, nothing can
still be reading the old segment and the parent may unlink it.

Parent -> worker::

    (DEPLOY, name, image_spec)                install/replace a model
    (SWAP, name, image_spec, ack_seq)         flip to a new epoch, ack
    (PREDICT, seq, name, X, dim, fault_draw[, ctx])  full encode+search
    (ENCODE, seq, name, X[, ctx])             encode stage only
    (SEARCH, seq, name, query_words, dim, k, rows[, ctx])  shard top-k
    (ENGINE, name, engine_or_None)            degradation tier-1 toggle
    (TRACE, enabled)                          runtime tracing toggle
    (STATS, seq)                              metrics/RSS snapshot
    (STOP,)                                   exit the worker loop

The optional trailing ``ctx`` on the serving kinds is a
:meth:`~repro.obs.distributed.TraceContext.to_wire` tuple -- the
submitting request's ``(trace_id, parent span_id)``.  A worker opens
its ``serve.encode``/``serve.search`` spans under it, so the spans it
ships back re-parent into the request's trace on the parent side.
Old-style messages without the element still parse (workers unpack it
as absent), keeping mixed-version queues harmless.

Worker -> parent (one shared result queue)::

    (shard_id, OK, seq, payload[, records])  payload depends on request
                                      kind; when the worker is tracing,
                                      the batch's finished span records
                                      piggyback as the optional fifth
                                      element (one message, not two)
    (shard_id, ERR, seq, err_dict)    structured ServeError.to_dict()
    (shard_id, ACK, ack_seq, name)    swap acknowledged
    (shard_id, STATS_R, seq, stats)   registry state + process gauges
    (shard_id, SPANS, seq, records)   finished span record dicts that
                                      could not ride an OK (error paths)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# parent -> worker kinds
DEPLOY = "deploy"
SWAP = "swap"
PREDICT = "predict"
ENCODE = "encode"
SEARCH = "search"
ENGINE = "engine"
TRACE = "trace"
STATS = "stats"
STOP = "stop"

# worker -> parent kinds
OK = "ok"
ERR = "err"
ACK = "ack"
STATS_R = "stats_r"
SPANS = "spans"


@dataclass
class PendingBatch:
    """Parent-side state of one dispatched batch.

    ``requests`` are the live :class:`~repro.serve.queue.Request`
    objects whose futures this batch resolves.  For partition mode the
    batch goes through two phases (encode on one shard, then a top-k
    broadcast) and ``await_shards`` / ``partials`` track the scatter;
    replica mode resolves in one hop.  ``dead`` marks a batch that was
    already failed/retried (e.g. its shard crashed) so straggling
    responses for the same seq are dropped instead of double-resolving.
    """

    seq: int
    model: str
    requests: List[object]
    dim: int
    shed_level: int
    #: deployment version at dispatch time -- FIFO queues guarantee a
    #: pre-swap batch is served by the pre-swap model, so this (not the
    #: resolve-time registry version) is what the prediction must carry
    version: int = 0
    shard: Optional[int] = None          # replica mode / encode phase
    t_dispatch: float = 0.0
    phase: str = PREDICT                 # PREDICT | ENCODE | SEARCH
    query_words: Optional[object] = None
    await_shards: Tuple[int, ...] = ()
    partials: Dict[int, object] = field(default_factory=dict)
    dead: bool = False
    #: the leader request's TraceContext (trace_id + root span id) when
    #: the batch was submitted under tracing; None otherwise
    ctx: Optional[object] = None
    #: span id of the parent-side ``serve.dispatch`` span bracketing
    #: this batch -- worker spans parent under it, and the span record
    #: itself is emitted at resolve time with exactly this id
    dispatch_span_id: Optional[int] = None
