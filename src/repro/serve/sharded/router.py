"""Shard routing: consistent hashing, class partitions, exact top-k merge.

Two sharding shapes, both pure functions of the model structure (no
processes in this module, so the exactness property is unit-testable in
isolation):

- **replica** -- every shard holds the full model; the router spreads
  batches with a consistent-hash ring (stable across processes: Python's
  builtin ``hash`` is per-process salted, so keys hash through crc32)
  and falls back to the least-loaded shard when the ring's pick is
  overloaded or its breaker is open.
- **partition** -- shard ``s`` owns a contiguous slice of class rows;
  each shard answers a top-k over *its* rows with **global** row
  indices, and :func:`merge_topk` recombines the per-shard lists by the
  lexicographic ``(distance, row)`` key.  Because a stable sort over
  the full distance matrix orders ties exactly the way ``np.argmin``
  breaks them (first occurrence), the merged argmin is bit-identical to
  single-process :meth:`~repro.core.packed.PackedModel.predict_packed`
  -- HDC's associative search is additive over class rows, so sharding
  it loses nothing (the same structure SHEARer exploits across
  dimension folds).
"""

from __future__ import annotations

import bisect
import threading
import zlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["stable_hash", "partition_classes", "merge_topk", "ShardRouter"]


def stable_hash(key: object) -> int:
    """Process-stable 32-bit hash (crc32; builtin ``hash`` is salted)."""
    if not isinstance(key, bytes):
        key = repr(key).encode()
    return zlib.crc32(key) & 0xFFFFFFFF


def partition_classes(n_classes: int, n_shards: int) -> List[slice]:
    """Contiguous class-row slices, sizes differing by at most one.

    Shards beyond ``n_classes`` get empty slices (they simply answer
    empty top-k lists); row coverage is exact and disjoint.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    base, extra = divmod(n_classes, n_shards)
    slices, lo = [], 0
    for s in range(n_shards):
        hi = lo + base + (1 if s < extra else 0)
        slices.append(slice(lo, hi))
        lo = hi
    return slices


def merge_topk(
    dists: Sequence[np.ndarray], rows: Sequence[np.ndarray], k: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Exactly merge per-shard top-k lists into a global top-k.

    ``dists[s]`` / ``rows[s]`` are one shard's ``(N, k_s)`` best
    distances and *global* row indices (as returned by
    :meth:`PackedModel.topk_to_classes`).  The merge key is the
    lexicographic ``(distance, row)`` pair -- ``np.lexsort``'s last key
    is primary -- which reproduces ``np.argmin``'s first-occurrence
    tie-breaking, so ``merged_rows[:, 0]`` equals the single-process
    argmin row for every query, bit for bit.
    """
    live = [(d, r) for d, r in zip(dists, rows) if d.shape[1] > 0]
    if not live:
        raise ValueError("merge_topk: every shard returned an empty top-k")
    D = np.concatenate([d for d, _ in live], axis=1)
    R = np.concatenate([r for _, r in live], axis=1)
    order = np.lexsort((R, D))[:, : max(1, int(k))]
    return (np.take_along_axis(D, order, axis=1),
            np.take_along_axis(R, order, axis=1))


class ShardRouter:
    """Routes batches to shards; merges partitioned search results.

    In replica mode :meth:`pick` consults a consistent-hash ring of
    ``vnodes`` virtual nodes per shard -- same key, same shard, across
    restarts -- then applies a least-loaded override: if the ring's
    choice already carries ``imbalance`` more in-flight batches than
    the least-loaded shard (or is excluded, e.g. open breaker / dead
    process), the batch goes to the least-loaded eligible shard
    instead.  Load is tracked by :meth:`dispatched`/:meth:`completed`.

    In partition mode every shard owns ``slices[s]`` of the class rows
    and search batches broadcast to all shards; :meth:`pick` still
    load-balances the encode phase.
    """

    def __init__(self, n_shards: int, mode: str = "replica",
                 n_classes: Optional[int] = None,
                 vnodes: int = 64, imbalance: int = 2):
        if mode not in ("replica", "partition"):
            raise ValueError(
                f"mode must be 'replica' or 'partition', got {mode!r}"
            )
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if mode == "partition" and n_classes is None:
            raise ValueError("partition mode needs n_classes")
        self.n_shards = n_shards
        self.mode = mode
        self.imbalance = int(imbalance)
        self.slices = (partition_classes(n_classes, n_shards)
                       if mode == "partition" else None)
        # consistent-hash ring: vnodes points per shard on a 32-bit circle
        points = []
        for shard in range(n_shards):
            for v in range(vnodes):
                points.append((stable_hash(f"shard-{shard}-vnode-{v}"), shard))
        points.sort()
        self._ring_keys = [p[0] for p in points]
        self._ring_shards = [p[1] for p in points]
        self._lock = threading.Lock()
        self._loads = [0] * n_shards

    # -- load tracking -------------------------------------------------------

    def dispatched(self, shard: int) -> None:
        with self._lock:
            self._loads[shard] += 1

    def completed(self, shard: int) -> None:
        with self._lock:
            self._loads[shard] = max(0, self._loads[shard] - 1)

    def loads(self) -> List[int]:
        with self._lock:
            return list(self._loads)

    # -- routing -------------------------------------------------------------

    def _ring_pick(self, key: object) -> int:
        h = stable_hash(key)
        i = bisect.bisect_right(self._ring_keys, h) % len(self._ring_keys)
        return self._ring_shards[i]

    def pick(self, key: object,
             eligible: Optional[Sequence[int]] = None) -> int:
        """Choose a shard for ``key`` (consistent hash, least-loaded cap).

        ``eligible`` restricts the candidates (shards whose breaker is
        closed and whose process is alive); when the ring's choice is
        ineligible or overloaded, the least-loaded eligible shard wins.
        With no eligible shard at all, the ring choice is returned
        anyway -- the caller's breaker/error path owns that failure.
        """
        choice = self._ring_pick(key)
        ok = set(range(self.n_shards) if eligible is None else eligible)
        if not ok:
            return choice
        with self._lock:
            least = min(ok, key=lambda s: (self._loads[s], s))
            if (choice not in ok
                    or self._loads[choice] > self._loads[least] + self.imbalance):
                return least
        return choice

    # -- partitioned search --------------------------------------------------

    def shard_rows(self, shard: int) -> slice:
        if self.slices is None:
            raise RuntimeError("shard_rows is only defined in partition mode")
        return self.slices[shard]

    def merge(self, partials: dict, k: int = 1):
        """Merge ``{shard: (dists, rows)}`` partials (partition mode)."""
        shards = sorted(partials)
        return merge_topk([partials[s][0] for s in shards],
                          [partials[s][1] for s in shards], k=k)
