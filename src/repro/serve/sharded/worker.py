"""The shard worker process: zero-copy models, batched serving, stats.

``worker_main`` is the target of each shard process.  It owns a
consumer :class:`~repro.core.shared.SharedModelArena`, maps every
deployed model's image read-only out of shared memory
(:meth:`PackedModel.from_shared` -- class words *and* the packed
``rho^j(levels)`` kernel tables are views, so N workers share one
physical copy), and drains its FIFO task queue:

- :data:`~repro.serve.sharded.proto.PREDICT` runs both inference
  stages (encode + prefix-Hamming search) on the batch;
- :data:`~repro.serve.sharded.proto.ENCODE` /
  :data:`~repro.serve.sharded.proto.SEARCH` split the stages for the
  class-partitioned mode (encode once on one shard, top-k everywhere);
- :data:`~repro.serve.sharded.proto.SWAP` attaches the next epoch's
  segment, flips the served model, detaches the old mapping and acks --
  FIFO ordering means the ack certifies every pre-swap batch answered;
- :data:`~repro.serve.sharded.proto.STATS` ships the local metrics
  registry's full state plus RSS / shared-mapping gauges so the parent
  can aggregate per-process observability and verify zero-copy;
- :data:`~repro.serve.sharded.proto.TRACE` toggles tracing at runtime
  (the parent forwards its own tracing state so ``--trace out.jsonl``
  sessions capture worker spans).

When tracing is on, the serving kinds open ``serve.encode`` /
``serve.search`` spans under the :class:`~repro.obs.distributed.
TraceContext` wired in with the message, buffer the finished records
locally, and ship them back as :data:`~repro.serve.sharded.proto.SPANS`
messages -- the parent's collector re-emits them into its own sinks,
already re-parented under the submitting request's trace.

Workers never write the model image (the views are read-only; fault
injection corrupts a throwaway ``with_words`` clone), and they never
unlink segments -- lifecycle belongs to the parent's publisher arena.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.packed import PackedModel
from repro.core.shared import SharedImageSpec, SharedModelArena
from repro.obs import distributed as obs_distributed
from repro.obs import trace as obs_trace
from repro.obs.registry import Registry
from repro.serve.sharded import proto

__all__ = ["worker_main", "rss_kb", "shm_mapping_kb"]


def rss_kb() -> int:
    """This process's resident set size in KiB (0 if unreadable)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def shm_mapping_kb(segment: str) -> Dict[str, int]:
    """Rss/Private_Dirty (KiB) of this process's mapping of ``segment``.

    Parsed from ``/proc/self/smaps``.  A zero-copy read-only mapping
    shows ``private_dirty_kb == 0`` -- the pages are file-backed and
    shared; any private dirty pages would mean the worker copied (or
    wrote) model memory.  Empty dict when the mapping is not found.
    """
    out: Dict[str, int] = {}
    try:
        with open("/proc/self/smaps") as fh:
            in_seg = False
            for line in fh:
                head = line.split(None, 1)[0] if line.strip() else ""
                if "-" in head and ":" not in head:
                    # a mapping header line ("addr-addr perms ..."):
                    # (re)decide whether the stat lines that follow
                    # belong to our segment's mapping
                    in_seg = line.rstrip().endswith(
                        "/dev/shm/" + segment
                    )
                    continue
                if not in_seg:
                    continue
                if line.startswith("Rss:"):
                    out["rss_kb"] = out.get("rss_kb", 0) + int(line.split()[1])
                elif line.startswith("Private_Dirty:"):
                    out["private_dirty_kb"] = (out.get("private_dirty_kb", 0)
                                               + int(line.split()[1]))
                elif line.startswith("Shared_Clean:"):
                    out["shared_clean_kb"] = (out.get("shared_clean_kb", 0)
                                              + int(line.split()[1]))
    except OSError:
        return {}
    return out


class _ShardState:
    """Everything one worker process keeps between messages."""

    def __init__(self, shard_id: int, rows: Optional[Tuple[int, int]]):
        self.shard_id = shard_id
        #: class-row span (lo, hi) this shard owns; None = full replica
        self.rows = rows
        self.arena = SharedModelArena(prefix="shardw")
        self.models: Dict[str, PackedModel] = {}
        self.segments: Dict[str, str] = {}
        self.epochs: Dict[str, int] = {}
        self.registry = Registry(namespace="serve")
        self.busy_seconds = 0.0
        self.served = 0
        self._engine_saved: Dict[str, str] = {}

    # -- deployment lifecycle ------------------------------------------------

    def install(self, name: str, spec: SharedImageSpec) -> None:
        old_segment = self.segments.get(name)
        model = PackedModel.from_shared(spec, self.arena)
        self.models[name] = model
        self.segments[name] = spec.segment
        self.epochs[name] = spec.epoch
        if old_segment and old_segment != spec.segment:
            # the swapped-out mapping: views die with the old model
            # reference; detach defers to GC if any linger
            self.arena.detach(old_segment)

    def model(self, name: str) -> PackedModel:
        try:
            return self.models[name]
        except KeyError:
            raise KeyError(
                f"shard {self.shard_id}: no model {name!r} deployed "
                f"(has {sorted(self.models)})"
            ) from None

    def set_engine(self, name: str, engine: Optional[str]) -> None:
        """Degradation tier-1: fall back / restore the encode engine."""
        encoder = self.model(name).encoder
        if not hasattr(encoder, "engine"):
            return
        if engine is not None:
            if name not in self._engine_saved:
                self._engine_saved[name] = encoder.engine
            encoder.engine = engine
        else:
            saved = self._engine_saved.pop(name, None)
            if saved is not None:
                # restoring re-clears the kernel; the shared-backed one
                # reattaches on next use via from_shared's rebuild rule
                encoder.engine = saved

    # -- stats ---------------------------------------------------------------

    def stats(self) -> Dict:
        shm = {}
        for name, segment in self.segments.items():
            shm[name] = shm_mapping_kb(segment)
        return {
            "shard": self.shard_id,
            "pid": os.getpid(),
            "rss_kb": rss_kb(),
            "busy_seconds": self.busy_seconds,
            "served": self.served,
            "epochs": dict(self.epochs),
            "shm": shm,
            "registry": self.registry.state(),
        }


def _err_payload(exc: BaseException, shard_id: int, model: str) -> Dict:
    return {
        "kind": type(exc).__name__,
        "message": str(exc),
        "model": model,
        "shard": shard_id,
        "traceback": traceback.format_exc(limit=6),
    }


class _SpanBuffer:
    """Trace sink buffering finished span records for SPANS shipping."""

    def __init__(self) -> None:
        self.records = []

    def emit(self, record: Dict) -> None:
        self.records.append(record)

    def drain(self):
        records, self.records = self.records, []
        return records


def worker_main(shard_id: int, rows: Optional[Tuple[int, int]],
                task_queue, result_queue,
                deployments: Dict[str, SharedImageSpec],
                trace_enabled: bool = False) -> None:
    """Run one shard worker until :data:`~proto.STOP` (or queue EOF).

    ``trace_enabled`` propagates the parent's tracing state across the
    spawn: a freshly-spawned worker starts with the obs layer reset, so
    without this flag a ``--trace`` session would silently lose every
    worker span.  The :data:`~proto.TRACE` message toggles it later.
    """
    state = _ShardState(shard_id, rows)
    hist = state.registry.histogram("stage_seconds", labels=("stage",))
    served_ctr = state.registry.counter("served")
    batches_ctr = state.registry.counter("batches")
    errors_ctr = state.registry.counter("errors")
    span_buf = _SpanBuffer()
    if trace_enabled:
        obs_trace.enable_tracing(span_buf)
    for name, spec in deployments.items():
        state.install(name, spec)
    try:
        while True:
            try:
                msg = task_queue.get()
            except (EOFError, OSError):
                return
            kind = msg[0]
            if kind == proto.STOP:
                return
            if kind == proto.DEPLOY:
                _, name, spec = msg
                state.install(name, spec)
                continue
            if kind == proto.SWAP:
                _, name, spec, ack_seq = msg
                state.install(name, spec)
                result_queue.put((shard_id, proto.ACK, ack_seq, name))
                continue
            if kind == proto.ENGINE:
                _, name, engine = msg
                try:
                    state.set_engine(name, engine)
                except KeyError:
                    pass
                continue
            if kind == proto.TRACE:
                _, enabled = msg
                if enabled:
                    obs_trace.enable_tracing(span_buf)
                else:
                    obs_trace.disable_tracing()
                continue
            if kind == proto.STATS:
                _, seq = msg
                result_queue.put(
                    (shard_id, proto.STATS_R, seq, state.stats())
                )
                continue

            # -- the serving kinds: PREDICT / ENCODE / SEARCH ----------------
            seq, name = msg[1], msg[2]
            t0 = time.monotonic()
            try:
                model = state.model(name)
                if kind == proto.PREDICT:
                    _, _, _, X, dim, fault_draw, *rest = msg
                    ctx = obs_distributed.TraceContext.from_wire(
                        rest[0] if rest else None
                    )
                    scored = model
                    if fault_draw is not None:
                        spec_f, child_seed = fault_draw
                        rng = np.random.default_rng(child_seed)
                        scored = model.with_words(
                            spec_f.corrupt_words(model.class_words, rng)
                        )
                    with obs_distributed.use_context(ctx):
                        with obs_trace.span("serve.encode", shard=shard_id,
                                            model=name, batch=len(X)):
                            words = model.encode_packed(X)
                        t1 = time.monotonic()
                        with obs_trace.span("serve.search", shard=shard_id,
                                            model=name, batch=len(X)):
                            labels = scored.predict_packed(words, dim=dim)
                    t2 = time.monotonic()
                    hist.labels(stage="encode").record(t1 - t0)
                    hist.labels(stage="search").record(t2 - t1)
                    served_ctr.inc(len(labels))
                    state.served += len(labels)
                    payload = (proto.PREDICT, labels)
                elif kind == proto.ENCODE:
                    _, _, _, X, *rest = msg
                    ctx = obs_distributed.TraceContext.from_wire(
                        rest[0] if rest else None
                    )
                    with obs_distributed.use_context(ctx), obs_trace.span(
                        "serve.encode", shard=shard_id, model=name,
                        batch=len(X),
                    ):
                        words = model.encode_packed(X)
                    hist.labels(stage="encode").record(
                        time.monotonic() - t0
                    )
                    payload = (proto.ENCODE, words)
                elif kind == proto.SEARCH:
                    _, _, _, words, dim, k, rows, *rest = msg
                    ctx = obs_distributed.TraceContext.from_wire(
                        rest[0] if rest else None
                    )
                    if rows is None:
                        rows = state.rows
                    rows_slice = slice(*rows) if rows is not None else None
                    with obs_distributed.use_context(ctx), obs_trace.span(
                        "serve.search", shard=shard_id, model=name,
                    ):
                        dists, row_idx = model.topk_to_classes(
                            words, k=k, dim=dim, rows=rows_slice
                        )
                    hist.labels(stage="search").record(
                        time.monotonic() - t0
                    )
                    payload = (proto.SEARCH, (dists, row_idx))
                else:
                    raise ValueError(f"unknown message kind {kind!r}")
            except BaseException as exc:  # noqa: BLE001 - ships to parent
                errors_ctr.inc()
                result_queue.put(
                    (shard_id, proto.ERR, seq,
                     _err_payload(exc, shard_id, name))
                )
                if span_buf.records:
                    # spans finished before the failure still ship, on
                    # the standalone SPANS channel (rare, cold path)
                    result_queue.put(
                        (shard_id, proto.SPANS, seq, span_buf.drain())
                    )
                continue
            finally:
                state.busy_seconds += time.monotonic() - t0
            batches_ctr.inc()
            if span_buf.records:
                # piggyback the batch's span records on the OK reply:
                # one queue message instead of two halves the per-batch
                # IPC cost of tracing, and guarantees the parent sees
                # the worker spans before it resolves the futures
                result_queue.put(
                    (shard_id, proto.OK, seq, payload, span_buf.drain())
                )
            else:
                result_queue.put((shard_id, proto.OK, seq, payload))
    finally:
        state.models.clear()
        state.arena.close_all()
