"""Process-sharded serving: zero-copy shared models + a shard router.

The GIL caps the thread-based :class:`~repro.serve.server.
InferenceServer` at roughly two cores; this package moves the workers
into processes while keeping exactly one physical copy of the model in
POSIX shared memory (:mod:`repro.core.shared`).  See
:class:`ShardedServer` for the façade, :class:`~repro.serve.sharded.
router.ShardRouter` for the replica / class-partitioned routing modes,
and ``python -m repro.serve.sharded.bench`` for the open-loop
saturation harness.
"""

from repro.serve.sharded.router import (
    ShardRouter,
    merge_topk,
    partition_classes,
    stable_hash,
)
from repro.serve.sharded.server import ShardedServeConfig, ShardedServer

__all__ = [
    "ShardedServer",
    "ShardedServeConfig",
    "ShardRouter",
    "merge_topk",
    "partition_classes",
    "stable_hash",
]
