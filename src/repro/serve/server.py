"""The inference service façade: config, submission API, lifecycle.

:class:`InferenceServer` wires the pieces together::

    submit() --> RequestQueue --> MicroBatcher --> WorkerPool --> Future
                     |                                  |
                 (bounded:                     ModelRegistry (hot swap)
                  rejects when full)           LoadShedPolicy (dim shed)
                                               MetricsHub   (telemetry)

Usage::

    server = InferenceServer(ServeConfig(max_batch=64, n_workers=2))
    server.register("mnist", trained_classifier)
    with server:
        fut = server.submit("mnist", x)          # async
        pred = fut.result()                       # Prediction(label=..., dim=...)
        label = server.predict("mnist", x)        # sync convenience
    print(server.stats())

At full dimensionality the served predictions are bit-identical to
calling the underlying model directly; under overload the policy sheds
dimensions in 128-dim steps and predictions keep using the exact
:class:`~repro.core.norms.SubNormTable` prefix norms.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import MetricsHub
from repro.serve.policy import LoadShedPolicy
from repro.serve.queue import QueueClosed, QueueFull, Request, RequestQueue
from repro.serve.registry import Deployment, Model, ModelRegistry
from repro.serve.workers import Prediction, WorkerPool


@dataclass
class ServeConfig:
    """All serving knobs in one place (defaults favor small test rigs)."""

    max_batch: int = 32          # micro-batch size cap
    max_wait: float = 0.002      # linger (s) after the first request of a batch
    n_workers: int = 2
    queue_size: int = 1024       # admission bound; beyond it -> QueueFull
    # -- encode stage -------------------------------------------------------
    engine: Optional[str] = None   # "reference"|"packed"|"auto" where supported
    encode_jobs: Optional[int] = None  # thread fan-out inside the encode stage
    # -- training stage (models trained server-side, e.g. bench rigs) -------
    train_engine: Optional[str] = None  # "reference"|"gram"|"auto"
    # -- load shedding ------------------------------------------------------
    max_shed_level: int = 24     # each level drops 128 dims (clamped per model)
    queue_high: int = 32         # shed when depth reaches this
    queue_low: int = 2           # recover only at/below this (hysteresis)
    p95_target: Optional[float] = None   # optional latency SLO in seconds
    shed_cooldown: float = 0.05  # min seconds between level changes
    latency_window: int = 256    # recent samples for the policy's p95


class InferenceServer:
    """Micro-batching, load-shedding prediction service over HDC models."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        c = self.config
        self.metrics = MetricsHub()
        self.registry = ModelRegistry()
        self.policy = LoadShedPolicy(
            max_level=c.max_shed_level,
            queue_high=c.queue_high,
            queue_low=c.queue_low,
            p95_target=c.p95_target,
            cooldown=c.shed_cooldown,
            window=c.latency_window,
        )
        self.queue = RequestQueue(maxsize=c.queue_size)
        self.batcher = MicroBatcher(
            self.queue, max_batch=c.max_batch, max_wait=c.max_wait
        )
        self.workers = WorkerPool(
            self.batcher, self.registry, self.policy, self.metrics,
            n_workers=c.n_workers,
        )
        self._started = False
        self._metrics_endpoint = None

    # -- deployments --------------------------------------------------------

    def register(self, name: str, model: Model,
                 min_dim: Optional[int] = None,
                 engine: Optional[str] = None,
                 encode_jobs: Optional[int] = None) -> Deployment:
        """Deploy (or hot-swap) ``model`` under ``name``.

        ``engine``/``encode_jobs`` override the config-wide encode-stage
        settings for this deployment (see :class:`ServeConfig`).
        """
        return self.registry.register(
            name, model, min_dim=min_dim,
            engine=engine if engine is not None else self.config.engine,
            encode_jobs=(encode_jobs if encode_jobs is not None
                         else self.config.encode_jobs),
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "InferenceServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self.workers.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop admitting work, drain workers, fail leftover futures."""
        if self._metrics_endpoint is not None:
            self._metrics_endpoint.close()
            self._metrics_endpoint = None
        if not self._started:
            return
        self.queue.close()
        self.workers.stop(timeout=timeout)
        for req in self.queue.drain():
            if not req.future.done():
                req.future.set_exception(
                    QueueClosed("server stopped before request was served")
                )
        self._started = False

    def __enter__(self) -> "InferenceServer":
        return self if self._started else self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request API --------------------------------------------------------

    def submit(self, model: str, x: np.ndarray) -> "Future[Prediction]":
        """Enqueue one prediction; returns a future of :class:`Prediction`.

        Raises :class:`~repro.serve.queue.QueueFull` when the bounded
        queue rejects the request (counted in the ``rejected`` metric).
        """
        if not self._started:
            raise RuntimeError("InferenceServer.submit() before start()")
        if model not in self.registry:
            raise KeyError(
                f"no deployment named {model!r}; registered: "
                f"{self.registry.names()}"
            )
        req = Request(x=np.asarray(x, dtype=np.float64), model=model)
        try:
            self.queue.put(req)
        except QueueFull:
            self.metrics.counter("rejected").inc()
            raise
        self.metrics.counter("submitted").inc()
        return req.future

    def predict(self, model: str, x: np.ndarray,
                timeout: Optional[float] = None) -> object:
        """Synchronous single prediction; returns the label only."""
        return self.submit(model, x).result(timeout=timeout).label

    def predict_many(
        self, model: str, X: Sequence[np.ndarray],
        timeout: Optional[float] = None,
    ) -> List[Prediction]:
        """Submit a whole batch and gather the resolved predictions."""
        futures = [self.submit(model, x) for x in np.atleast_2d(np.asarray(X))]
        return [f.result(timeout=timeout) for f in futures]

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict:
        """JSON-serializable snapshot: metrics + policy + queue state."""
        snap = self.metrics.snapshot()
        snap["queue"] = {"depth": self.queue.depth(),
                         "maxsize": self.queue.maxsize}
        snap["policy"] = {
            "level": self.policy.level,
            "max_level_seen": self.policy.max_level_seen,
            "shed_events": self.policy.shed_events,
            "recover_events": self.policy.recover_events,
            "recent_p95_s": self.policy.recent_p95(),
        }
        snap["deployments"] = {
            name: {
                "kind": dep.kind,
                "dim": dep.dim,
                "min_dim": dep.min_dim,
                "version": dep.version,
                "serving_dim": dep.dim_for_level(self.policy.level),
            }
            for name, dep in ((n, self.registry.get(n))
                              for n in self.registry.names())
        }
        return snap

    def render_prometheus(self) -> str:
        """Prometheus text-format exposition of the serving metrics.

        Queue depth and shed level appear as the ``queue_depth`` /
        ``shed_level`` gauges the workers maintain.
        """
        return self.metrics.render_prometheus()

    def start_metrics_endpoint(self, host: str = "127.0.0.1",
                               port: int = 0):
        """Expose :meth:`render_prometheus` on an HTTP ``/metrics`` route.

        Returns the live :class:`~repro.obs.export.PrometheusEndpoint`
        (its ``url``/``port`` tell you where it bound; ``port=0`` picks
        a free one).  Closed automatically by :meth:`stop`.
        """
        if self._metrics_endpoint is not None:
            raise RuntimeError("metrics endpoint already started")
        from repro.obs.export import PrometheusEndpoint

        self._metrics_endpoint = PrometheusEndpoint(
            self.metrics.registry, host=host, port=port
        )
        return self._metrics_endpoint

    def wait_idle(self, timeout: float = 10.0,
                  poll: float = 0.005) -> bool:
        """Block until the queue is empty (best effort); True if drained."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.queue.depth() == 0:
                return True
            time.sleep(poll)
        return self.queue.depth() == 0
