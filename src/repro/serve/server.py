"""The inference service façade: config, submission API, lifecycle.

:class:`InferenceServer` wires the pieces together::

    submit() --> RequestQueue --> MicroBatcher --> WorkerPool --> Future
                     |                 |                |
                 (bounded:      (sheds expired   ModelRegistry (hot swap)
                  rejects        requests)       LoadShedPolicy (dim shed)
                  when full)         ^           MetricsHub   (telemetry)
                     |               |           CircuitBreaker (per worker)
                 RetryScheduler -----+           DegradationLadder
                 (backed-off retries re-enter)   ChaosPolicy  (fault inj.)

Usage::

    server = InferenceServer(ServeConfig(max_batch=64, n_workers=2))
    server.register("mnist", trained_classifier)
    with server:
        fut = server.submit("mnist", x, deadline=0.05)   # async, 50 ms budget
        pred = fut.result()                   # Prediction(label=..., dim=...)
        label = server.predict("mnist", x)    # sync convenience
    print(server.stats())

At full dimensionality the served predictions are bit-identical to
calling the underlying model directly; under overload the policy sheds
dimensions in 128-dim steps and predictions keep using the exact
:class:`~repro.core.norms.SubNormTable` prefix norms.

Resilience semantics (see :mod:`repro.serve.resilience`): per-request
deadlines propagate through the queue and batcher to the workers;
retryable worker failures re-enter the queue with exponential backoff
while the deadline budget allows; each worker's circuit breaker opens
on sustained errors/latency and the :class:`~repro.serve.resilience.
degrade.DegradationLadder` converts pool-wide breaker state into the
paper's graceful-degradation knobs (engine fallback, forced dimension
shedding, and finally :class:`~repro.serve.errors.Backpressure`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import UNSET, ComputeConfig
from repro.obs import trace as obs_trace
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLOEngine, SLObjective
from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import MetricsHub
from repro.serve.policy import LoadShedPolicy
from repro.serve.queue import QueueClosed, RequestQueue
from repro.serve.registry import Deployment, Model, ModelRegistry
from repro.serve.resilience.breaker import BreakerConfig
from repro.serve.resilience.degrade import DegradationLadder, DegradeConfig
from repro.serve.resilience.retry import RetryPolicy, RetryScheduler
from repro.serve.surface import ServingSurfaceBase
from repro.serve.workers import WorkerPool

_LEGACY_COMPUTE_KWARGS = ("engine", "encode_jobs", "train_engine")


@dataclass
class ServeConfig:
    """All serving knobs in one place (defaults favor small test rigs)."""

    max_batch: int = 32          # micro-batch size cap
    max_wait: float = 0.002      # linger (s) after the first request of a batch
    n_workers: int = 2
    queue_size: int = 1024       # admission bound; beyond it -> QueueFull
    # -- compute stage ------------------------------------------------------
    #: consolidated compute knobs (engine / encode_jobs / train_engine /
    #: train_memory_budget); the deprecated ``engine``/``encode_jobs``/
    #: ``train_engine`` kwargs below fold into it with a warning
    config: Optional[ComputeConfig] = None
    engine: Optional[str] = None        # DEPRECATED: use config=
    encode_jobs: Optional[int] = None   # DEPRECATED: use config=
    train_engine: Optional[str] = None  # DEPRECATED: use config=
    # -- load shedding ------------------------------------------------------
    max_shed_level: int = 24     # each level drops 128 dims (clamped per model)
    queue_high: int = 32         # shed when depth reaches this
    queue_low: int = 2           # recover only at/below this (hysteresis)
    p95_target: Optional[float] = None   # optional latency SLO in seconds
    shed_cooldown: float = 0.05  # min seconds between level changes
    latency_window: int = 256    # recent samples for the policy's p95
    # -- deadlines & retries ------------------------------------------------
    default_deadline: Optional[float] = None  # per-request budget (seconds)
    max_retries: int = 2         # retryable-failure re-attempts per request
    retry_backoff: float = 0.002        # first backoff (seconds)
    retry_backoff_factor: float = 2.0   # exponential growth per attempt
    retry_max_backoff: float = 0.25     # backoff ceiling (seconds)
    # -- circuit breaking & degradation -------------------------------------
    breaker: Optional[BreakerConfig] = None   # None -> BreakerConfig()
    degrade: Optional[DegradeConfig] = None   # None -> DegradeConfig()
    # -- observability -------------------------------------------------------
    #: service-level objectives (repro.obs.slo.SLObjective); scored per
    #: request, evaluated by the supervisor, surfaced in stats()["slo"]
    #: and Prometheus, and -- when an objective names a degrade_tier --
    #: driving the degradation ladder pre-emptively on budget burn
    slos: Optional[Sequence[SLObjective]] = None
    #: directory for flight-recorder postmortem bundles; None keeps the
    #: recorder in-memory only (dump() still works with explicit paths)
    postmortem_dir: Optional[str] = None

    def __post_init__(self) -> None:
        # legacy kwargs fold into the consolidated config through the
        # one shim path (single DeprecationWarning site, see
        # repro.core.compat); None here means "not passed"
        legacy = {k: getattr(self, k) for k in _LEGACY_COMPUTE_KWARGS
                  if getattr(self, k) is not None}
        compute = ComputeConfig.from_kwargs(
            self.config, owner=type(self).__name__, stacklevel=4,
            **{k: legacy.get(k, UNSET) for k in _LEGACY_COMPUTE_KWARGS},
        )
        self.config = compute
        # mirror so legacy attribute reads keep working; ``config`` is
        # the source of truth everywhere inside the server
        self.engine = compute.engine
        self.encode_jobs = compute.encode_jobs
        self.train_engine = compute.train_engine
        if self.breaker is None:
            self.breaker = BreakerConfig()
        if self.degrade is None:
            self.degrade = DegradeConfig()


class InferenceServer(ServingSurfaceBase):
    """Micro-batching, load-shedding, fault-tolerant HDC prediction service.

    One of the two :class:`~repro.serve.surface.ServingSurface`
    backends (the GIL-bound thread-pool one; see
    :class:`~repro.serve.sharded.server.ShardedServer` for the
    process-sharded one).  Request admission, the predict conveniences
    and the ``stats()`` schema live in
    :class:`~repro.serve.surface.ServingSurfaceBase`.

    ``chaos`` (a :class:`~repro.serve.resilience.chaos.ChaosPolicy`)
    attaches the fault-injection harness; production servers leave it
    ``None`` and pay only a few no-op checks per batch.
    """

    def __init__(self, config: Optional[ServeConfig] = None, chaos=None):
        self.config = config or ServeConfig()
        c = self.config
        self.chaos = chaos
        self.metrics = MetricsHub()
        self.registry = ModelRegistry()
        self.policy = LoadShedPolicy(
            max_level=c.max_shed_level,
            queue_high=c.queue_high,
            queue_low=c.queue_low,
            p95_target=c.p95_target,
            cooldown=c.shed_cooldown,
            window=c.latency_window,
        )
        self.queue = RequestQueue(maxsize=c.queue_size)
        self.batcher = MicroBatcher(
            self.queue, max_batch=c.max_batch, max_wait=c.max_wait
        )
        self.ladder = DegradationLadder(
            self.registry, self.policy, metrics=self.metrics,
            config=c.degrade,
        )
        self.retry_policy = RetryPolicy(
            max_retries=c.max_retries,
            backoff=c.retry_backoff,
            backoff_factor=c.retry_backoff_factor,
            max_backoff=c.retry_max_backoff,
        )
        self.scheduler = RetryScheduler(self.queue)
        self.recorder = FlightRecorder(dir=c.postmortem_dir)
        self.slo = (SLOEngine(c.slos, registry=self.metrics.registry,
                              ladder=self.ladder)
                    if c.slos else None)
        self.workers = WorkerPool(
            self.batcher, self.registry, self.policy, self.metrics,
            n_workers=c.n_workers,
            chaos=chaos,
            breaker_config=c.breaker,
            retry_policy=self.retry_policy,
            retry_scheduler=self.scheduler,
            ladder=self.ladder,
            slo=self.slo,
            recorder=self.recorder,
        )
        # the batcher sheds expired requests straight into the pool's
        # DeadlineExceeded path instead of batching them
        self.batcher.on_expired = self.workers.expire_request
        self._started = False
        self._metrics_endpoint = None

    # -- deployments --------------------------------------------------------

    def register(self, name: str, model: Model,
                 min_dim: Optional[int] = None,
                 engine: Optional[str] = None,
                 encode_jobs: Optional[int] = None) -> Deployment:
        """Deploy (or hot-swap) ``model`` under ``name``.

        The server's :class:`~repro.core.config.ComputeConfig` seeds the
        deployment; ``engine``/``encode_jobs`` override it per model.
        """
        return self.registry.register(
            name, model, min_dim=min_dim,
            engine=engine, encode_jobs=encode_jobs,
            config=self.config.config,
        )

    def swap(self, name: str, model: Model,
             dim_order: Optional[np.ndarray] = None,
             drain: bool = True,
             drain_timeout: float = 5.0) -> Deployment:
        """Hot-swap deployment ``name`` to a new model version.

        Thin wrapper over :meth:`ModelRegistry.swap` that also updates
        the serving metrics: bumps the ``model_swaps`` counter and sets
        the per-model ``model_version`` gauge.  ``drain=True`` (the
        default) blocks until batches in flight on the *old* version
        finish -- new batches already pick up the new version the moment
        the registry entry flips.
        """
        dep = self.registry.swap(
            name, model, dim_order=dim_order,
            drain=drain, drain_timeout=drain_timeout,
        )
        self.metrics.counter("model_swaps").inc()
        self.metrics.registry.gauge(
            "model_version", help="deployed model version",
            labels=("model",),
        ).labels(model=name).set(dep.version)
        return dep

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "InferenceServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        # the flight recorder rides the trace-sink interface: while
        # tracing is enabled the span ring fills for free; the event
        # ring fills regardless
        obs_trace.add_sink(self.recorder)
        self.scheduler.start()
        self.workers.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop admitting work, drain workers, fail leftover futures."""
        if self._metrics_endpoint is not None:
            self._metrics_endpoint.close()
            self._metrics_endpoint = None
        if not self._started:
            return
        obs_trace.remove_sink(self.recorder)
        self.queue.close()
        self.workers.stop(timeout=timeout)
        self.scheduler.stop(timeout=timeout)
        for req in self.queue.drain():
            if not req.future.done():
                req.future.set_exception(
                    QueueClosed("server stopped before request was served")
                )
        self._started = False

    # -- introspection ------------------------------------------------------
    # submit/predict/predict_many/predict_encoded, the context manager
    # and the stats() assembly come from ServingSurfaceBase; the hooks
    # below feed it the thread-pool specifics.

    def _breaker_list(self):
        return self.workers.breakers

    def _restart_count(self) -> int:
        return self.workers.worker_restarts

    def worker_utilization(self) -> Dict[str, List[float]]:
        """Per-worker busy time and served-request counts (snapshot)."""
        return self.workers.worker_utilization()

    def render_prometheus(self) -> str:
        """Prometheus text-format exposition of the serving metrics.

        Queue depth, shed level and per-worker breaker state appear as
        the ``queue_depth`` / ``shed_level`` / ``breaker_state`` gauges
        the workers and supervisor maintain.
        """
        return self.metrics.render_prometheus()

    def start_metrics_endpoint(self, host: str = "127.0.0.1",
                               port: int = 0):
        """Expose :meth:`render_prometheus` on an HTTP ``/metrics`` route.

        Returns the live :class:`~repro.obs.export.PrometheusEndpoint`
        (its ``url``/``port`` tell you where it bound; ``port=0`` picks
        a free one).  Closed automatically by :meth:`stop`.
        """
        if self._metrics_endpoint is not None:
            raise RuntimeError("metrics endpoint already started")
        from repro.obs.export import PrometheusEndpoint

        self._metrics_endpoint = PrometheusEndpoint(
            self.metrics.registry, host=host, port=port
        )
        return self._metrics_endpoint

    def wait_idle(self, timeout: float = 10.0,
                  poll: float = 0.005) -> bool:
        """Block until the queue and retry heap are empty (best effort)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.queue.depth() == 0 and self.scheduler.pending() == 0:
                return True
            time.sleep(poll)
        return self.queue.depth() == 0 and self.scheduler.pending() == 0
