"""Structured errors for the serving layer.

Before this module a failing worker resolved request futures with
whatever raw exception escaped the model -- callers could not tell a
retryable injected fault from a permanent model bug, and a worker that
*died* (thread kill) left its in-flight futures unresolved forever.
Every failure a caller can now see is a :class:`ServeError` carrying
where it happened (model, worker), whether retrying could help, and how
many attempts were burned; :meth:`ServeError.to_dict` makes it
log/JSON-friendly.

:class:`WorkerKilled` deliberately derives from :class:`BaseException`:
it must *not* be swallowed by the worker's per-group ``except
Exception`` recovery path -- it unwinds the worker thread the way a real
crash would, exercising the pool's supervisor respawn and the
fail-remaining-futures cleanup in
:meth:`~repro.serve.workers.WorkerPool._run`.
"""

from __future__ import annotations

from typing import Optional

from repro.serve.queue import QueueFull

__all__ = [
    "ServeError",
    "WorkerError",
    "DeadlineExceeded",
    "RetriesExhausted",
    "InjectedFault",
    "Backpressure",
    "WorkerKilled",
]


class ServeError(RuntimeError):
    """Base structured serving failure (model/worker/retryable context)."""

    kind = "serve_error"

    def __init__(self, message: str, *, model: Optional[str] = None,
                 worker: Optional[int] = None, retryable: bool = False,
                 attempts: int = 0,
                 cause: Optional[BaseException] = None):
        super().__init__(message)
        self.model = model
        self.worker = worker
        self.retryable = retryable
        self.attempts = attempts
        if cause is not None:
            self.__cause__ = cause

    @property
    def cause(self) -> Optional[BaseException]:
        return self.__cause__

    def to_dict(self) -> dict:
        """JSON-serializable view (what a wire protocol would return)."""
        return {
            "kind": self.kind,
            "message": str(self),
            "model": self.model,
            "worker": self.worker,
            "retryable": self.retryable,
            "attempts": self.attempts,
            "cause": (type(self.__cause__).__name__
                      if self.__cause__ is not None else None),
        }


class WorkerError(ServeError):
    """A worker failed while serving the request (encode/search raised)."""

    kind = "worker_error"


class DeadlineExceeded(ServeError):
    """The request's deadline expired before a worker could finish it."""

    kind = "deadline_exceeded"

    def __init__(self, message: str, **kw):
        kw.setdefault("retryable", False)
        super().__init__(message, **kw)


class RetriesExhausted(ServeError):
    """Every allowed attempt failed; the last cause is chained."""

    kind = "retries_exhausted"


class InjectedFault(WorkerError):
    """A chaos-injected, transient (retryable) worker failure."""

    kind = "injected_fault"

    def __init__(self, message: str, **kw):
        kw.setdefault("retryable", True)
        super().__init__(message, **kw)


class Backpressure(QueueFull):
    """Submission rejected by the degradation ladder (its top tier).

    Subclasses :class:`~repro.serve.queue.QueueFull` so callers that
    already handle admission rejection handle degradation rejection the
    same way.
    """


class WorkerKilled(BaseException):
    """Chaos 'kill' signal: unwinds the worker thread like a crash."""

    def __init__(self, worker: Optional[int] = None):
        super().__init__(f"worker {worker} killed by chaos policy")
        self.worker = worker
