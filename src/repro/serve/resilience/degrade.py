"""Graceful-degradation tiers driven by breaker state.

When workers start failing, the server should not fall off a cliff --
it should shed *quality* first and *availability* last, exactly the
trade the paper makes in hardware (approximate first, reject never...
until there is no approximation left).  The ladder has five tiers:

====  =================  ==================================================
tier  name               effect
====  =================  ==================================================
0     normal             full service
1     engine_fallback    deployments drop the bit-packed encode kernel and
                         run the reference engine (fewer moving parts;
                         isolates kernel-level faults)
2     approx             deployments switch to multifold approximate
                         encoding: only ``approx_fraction`` of each
                         encoder's windows are folded (SHEARer-style
                         sampling, bounded count error) -- cheaper
                         encodes before any dimension is shed
3     dim_shed           the existing LoadShedPolicy is forced to at least
                         ``shed_floor_level`` (128-dim steps, exact
                         SubNormTable prefix norms -- Section 4.3.3)
4     backpressure       new submissions are rejected with
                         :class:`~repro.serve.errors.Backpressure`
====  =================  ==================================================

Escalation: whenever at least ``open_fraction`` of the pool's breakers
are open, the ladder climbs one tier (rate-limited by ``cooldown``).
Recovery: after every breaker has been closed for ``recover_after``
seconds, it steps back down one tier at a time, undoing each effect in
reverse order.  Tier changes land in the ``degradation_tier`` histogram
and the ``degradation_tier`` gauge of the server's metrics hub.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.serve.resilience.breaker import OPEN, CircuitBreaker

__all__ = ["DegradeConfig", "DegradationLadder", "DEGRADATION_TIERS"]

DEGRADATION_TIERS = (
    "normal", "engine_fallback", "approx", "dim_shed", "backpressure"
)


@dataclass
class DegradeConfig:
    """Escalation/recovery thresholds for the ladder."""

    enabled: bool = True
    #: fraction of breakers open at/above which the ladder escalates
    open_fraction: float = 0.5
    #: shed level forced (at minimum) at the dim_shed tier -- 128 dims
    #: per level
    shed_floor_level: int = 4
    #: engine deployments fall back to at tier 1
    fallback_engine: str = "reference"
    #: fraction of windows still folded at the approx tier (tier 2)
    approx_fraction: float = 0.5
    #: min seconds between tier changes
    cooldown: float = 0.25
    #: seconds of all-breakers-closed before stepping one tier down
    recover_after: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.open_fraction <= 1:
            raise ValueError(
                f"open_fraction must be in (0, 1], got {self.open_fraction}"
            )
        if self.shed_floor_level < 0:
            raise ValueError(
                f"shed_floor_level must be >= 0, got {self.shed_floor_level}"
            )
        if not 0 < self.approx_fraction <= 1:
            raise ValueError(
                f"approx_fraction must be in (0, 1], got {self.approx_fraction}"
            )


class DegradationLadder:
    """Breaker states in, degradation side effects out."""

    def __init__(self, registry, policy, metrics=None,
                 config: Optional[DegradeConfig] = None,
                 time_fn: Callable[[], float] = time.monotonic):
        self.registry = registry
        self.policy = policy
        self.metrics = metrics
        self.config = config or DegradeConfig()
        self._time = time_fn
        self._lock = threading.Lock()
        self._tier = 0
        self._last_change = -float("inf")
        self._all_closed_since: Optional[float] = None
        self.escalations = 0
        self.recoveries = 0
        self._dim_shed_hooks: list = []

    def add_dim_shed_hook(self, hook: Callable[[int], None]) -> None:
        """Run ``hook(shed_floor_level)`` whenever the dim_shed tier is
        entered.

        Recovery steps (e.g. dimension regeneration from
        :mod:`repro.stream.regen`) register here so shedding quality
        triggers re-materializing the most informative dimensions into
        the served prefix.  Hook exceptions are swallowed: degradation
        must never be blocked by its own recovery machinery.
        """
        self._dim_shed_hooks.append(hook)

    # -- state ---------------------------------------------------------------

    @property
    def tier(self) -> int:
        with self._lock:
            return self._tier

    @property
    def tier_name(self) -> str:
        return DEGRADATION_TIERS[self.tier]

    @property
    def rejecting(self) -> bool:
        """True at the top tier: submissions bounce with Backpressure."""
        with self._lock:
            return self._tier >= len(DEGRADATION_TIERS) - 1

    # -- the control loop entry point ---------------------------------------

    def observe(self, breakers: Sequence[CircuitBreaker]) -> int:
        """Update the tier from current breaker states; returns the tier."""
        if not self.config.enabled or not breakers:
            return self.tier
        n_open = sum(1 for b in breakers if b.state == OPEN)
        frac = n_open / len(breakers)
        now = self._time()
        with self._lock:
            if n_open == 0:
                if self._all_closed_since is None:
                    self._all_closed_since = now
            else:
                self._all_closed_since = None

            new_tier = self._tier
            if (frac >= self.config.open_fraction
                    and self._tier < len(DEGRADATION_TIERS) - 1
                    and now - self._last_change >= self.config.cooldown):
                new_tier = self._tier + 1
            elif (self._tier > 0
                  and self._all_closed_since is not None
                  and now - self._all_closed_since >= self.config.recover_after
                  and now - self._last_change >= self.config.cooldown):
                new_tier = self._tier - 1

            if new_tier == self._tier:
                return self._tier
            escalating = new_tier > self._tier
            old, self._tier = self._tier, new_tier
            self._last_change = now
            if escalating:
                self.escalations += 1
            else:
                self.recoveries += 1
        self._apply(old, new_tier)
        return new_tier

    def force_tier(self, tier: int) -> None:
        """Pin the ladder (tests, manual degradation drills)."""
        if not 0 <= tier < len(DEGRADATION_TIERS):
            raise ValueError(
                f"tier {tier} out of range [0, {len(DEGRADATION_TIERS) - 1}]"
            )
        with self._lock:
            old, self._tier = self._tier, tier
            self._last_change = self._time()
        if tier != old:
            self._apply(old, tier)

    # -- side effects --------------------------------------------------------

    def _apply(self, old: int, new: int) -> None:
        if new > old:
            for tier in range(old + 1, new + 1):
                self._escalate_to(tier)
        else:
            for tier in range(old, new, -1):
                self._de_escalate_from(tier)
        if self.metrics is not None:
            self.metrics.gauge("degradation_tier").set(new)
            self.metrics.histogram("degradation_tier_changes").record(new)

    def _escalate_to(self, tier: int) -> None:
        if tier == 1:
            for name in self.registry.names():
                try:
                    self.registry.get(name).fallback_engine(
                        self.config.fallback_engine
                    )
                except KeyError:  # hot-unregistered mid-walk
                    continue
        elif tier == 2:
            for name in self.registry.names():
                try:
                    self.registry.get(name).fallback_approx(
                        self.config.approx_fraction
                    )
                except KeyError:
                    continue
        elif tier == 3:
            floor = min(self.config.shed_floor_level, self.policy.max_level)
            if self.policy.level < floor:
                self.policy.force_level(floor)
            for hook in self._dim_shed_hooks:
                try:
                    hook(floor)
                except Exception:
                    pass
        # the top tier is pure state: submit() checks ``rejecting``

    def _de_escalate_from(self, tier: int) -> None:
        if tier == 1:
            for name in self.registry.names():
                try:
                    self.registry.get(name).restore_engine()
                except KeyError:
                    continue
        elif tier == 2:
            for name in self.registry.names():
                try:
                    self.registry.get(name).restore_approx()
                except KeyError:
                    continue
        # leaving dim_shed: the LoadShedPolicy recovers level on its own
        # hysteresis; leaving the top tier simply stops rejecting

    def stats(self) -> dict:
        return {
            "tier": self.tier,
            "tier_name": self.tier_name,
            "escalations": self.escalations,
            "recoveries": self.recoveries,
        }
