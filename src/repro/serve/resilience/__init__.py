"""Resilient serving: fault injection, deadlines/retries, circuit breaking.

GENERIC's headline claim is that HDC is *error-resilient*: the paper
over-scales the class-memory voltage, tolerates percent-level bit flips
(Fig. 6) and drops dimensions on demand (Section 4.3.3) with graceful
accuracy loss.  This subpackage demonstrates that resilience where it
matters operationally -- on the serving path -- and adds the classic
service-hardening trio around it:

- :class:`~repro.serve.resilience.chaos.ChaosPolicy` -- a seeded
  fault-injection harness: worker exceptions, artificial latency,
  worker kills, and VOS-style memory bit flips driven by the unified
  :class:`~repro.hardware.faultspec.FaultSpec`;
- :class:`~repro.serve.resilience.breaker.CircuitBreaker` -- a
  per-worker closed/open/half-open state machine keyed on error rate
  and latency, so the pool routes around a failing worker;
- :class:`~repro.serve.resilience.retry.RetryScheduler` /
  :class:`~repro.serve.resilience.retry.RetryPolicy` -- deadline-aware
  retry with exponential backoff for retryable failures,
  shed-on-expiry for the rest;
- :class:`~repro.serve.resilience.degrade.DegradationLadder` -- tiers
  of graceful degradation (packed->reference engine fallback, then
  dimension shedding through the existing
  :class:`~repro.serve.policy.LoadShedPolicy`, then backpressure).

Everything is observable through :mod:`repro.obs`: breaker-state
gauges, retry/shed/fault counters, and a degradation-tier histogram
land in the server's :class:`~repro.serve.metrics.MetricsHub`.
"""

from repro.serve.errors import (
    Backpressure,
    DeadlineExceeded,
    InjectedFault,
    RetriesExhausted,
    ServeError,
    WorkerError,
    WorkerKilled,
)
from repro.serve.resilience.breaker import (
    BreakerConfig,
    CircuitBreaker,
    CLOSED,
    HALF_OPEN,
    OPEN,
)
from repro.serve.resilience.chaos import ChaosPolicy
from repro.serve.resilience.degrade import (
    DEGRADATION_TIERS,
    DegradationLadder,
    DegradeConfig,
)
from repro.serve.resilience.retry import RetryPolicy, RetryScheduler

__all__ = [
    "Backpressure",
    "BreakerConfig",
    "ChaosPolicy",
    "CircuitBreaker",
    "CLOSED",
    "DEGRADATION_TIERS",
    "DeadlineExceeded",
    "DegradationLadder",
    "DegradeConfig",
    "HALF_OPEN",
    "InjectedFault",
    "OPEN",
    "RetriesExhausted",
    "RetryPolicy",
    "RetryScheduler",
    "ServeError",
    "WorkerError",
    "WorkerKilled",
]
