"""Deadline-aware retry with exponential backoff.

A retryable worker failure (injected fault, killed worker, transient
model error) should not surface to the caller if the request's deadline
still has room: the request re-enters the queue after an exponential
backoff and another worker picks it up.  :class:`RetryPolicy` is the
pure decision ("retry this, after this long?"); :class:`RetryScheduler`
is the mechanism -- one timer thread holding a heap of (due-time,
request) pairs that re-admits each request through
:meth:`~repro.serve.queue.RequestQueue.put_retry` when its backoff
elapses.

Ordering property (pinned by the tests): backoff delays are
non-decreasing in the attempt number and a retry is only scheduled when
``delay < remaining deadline budget``, so a retried request can never
be *scheduled* to fire after its own deadline.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.serve.errors import ServeError
from repro.serve.queue import QueueClosed, Request, RequestQueue

__all__ = ["RetryPolicy", "RetryScheduler"]


@dataclass
class RetryPolicy:
    """How many times to retry and how long to back off."""

    #: retries allowed after the first attempt (0 = fail fast)
    max_retries: int = 2
    #: backoff before the first retry (seconds)
    backoff: float = 0.002
    #: multiplier applied per further attempt (exponential)
    backoff_factor: float = 2.0
    #: ceiling on any single backoff (seconds)
    max_backoff: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff values must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``backoff * factor**(attempt-1)``, capped at ``max_backoff`` --
        non-decreasing in ``attempt`` by construction.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.max_backoff,
                   self.backoff * self.backoff_factor ** (attempt - 1))

    def should_retry(self, request: Request, exc: BaseException,
                     now: Optional[float] = None) -> bool:
        """Retry ``request`` after ``exc``?  (Budget- and kind-aware.)

        ``request.attempts`` counts retries already burned, so the
        *next* retry would be number ``attempts + 1``.  Requires a
        retryable failure, attempts left, and enough deadline budget
        that the backoff itself fits before expiry.
        """
        if not getattr(exc, "retryable", False):
            return False
        if request.attempts >= self.max_retries:
            return False
        return request.remaining(now) > self.delay_for(request.attempts + 1)


class RetryScheduler:
    """One timer thread re-admitting backed-off requests to the queue."""

    def __init__(self, queue: RequestQueue,
                 on_requeue: Optional[Callable[[Request], None]] = None):
        self.queue = queue
        self.on_requeue = on_requeue
        self._cond = threading.Condition()
        self._heap: List[Tuple[float, int, Request]] = []
        self._seq = itertools.count()
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        self.scheduled = 0
        self.requeued = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "RetryScheduler":
        if self._thread is not None:
            raise RuntimeError("retry scheduler already started")
        self._stopping = False
        self._thread = threading.Thread(
            target=self._run, name="serve-retry-scheduler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the timer and fail any still-pending retries."""
        with self._cond:
            self._stopping = True
            pending = [req for _, _, req in self._heap]
            self._heap.clear()
            self._cond.notify_all()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout)
        for req in pending:
            if not req.future.done():
                req.future.set_exception(ServeError(
                    "server stopped while request awaited retry",
                    model=req.model, attempts=req.attempts,
                ))

    # -- scheduling ----------------------------------------------------------

    def schedule(self, request: Request, delay: float,
                 now: float) -> None:
        """Re-admit ``request`` to the queue after ``delay`` seconds."""
        with self._cond:
            if self._stopping:
                raise QueueClosed("retry scheduler is stopping")
            heapq.heappush(self._heap,
                           (now + max(0.0, delay), next(self._seq), request))
            self.scheduled += 1
            self._cond.notify()

    def pending(self) -> int:
        with self._cond:
            return len(self._heap)

    # -- the timer loop ------------------------------------------------------

    def _run(self) -> None:
        import time as _time

        while True:
            with self._cond:
                while not self._heap and not self._stopping:
                    self._cond.wait()
                if self._stopping:
                    return
                due, _, request = self._heap[0]
                wait = due - _time.monotonic()
                if wait > 0:
                    self._cond.wait(wait)
                    continue
                heapq.heappop(self._heap)
            try:
                self.queue.put_retry(request)
                self.requeued += 1
                if self.on_requeue is not None:
                    self.on_requeue(request)
            except QueueClosed:
                if not request.future.done():
                    request.future.set_exception(ServeError(
                        "server stopped while request awaited retry",
                        model=request.model, attempts=request.attempts,
                    ))
