"""Per-worker circuit breaker: closed / open / half-open.

The pool gives every worker its own breaker.  While **closed**, the
worker serves normally and the breaker watches a sliding window of
outcomes; when the windowed error rate (or p95 latency) crosses its
threshold it **opens** and the worker stops pulling batches -- the other
workers keep draining the shared queue, so the pool routes around the
failing thread instead of feeding it work to burn.  After
``open_duration`` the breaker lets a limited number of **half-open**
probe batches through: if they all succeed it closes (window cleared),
one failure re-opens it.

The state machine is intentionally the textbook one (closed -> open on
error rate, open -> half-open on a timer, half-open -> closed/open on
probe outcome) because the interesting part here is what it *drives*:
breaker state feeds the :class:`~repro.serve.resilience.degrade.
DegradationLadder`, which converts "workers are failing" into the
paper's graceful-degradation knobs.

All methods are thread-safe; ``allow``/``record_*`` hold one lock for a
handful of scalar ops.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["BreakerConfig", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: numeric codes for the breaker-state gauge (Prometheus-friendly)
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


@dataclass
class BreakerConfig:
    """Trip/recover thresholds for one :class:`CircuitBreaker`."""

    #: sliding window of recent outcomes the error rate is computed over
    window: int = 32
    #: don't trip before this many outcomes are in the window
    min_samples: int = 8
    #: windowed error rate at/above which the breaker opens
    error_threshold: float = 0.5
    #: optional p95 latency (seconds) at/above which the breaker opens
    latency_threshold: Optional[float] = None
    #: seconds to stay open before letting probes through
    open_duration: float = 1.0
    #: probe batches allowed (and successes required) while half-open
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0 < self.error_threshold <= 1:
            raise ValueError(
                f"error_threshold must be in (0, 1], got {self.error_threshold}"
            )
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """Error-rate + latency keyed state machine guarding one worker."""

    def __init__(self, config: Optional[BreakerConfig] = None,
                 name: str = "",
                 time_fn: Callable[[], float] = time.monotonic):
        self.config = config or BreakerConfig()
        self.name = name
        self._time = time_fn
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: deque = deque(maxlen=self.config.window)  # True=failure
        self._latencies: deque = deque(maxlen=self.config.window)
        self._opened_at = -math.inf
        self._probe_permits = 0
        self._probe_successes = 0
        # lifetime transition counters (exported via stats())
        self.opened = 0
        self.half_opened = 0
        self.closed_from_half_open = 0
        self.reopened = 0

    # -- state inspection ----------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    @property
    def state_code(self) -> int:
        """0 = closed, 1 = half-open, 2 = open (for the obs gauge)."""
        return STATE_CODES[self.state]

    def _state_locked(self) -> str:
        # lazily perform the timed open -> half-open transition so a
        # reader observes the same state a caller of allow() would
        if (self._state == OPEN
                and self._time() - self._opened_at >= self.config.open_duration):
            self._state = HALF_OPEN
            self.half_opened += 1
            self._probe_permits = self.config.half_open_probes
            self._probe_successes = 0
        return self._state

    def error_rate(self) -> Optional[float]:
        """Windowed failure fraction, ``None`` while the window is empty."""
        with self._lock:
            if not self._outcomes:
                return None
            return sum(self._outcomes) / len(self._outcomes)

    def recent_p95(self) -> Optional[float]:
        with self._lock:
            if not self._latencies:
                return None
            ordered = sorted(self._latencies)
        idx = min(len(ordered) - 1,
                  max(0, math.ceil(0.95 * len(ordered)) - 1))
        return ordered[idx]

    # -- the gate ------------------------------------------------------------

    def allow(self) -> bool:
        """May this worker take work right now?

        Closed: always.  Open: no, until ``open_duration`` elapses
        (which flips to half-open).  Half-open: yes while probe permits
        remain, each call consuming one.
        """
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and self._probe_permits > 0:
                self._probe_permits -= 1
                return True
            return False

    # -- outcome feedback ----------------------------------------------------

    def record_success(self, latency: Optional[float] = None) -> None:
        with self._lock:
            state = self._state_locked()
            if state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.config.half_open_probes:
                    self._close_locked()
                return
            if state == OPEN:  # stale result from before the trip
                return
            self._outcomes.append(False)
            if latency is not None:
                self._latencies.append(float(latency))
            self._maybe_trip_locked()

    def record_failure(self, latency: Optional[float] = None) -> None:
        with self._lock:
            state = self._state_locked()
            if state == HALF_OPEN:
                # one failed probe re-opens immediately
                self._state = OPEN
                self._opened_at = self._time()
                self.reopened += 1
                return
            if state == OPEN:
                return
            self._outcomes.append(True)
            if latency is not None:
                self._latencies.append(float(latency))
            self._maybe_trip_locked()

    # -- transitions (lock held) --------------------------------------------

    def _maybe_trip_locked(self) -> None:
        cfg = self.config
        if len(self._outcomes) < cfg.min_samples:
            return
        rate = sum(self._outcomes) / len(self._outcomes)
        tripped = rate >= cfg.error_threshold
        if not tripped and cfg.latency_threshold is not None and self._latencies:
            ordered = sorted(self._latencies)
            idx = min(len(ordered) - 1,
                      max(0, math.ceil(0.95 * len(ordered)) - 1))
            tripped = ordered[idx] >= cfg.latency_threshold
        if tripped:
            self._state = OPEN
            self._opened_at = self._time()
            self.opened += 1

    def _close_locked(self) -> None:
        self._state = CLOSED
        self._outcomes.clear()
        self._latencies.clear()
        self._probe_permits = 0
        self._probe_successes = 0
        self.closed_from_half_open += 1

    def force_open(self) -> None:
        """Trip the breaker now (tests, manual drain of one worker)."""
        with self._lock:
            self._state = OPEN
            self._opened_at = self._time()
            self.opened += 1

    def stats(self) -> dict:
        """JSON-serializable snapshot for ``InferenceServer.stats()``."""
        return {
            "state": self.state,
            "error_rate": self.error_rate(),
            "recent_p95_s": self.recent_p95(),
            "opened": self.opened,
            "half_opened": self.half_opened,
            "closed_from_half_open": self.closed_from_half_open,
            "reopened": self.reopened,
        }
