"""Chaos harness: seeded fault injection into a running server.

:class:`ChaosPolicy` is the falsifiable half of the resilience story:
it injects the failure modes the paper argues HDC shrugs off --
transient worker faults, latency spikes, outright worker deaths, and
VOS-style class-memory bit flips (via the unified
:class:`~repro.hardware.faultspec.FaultSpec`) -- so the bench can
*measure* availability and accuracy under faults instead of asserting
them.  Attach one to a server::

    chaos = ChaosPolicy(fault_rate=0.2,
                        fault=FaultSpec(error_rate=1e-4, bits=8))
    server = InferenceServer(config, chaos=chaos)

Worker threads consult the policy per batch group:

- :meth:`on_group` may raise :class:`~repro.serve.errors.InjectedFault`
  (retryable -- exercises retry/backoff and the circuit breaker),
  raise :class:`~repro.serve.errors.WorkerKilled` (unwinds the worker
  thread -- exercises future cleanup and supervisor respawn), or sleep
  (exercises deadline shedding and latency-keyed breaking);
- :meth:`memory_fault` hands out the bit-flip spec plus a child rng, so
  the search stage runs against independently corrupted class memory.

Draws come from one seeded generator under a lock, so a chaos scenario
is reproducible request-for-request given a single worker and
statistically stable for any worker count.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.hardware.faultspec import FaultSpec
from repro.serve.errors import InjectedFault, WorkerKilled

__all__ = ["ChaosPolicy"]


@dataclass
class ChaosPolicy:
    """What to break, how often, and with what seed."""

    #: probability an injected (retryable) exception replaces a batch group
    fault_rate: float = 0.0
    #: probability of an artificial stall before serving a batch group
    latency_rate: float = 0.0
    #: stall duration (seconds) when ``latency_rate`` fires
    latency: float = 0.01
    #: probability the worker thread is killed before serving a group
    kill_rate: float = 0.0
    #: memory bit-flip spec applied to the search stage (None = no flips)
    fault: Optional[FaultSpec] = None
    #: restrict injection to these worker ids (None = all workers)
    target_workers: Optional[Sequence[int]] = None
    #: cap on total injected kills (None = unbounded)
    max_kills: Optional[int] = None
    seed: int = 0

    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in ("fault_rate", "latency_rate", "kill_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        self._rng = np.random.default_rng(self.seed)
        self._targets = (None if self.target_workers is None
                         else frozenset(int(w) for w in self.target_workers))
        self.injected_faults = 0
        self.injected_delays = 0
        self.injected_kills = 0
        self.bitflip_injections = 0

    # -- dice ----------------------------------------------------------------

    def _hit(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        with self._lock:
            return bool(self._rng.random() < rate)

    def targets(self, worker_id: int) -> bool:
        return self._targets is None or worker_id in self._targets

    # -- injection points ----------------------------------------------------

    def on_group(self, worker_id: int, model: str) -> None:
        """Called by a worker before serving one batch group.

        May sleep (latency), raise :class:`InjectedFault` (transient,
        retryable) or raise :class:`WorkerKilled` (thread death).
        """
        if not self.targets(worker_id):
            return
        if self._hit(self.kill_rate):
            with self._lock:
                exhausted = (self.max_kills is not None
                             and self.injected_kills >= self.max_kills)
                if not exhausted:
                    self.injected_kills += 1
            if not exhausted:
                raise WorkerKilled(worker_id)
        if self._hit(self.latency_rate):
            with self._lock:
                self.injected_delays += 1
            time.sleep(self.latency)
        if self._hit(self.fault_rate):
            with self._lock:
                self.injected_faults += 1
            raise InjectedFault(
                f"chaos-injected fault serving {model!r}",
                model=model, worker=worker_id,
            )

    def memory_fault(
        self, worker_id: int,
    ) -> Optional[Tuple[FaultSpec, np.random.Generator]]:
        """The bit-flip spec + a fresh child rng for one search call.

        Returns ``None`` when no memory faults are configured or the
        worker is out of scope; otherwise every call yields an
        independent (but seeded) corruption draw, modeling a fresh
        faulty read of the over-scaled class memory.
        """
        if self.fault is None or not self.fault.active:
            return None
        if not self.targets(worker_id):
            return None
        with self._lock:
            self.bitflip_injections += 1
            child_seed = int(self._rng.integers(0, 2 ** 63))
        return self.fault, np.random.default_rng(child_seed)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "injected_faults": self.injected_faults,
                "injected_delays": self.injected_delays,
                "injected_kills": self.injected_kills,
                "bitflip_injections": self.bitflip_injections,
                "fault": self.fault.describe() if self.fault else None,
            }
