"""Micro-batching inference service for trained GENERIC models.

This subpackage turns the repo's single-call ``predict()`` APIs into a
*service*: a bounded request queue, a micro-batcher that coalesces
requests for batched encode + packed Hamming search, a hot-swappable
model registry, and an adaptive load-shedding policy that degrades
gracefully under overload by dropping prediction dimensionality in
128-dim steps -- the paper's Section 4.3.3 on-demand dimension
reduction with exact :class:`~repro.core.norms.SubNormTable` prefix
norms, driven by live load instead of a static spec.

Entry points:

- :class:`InferenceServer` / :class:`ServeConfig` -- the service façade;
- :class:`ModelRegistry` / :class:`Deployment` -- named model versions;
- :class:`LoadShedPolicy` -- the queue-depth/p95 shed controller;
- :mod:`repro.serve.resilience` -- circuit breakers, deadline/retry
  handling, graceful-degradation tiers and the :class:`ChaosPolicy`
  fault-injection harness;
- :mod:`repro.serve.bench` (``python -m repro.serve.bench``) -- the
  open-loop Poisson traffic harness.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.errors import (
    Backpressure,
    DeadlineExceeded,
    InjectedFault,
    RetriesExhausted,
    ServeError,
    WorkerError,
    WorkerKilled,
)
from repro.serve.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsHub,
    SlidingWindow,
)
from repro.serve.policy import LoadShedPolicy
from repro.serve.queue import QueueClosed, QueueFull, Request, RequestQueue
from repro.serve.registry import Deployment, ModelRegistry
from repro.serve.resilience import (
    BreakerConfig,
    ChaosPolicy,
    CircuitBreaker,
    DegradationLadder,
    DegradeConfig,
    RetryPolicy,
    RetryScheduler,
)
from repro.serve.server import InferenceServer, ServeConfig
from repro.serve.sharded import ShardedServeConfig, ShardedServer, ShardRouter
from repro.serve.surface import (
    STATS_OPTIONAL_KEYS,
    STATS_REQUIRED_KEYS,
    ServingSurface,
    ServingSurfaceBase,
    validate_stats,
)
from repro.serve.workers import Prediction, WorkerPool

__all__ = [
    "Backpressure",
    "BreakerConfig",
    "ChaosPolicy",
    "CircuitBreaker",
    "Counter",
    "DeadlineExceeded",
    "DegradationLadder",
    "DegradeConfig",
    "Deployment",
    "Gauge",
    "InferenceServer",
    "InjectedFault",
    "LatencyHistogram",
    "LoadShedPolicy",
    "MetricsHub",
    "MicroBatcher",
    "ModelRegistry",
    "Prediction",
    "QueueClosed",
    "QueueFull",
    "Request",
    "RequestQueue",
    "RetriesExhausted",
    "RetryPolicy",
    "RetryScheduler",
    "STATS_OPTIONAL_KEYS",
    "STATS_REQUIRED_KEYS",
    "ServeConfig",
    "ServeError",
    "ServingSurface",
    "ServingSurfaceBase",
    "ShardRouter",
    "ShardedServeConfig",
    "ShardedServer",
    "SlidingWindow",
    "validate_stats",
    "WorkerError",
    "WorkerKilled",
    "WorkerPool",
]
