"""Serving metrics, now backed by the shared :mod:`repro.obs` registry.

Historically this module owned its own counter/gauge/histogram
implementations; PR 4 moved those into :mod:`repro.obs.registry` so the
whole repo shares one thread-safe metrics layer, and this module became
the serving-flavored façade over it.  The public API is unchanged --
:class:`Counter`, :class:`Gauge`, :class:`LatencyHistogram`,
:class:`SlidingWindow` and :class:`MetricsHub` keep their names,
methods and snapshot schema -- but every instrument is an
:mod:`repro.obs` instrument, so a hub can be rendered in the Prometheus
text format (:meth:`MetricsHub.render_prometheus`) or mounted on an
HTTP endpoint by the server.

Each :class:`MetricsHub` wraps its **own**
:class:`~repro.obs.registry.Registry` by default (servers run
concurrently in tests and benches; their metrics must not mix), but a
shared registry -- e.g. the process-global
:data:`repro.obs.registry.REGISTRY` -- can be injected.

:class:`SlidingWindow` keeps the last ``N`` raw samples for the shed
policy's *recent* p95 -- a whole-run histogram would react far too
slowly to a load spike -- and stays a policy-local structure rather
than a registry metric.

All classes are thread-safe; workers record from multiple threads (the
``inc``/``record`` fast paths hold one uncontended per-instrument lock).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Dict, List, Optional

from repro.obs.registry import Counter, Gauge, Histogram, Registry

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "SlidingWindow",
    "MetricsHub",
]


class LatencyHistogram(Histogram):
    """Log-bucketed latency histogram over seconds.

    The shared :class:`~repro.obs.registry.Histogram` with the serving
    defaults spelled out: buckets grow geometrically from 1 us by 1.35x
    (~24 buckets per decade), values above the top bucket land in an
    overflow bucket whose reported bound is the largest recorded value.
    """

    def __init__(self, least: float = 1e-6, growth: float = 1.35,
                 buckets: int = 64) -> None:
        super().__init__(least=least, growth=growth, buckets=buckets)


class SlidingWindow:
    """Last-``N`` raw samples with exact percentile queries."""

    def __init__(self, size: int = 256) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size}")
        self._lock = threading.Lock()
        self._samples: deque = deque(maxlen=size)

    def record(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentile(self, p: float) -> Optional[float]:
        """Exact percentile of the window, ``None`` while empty."""
        with self._lock:
            if not self._samples:
                return None
            ordered: List[float] = sorted(self._samples)
        idx = min(len(ordered) - 1, int(math.ceil(p / 100.0 * len(ordered))) - 1)
        return ordered[max(0, idx)]


class MetricsHub:
    """Named registry of counters, gauges and histograms.

    A thin serving façade over a :class:`repro.obs.registry.Registry`:
    ``counter``/``gauge``/``histogram`` get-or-create the (unlabeled)
    instrument of that name, exactly as before the refactor.
    """

    def __init__(self, registry: Optional[Registry] = None) -> None:
        self.registry = registry if registry is not None else Registry(
            namespace="serve"
        )

    def counter(self, name: str) -> Counter:
        return self.registry.counter(name).labels()

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name).labels()

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name).labels()

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict dump of every metric (JSON-serializable)."""
        return self.registry.snapshot()

    def render_prometheus(self) -> str:
        """Prometheus text-format exposition of this hub's registry."""
        return self.registry.render_prometheus()
