"""Lightweight serving metrics: histograms, counters, gauges.

The serving layer needs just enough instrumentation to (a) drive the
load-shedding policy (recent latency percentiles, queue depth) and
(b) emit a human/machine-readable report from the bench harness --
without pulling in an external metrics dependency.

:class:`LatencyHistogram` uses fixed log-spaced buckets (1 us .. ~100 s,
~24 buckets per decade of range at the chosen growth factor), so
``record`` is O(log buckets) and percentile queries never retain raw
samples.  :class:`SlidingWindow` keeps the last ``N`` raw samples for
the policy's *recent* p95 -- a histogram over the whole run would react
far too slowly to a load spike.

All classes are thread-safe; workers record from multiple threads.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Dict, List, Optional


class Counter:
    """Monotonically increasing event counter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (queue depth, shed level); tracks its max."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if value > self._max:
                self._max = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def max(self) -> float:
        with self._lock:
            return self._max


class LatencyHistogram:
    """Log-bucketed latency histogram over seconds.

    Buckets grow geometrically from ``least`` by ``growth`` per bucket;
    values above the top bucket land in a final overflow bucket whose
    reported bound is the largest recorded value.
    """

    def __init__(self, least: float = 1e-6, growth: float = 1.35,
                 buckets: int = 64) -> None:
        self._lock = threading.Lock()
        self._bounds = [least * growth ** i for i in range(buckets)]
        self._counts = [0] * (buckets + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    def record(self, seconds: float) -> None:
        s = max(0.0, float(seconds))
        with self._lock:
            lo, hi = 0, len(self._bounds)
            while lo < hi:  # first bucket whose bound >= s
                mid = (lo + hi) // 2
                if self._bounds[mid] >= s:
                    hi = mid
                else:
                    lo = mid + 1
            self._counts[lo] += 1
            self._count += 1
            self._sum += s
            self._min = min(self._min, s)
            self._max = max(self._max, s)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (0..100) from bucket bounds."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = p / 100.0 * self._count
            seen = 0.0
            for i, c in enumerate(self._counts):
                seen += c
                if seen >= rank and c:
                    upper = (self._bounds[i] if i < len(self._bounds)
                             else self._max)
                    return min(upper, self._max)
            return self._max

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "min_s": 0.0 if self.count == 0 else self._min,
            "max_s": self._max,
        }


class SlidingWindow:
    """Last-``N`` raw samples with exact percentile queries."""

    def __init__(self, size: int = 256) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size}")
        self._lock = threading.Lock()
        self._samples: deque = deque(maxlen=size)

    def record(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentile(self, p: float) -> Optional[float]:
        """Exact percentile of the window, ``None`` while empty."""
        with self._lock:
            if not self._samples:
                return None
            ordered: List[float] = sorted(self._samples)
        idx = min(len(ordered) - 1, int(math.ceil(p / 100.0 * len(ordered))) - 1)
        return ordered[max(0, idx)]


class MetricsHub:
    """Named registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            return self._histograms.setdefault(name, LatencyHistogram())

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict dump of every metric (JSON-serializable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: v.value for k, v in counters.items()},
            "gauges": {k: {"value": v.value, "max": v.max}
                       for k, v in gauges.items()},
            "histograms": {k: v.snapshot() for k, v in histograms.items()},
        }
