"""Named model deployments with hot swap.

:class:`Deployment` adapts the repo's two user-facing inference engines
-- full-precision :class:`~repro.core.classifier.HDClassifier` (and its
:class:`~repro.core.online.AdaptiveHDClassifier` subclass) and the
bit-packed :class:`~repro.core.packed.PackedModel` -- to one batched,
two-stage interface the workers drive:

- ``encode(X)``   -> stage-1 representation (float encodings / packed words)
- ``search(E, dim)`` -> labels, optionally over a reduced 128-multiple
  prefix of the dimensions.

For the full-precision path, reduced-dimension search goes through
``HDClassifier.predict_encoded(dim=...)`` and therefore uses the exact
per-128-dim prefix norms of the :class:`~repro.core.norms.SubNormTable`
(paper Section 4.3.3) -- never the stale full-length norms.  For the
packed path, prefix Hamming distance is used; binary prefix norms are
exact by construction.

:class:`ModelRegistry` maps names to deployments and supports hot swap
two ways: re-registering a name replaces the deployment wholesale
(fresh state), while :meth:`ModelRegistry.swap` installs a new model
*version* that inherits the old deployment's serving state -- min_dim,
compute config, the degradation ladder's engine-fallback bookkeeping --
and can optionally drain the old version (block until its in-flight
batches finish; new batches already land on the new version).  Workers
bracket their use of a deployment with :meth:`Deployment.serving`, so a
drain is precise rather than a sleep.

Deployments can also carry a ``dim_order`` -- a permutation applied to
query encodings before search, matched by a column-permuted class
matrix.  This is the hook for DistHD-style dimension regeneration
(:mod:`repro.stream.regen`): with both sides permuted identically,
full-dimension results are unchanged while prefix (shed) searches keep
the most informative dimensions.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.config import ComputeConfig
from repro.core.norms import DEFAULT_BLOCK
from repro.core.packed import PackedModel

Model = Union[HDClassifier, PackedModel]

#: sentinel for "no approx fallback active" -- None is a *valid* saved
#: approx_folds value (exact encoding), so absence needs its own marker
_NOT_DEGRADED = object()


class Deployment:
    """A servable model: batched two-stage inference + shed-dim mapping.

    ``config`` (a :class:`~repro.core.config.ComputeConfig`) carries the
    compute knobs: ``config.engine`` selects the encoding path when the
    model's encoder supports one (``"reference"``/``"packed"``/``"auto"``
    on the GENERIC-family encoders); ``config.encode_jobs`` fans the
    encode stage out over a thread pool.  The ``engine``/``encode_jobs``
    kwargs override matching config fields.  Everything defaults to
    leaving the model as-is.
    """

    def __init__(self, name: str, model: Model, version: int = 1,
                 min_dim: Optional[int] = None,
                 engine: Optional[str] = None,
                 encode_jobs: Optional[int] = None,
                 config: Optional[ComputeConfig] = None,
                 dim_order: Optional[np.ndarray] = None):
        self.name = name
        self.model = model
        self.version = version
        self.config = (config.replace() if config is not None
                       else ComputeConfig())
        if engine is not None:
            self.config.engine = engine
        if encode_jobs is not None:
            self.config.encode_jobs = encode_jobs
        self.encode_jobs = self.config.encode_jobs
        engine = self.config.engine
        if engine is not None:
            encoder = model.encoder
            if not hasattr(encoder, "engine"):
                raise ValueError(
                    f"deployment {name!r}: {type(encoder).__name__} has "
                    "no selectable engine"
                )
            encoder.engine = engine
        self.engine = engine
        # engine the degradation ladder saved before a fallback (tier 1)
        self._engine_before_fallback: Optional[str] = None
        # approx_folds saved before the ladder's approx tier engaged
        self._approx_before_fallback = _NOT_DEGRADED

        if isinstance(model, PackedModel):
            self.kind = "packed"
            self.dim = model.dim
            self.block = DEFAULT_BLOCK
        elif isinstance(model, HDClassifier):
            if model.model_ is None:
                raise ValueError(
                    f"model for deployment {name!r} is not fitted"
                )
            self.kind = "classifier"
            self.dim = model.encoder.dim
            self.block = model.norm_block
        else:
            raise TypeError(
                f"cannot deploy {type(model).__name__}; expected "
                "HDClassifier or PackedModel"
            )

        if min_dim is None:
            # default floor: shed down to a quarter of the dimensions,
            # the deepest reduction Fig. 5 shows staying usable
            min_dim = max(self.block, (self.dim // 4 // self.block) * self.block)
        if min_dim % self.block or not 0 < min_dim <= self.dim:
            raise ValueError(
                f"min_dim={min_dim} must be a positive multiple of "
                f"block={self.block} and <= dim={self.dim}"
            )
        self.min_dim = min_dim

        if dim_order is not None:
            if self.kind != "classifier":
                raise ValueError(
                    f"deployment {name!r}: dim_order regeneration needs a "
                    "classifier deployment (packed words bake the layout in)"
                )
            dim_order = np.asarray(dim_order, dtype=np.int64)
            if (dim_order.shape != (self.dim,)
                    or not np.array_equal(np.sort(dim_order),
                                          np.arange(self.dim))):
                raise ValueError(
                    f"dim_order must be a permutation of range({self.dim})"
                )
        self.dim_order = dim_order

        # in-flight accounting so swap() can drain the old version
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._drained = threading.Event()
        self._drained.set()

    # -- in-flight tracking (drained hot swap) ------------------------------

    @contextmanager
    def serving(self):
        """Bracket one batch's use of this deployment (workers call this)."""
        with self._inflight_lock:
            self._inflight += 1
            self._drained.clear()
        try:
            yield self
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                if self._inflight <= 0:
                    self._drained.set()

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until no batch is being served on this deployment."""
        return self._drained.wait(timeout)

    # -- shed-level mapping -------------------------------------------------

    def dim_for_level(self, level: int) -> int:
        """Serving dimensionality at shed ``level`` (128-dim steps).

        Level 0 is the full model; each level drops one ``block`` of
        dimensions, floored at ``min_dim``.
        """
        reduced = self.dim - max(0, int(level)) * self.block
        return max(self.min_dim, min(self.dim, reduced))

    @property
    def max_level(self) -> int:
        """Deepest meaningful shed level for this deployment."""
        return (self.dim - self.min_dim) // self.block

    # -- batched two-stage inference ---------------------------------------

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Stage 1: raw features -> model-native query representation."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if self.kind == "packed":
            if self.encode_jobs is not None:
                self.model.encode_jobs = self.encode_jobs
            return self.model.encode_packed(X)
        encoded = self.model.encoder.encode_batch(
            X, n_jobs=self.encode_jobs
        ).astype(np.float64)
        if self.dim_order is not None:
            # regenerated layout: queries permute to match the permuted
            # class matrix, so prefix searches keep informative dims
            encoded = encoded[:, self.dim_order]
        return encoded

    def search(self, encoded: np.ndarray,
               dim: Optional[int] = None,
               fault=None,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Stage 2: associative search over (optionally) reduced dims.

        With ``fault`` (a :class:`~repro.hardware.faultspec.FaultSpec`)
        and ``rng``, the search runs against a freshly corrupted copy of
        the class memory -- one faulty read of the VOS-scaled SRAM --
        while the deployment's own model stays pristine.
        """
        if dim is not None and dim >= self.dim:
            dim = None
        model = self.model
        if fault is not None and fault.active:
            if rng is None:
                raise ValueError("fault injection needs an rng")
            if self.kind == "packed":
                model = model.with_words(
                    fault.corrupt_words(model.class_words, rng)
                )
            else:
                model = fault.corrupt_classifier(model, rng)
        if self.kind == "packed":
            return model.predict_packed(encoded, dim=dim)
        return model.predict_encoded(encoded, dim=dim)

    def predict(self, X: np.ndarray, dim: Optional[int] = None) -> np.ndarray:
        """Both stages in one call (the non-serving reference path)."""
        return self.search(self.encode(X), dim=dim)

    # -- degradation hooks (ladder tiers 1 and 2) ---------------------------

    def fallback_engine(self, engine: str = "reference") -> bool:
        """Drop to a simpler encode engine (degradation tier 1).

        Returns True when an engine switch actually happened; no-op for
        encoders without a selectable engine or when already fallen
        back.  The previous engine is saved for :meth:`restore_engine`.
        """
        encoder = getattr(self.model, "encoder", None)
        if encoder is None or not hasattr(encoder, "engine"):
            return False
        if self._engine_before_fallback is not None:
            return False
        current = encoder.engine
        if current == engine:
            return False
        self._engine_before_fallback = current
        encoder.engine = engine
        return True

    def restore_engine(self) -> bool:
        """Undo :meth:`fallback_engine` (recovery from tier 1)."""
        if self._engine_before_fallback is None:
            return False
        self.model.encoder.engine = self._engine_before_fallback
        self._engine_before_fallback = None
        return True

    def fallback_approx(self, fraction: float = 0.5) -> bool:
        """Switch to multifold approximate encoding (the approx tier).

        Folds only ``fraction`` of the encoder's windows
        (``approx_folds``, SHEARer-style evenly spaced sampling) --
        cheaper encodes at a bounded count error, quality shed before
        any dimension is.  Returns True when approximation actually
        engaged; no-op for encoders without ``approx_folds`` support or
        when already engaged.  The previous setting is saved for
        :meth:`restore_approx`.
        """
        encoder = getattr(self.model, "encoder", None)
        if encoder is None or not hasattr(encoder, "approx_folds"):
            return False
        if self._approx_before_fallback is not _NOT_DEGRADED:
            return False
        if not 0 < fraction <= 1:
            raise ValueError(
                f"approx fraction must be in (0, 1], got {fraction}"
            )
        n_windows = getattr(encoder, "n_windows", None)
        if n_windows is None:
            return False
        folds = max(1, int(round(fraction * n_windows)))
        if encoder.approx_folds is not None and encoder.approx_folds <= folds:
            return False  # already at least this approximate
        self._approx_before_fallback = encoder.approx_folds
        encoder.approx_folds = folds
        return True

    def restore_approx(self) -> bool:
        """Undo :meth:`fallback_approx` (recovery from the approx tier)."""
        if self._approx_before_fallback is _NOT_DEGRADED:
            return False
        self.model.encoder.approx_folds = self._approx_before_fallback
        self._approx_before_fallback = _NOT_DEGRADED
        return True

    @property
    def degraded(self) -> bool:
        return self._engine_before_fallback is not None

    @property
    def approx_degraded(self) -> bool:
        return self._approx_before_fallback is not _NOT_DEGRADED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Deployment(name={self.name!r}, kind={self.kind}, "
            f"dim={self.dim}, version={self.version})"
        )


class ModelRegistry:
    """Thread-safe name -> :class:`Deployment` map with versioned swap."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._deployments: Dict[str, Deployment] = {}
        self.swaps = 0

    def register(self, name: str, model: Model,
                 min_dim: Optional[int] = None,
                 engine: Optional[str] = None,
                 encode_jobs: Optional[int] = None,
                 config: Optional[ComputeConfig] = None) -> Deployment:
        """Deploy ``model`` under ``name``; replaces any existing
        deployment wholesale (fresh serving state) and bumps the
        version.  For mid-flight model *updates* prefer :meth:`swap`,
        which inherits the old deployment's serving state and can drain
        the outgoing version."""
        with self._lock:
            previous = self._deployments.get(name)
            version = previous.version + 1 if previous else 1
            dep = Deployment(name, model, version=version, min_dim=min_dim,
                             engine=engine, encode_jobs=encode_jobs,
                             config=config)
            self._deployments[name] = dep
            return dep

    def swap(self, name: str, model: Model,
             dim_order: Optional[np.ndarray] = None,
             drain: bool = False,
             drain_timeout: Optional[float] = 5.0) -> Deployment:
        """Atomically install ``model`` as the next version of ``name``.

        Unlike :meth:`register`, the deployment must already exist and
        the new version inherits its serving state: ``min_dim`` (when
        the dimensionality is unchanged), the compute config, and the
        degradation ladder's engine-fallback bookkeeping, so a hot swap
        in the middle of a degraded period does not silently undo the
        ladder's tier-1 effect.  The version is bumped under the
        registry lock -- concurrent :meth:`get` sees either the old or
        the new deployment, never a torn mix, and versions are strictly
        monotonic per name.

        ``dim_order`` installs (or, left ``None``, clears) a
        regenerated dimension layout for the new version -- pass the
        composed permutation from :mod:`repro.stream.regen`.

        With ``drain=True`` the call additionally blocks (up to
        ``drain_timeout`` seconds) until batches in flight on the *old*
        version finish; new batches already land on the new version, so
        a drain only waits for the tail, it never pauses serving.
        Returns the new deployment.
        """
        with self._lock:
            try:
                old = self._deployments[name]
            except KeyError:
                raise KeyError(
                    f"swap: no deployment named {name!r}; register it "
                    "first"
                ) from None
            new_dim = (model.dim if isinstance(model, PackedModel)
                       else model.encoder.dim)
            min_dim = old.min_dim if new_dim == old.dim else None
            dep = Deployment(name, model, version=old.version + 1,
                             min_dim=min_dim, config=old.config,
                             dim_order=dim_order)
            if old._engine_before_fallback is not None:
                # the ladder degraded the old version to a simpler
                # engine; keep the new version on the same tier so
                # recovery (restore_engine) stays symmetric
                encoder = getattr(dep.model, "encoder", None)
                if encoder is not None and hasattr(encoder, "engine"):
                    dep._engine_before_fallback = old._engine_before_fallback
                    fallen = getattr(
                        getattr(old.model, "encoder", None), "engine", None
                    )
                    if fallen is not None:
                        encoder.engine = fallen
            if old._approx_before_fallback is not _NOT_DEGRADED:
                # same symmetry for the approx tier: the new version
                # keeps encoding approximately until restore_approx()
                encoder = getattr(dep.model, "encoder", None)
                if encoder is not None and hasattr(encoder, "approx_folds"):
                    dep._approx_before_fallback = old._approx_before_fallback
                    degraded_folds = getattr(
                        getattr(old.model, "encoder", None),
                        "approx_folds", None,
                    )
                    if degraded_folds is not None:
                        encoder.approx_folds = degraded_folds
            self._deployments[name] = dep
            self.swaps += 1
        if drain:
            old.wait_drained(drain_timeout)
        return dep

    def get(self, name: str) -> Deployment:
        with self._lock:
            try:
                return self._deployments[name]
            except KeyError:
                raise KeyError(
                    f"no deployment named {name!r}; registered: "
                    f"{sorted(self._deployments)}"
                ) from None

    def unregister(self, name: str) -> None:
        with self._lock:
            self._deployments.pop(name, None)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._deployments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._deployments

    def __len__(self) -> int:
        with self._lock:
            return len(self._deployments)
