"""Micro-batching: coalesce queued requests into inference batches.

Batched encode + packed search amortizes per-call overhead (NumPy
dispatch here; kernel launches on the paper's eGPU -- its 20 us sync
latency in :mod:`repro.platforms.egpu` is exactly why HDC serving wants
batches).  The batcher implements the classic two-knob policy:

- ``max_batch``: never return more than this many requests at once;
- ``max_wait``: after the *first* request of a batch arrives, wait at
  most this long for followers before dispatching.

Under light load batches are mostly singletons dispatched immediately
(the first request never waits for ``max_wait`` unless followers might
still arrive); under heavy load batches fill to ``max_batch`` without
waiting at all, so throughput rises exactly when it is needed.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.serve.queue import Request, RequestQueue


class MicroBatcher:
    """Pulls coalesced batches off a :class:`RequestQueue`.

    With deadlines in play (``ServeConfig.default_deadline`` /
    ``submit(timeout=...)``), requests whose deadline has already passed
    are **shed at dispatch** rather than batched: serving them would
    burn worker time on an answer nobody is waiting for -- the queueing
    pathology deadline propagation exists to stop.  Each expired request
    goes to the ``on_expired`` callback (the server resolves its future
    with :class:`~repro.serve.errors.DeadlineExceeded` and counts it)
    and does not occupy a batch slot.
    """

    def __init__(self, queue: RequestQueue, max_batch: int = 32,
                 max_wait: float = 0.002,
                 on_expired: Optional[Callable[[Request], None]] = None):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.queue = queue
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.on_expired = on_expired

    def _admit(self, request: Request, batch: List[Request]) -> None:
        """Append to the batch, or shed if the deadline already passed."""
        if request.expired():
            if self.on_expired is not None:
                self.on_expired(request)
            return
        batch.append(request)

    def next_batch(self, timeout: Optional[float] = None) -> List[Request]:
        """Blocking: one batch of 1..max_batch live requests, or ``[]``.

        ``timeout`` bounds the wait for the *first* request (so worker
        loops can poll their stop flag); ``max_wait`` then bounds the
        linger for followers.  Returns ``[]`` on timeout, when the
        queue is closed and drained, or when everything pulled had
        already expired.
        """
        first = self.queue.get(timeout=timeout)
        if first is None:
            return []
        batch: List[Request] = []
        self._admit(first, batch)
        deadline = time.monotonic() + self.max_wait
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # linger expired -- grab whatever is already queued, no wait
                nxt = self.queue.get(timeout=0)
                if nxt is None:
                    break
                self._admit(nxt, batch)
                continue
            nxt = self.queue.get(timeout=remaining)
            if nxt is None:
                break
            self._admit(nxt, batch)
        return batch
