"""Adaptive load shedding via on-demand dimension reduction.

Section 4.3.3 of the paper makes dimensionality a *runtime* knob: the
engine can score queries on a 128-multiple prefix of the dimensions,
with exact per-prefix norms kept in the sub-norm memory so accuracy
degrades gracefully instead of collapsing.  The paper drives that knob
from a static application spec; here it is driven by live load.

:class:`LoadShedPolicy` maintains one integer **shed level** (0 = full
dimensionality; each level drops 128 dims).  Workers feed it per-request
total latencies; after each batch it observes queue depth and the
recent-window p95 and moves the level:

- **shed** (level + 1) when the queue is deeper than ``queue_high`` or
  the recent p95 exceeds ``p95_target``;
- **recover** (level - 1) when the queue is at or below ``queue_low``
  *and* the p95 is comfortably under target (hysteresis -- the recover
  threshold is a fraction of the shed threshold so the level does not
  oscillate);
- changes are rate-limited by a ``cooldown`` so one burst moves the
  level one step, not all the way to the floor.

The policy is model-agnostic: it speaks levels, and each
:class:`~repro.serve.registry.Deployment` maps a level to its own
(clamped) 128-multiple dimensionality.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.serve.metrics import SlidingWindow


class LoadShedPolicy:
    """Queue-depth + latency driven shed-level controller."""

    def __init__(
        self,
        max_level: int = 24,
        queue_high: int = 32,
        queue_low: int = 2,
        p95_target: Optional[float] = None,
        recover_fraction: float = 0.5,
        cooldown: float = 0.05,
        window: int = 256,
        time_fn: Callable[[], float] = time.monotonic,
    ):
        if max_level < 0:
            raise ValueError(f"max_level must be >= 0, got {max_level}")
        if queue_low > queue_high:
            raise ValueError(
                f"queue_low={queue_low} must not exceed queue_high={queue_high}"
            )
        if not 0 < recover_fraction <= 1:
            raise ValueError(
                f"recover_fraction must be in (0, 1], got {recover_fraction}"
            )
        self.max_level = max_level
        self.queue_high = queue_high
        self.queue_low = queue_low
        self.p95_target = p95_target
        self.recover_fraction = recover_fraction
        self.cooldown = cooldown
        self._time = time_fn
        self._window = SlidingWindow(window)
        self._lock = threading.Lock()
        self._level = 0
        self._last_change = -float("inf")
        self.shed_events = 0
        self.recover_events = 0
        self.max_level_seen = 0

    # -- inputs -------------------------------------------------------------

    def record_latency(self, seconds: float) -> None:
        """Feed one completed request's total latency into the window."""
        self._window.record(seconds)

    def recent_p95(self) -> Optional[float]:
        return self._window.percentile(95)

    # -- state --------------------------------------------------------------

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    def observe(self, queue_depth: int) -> int:
        """Update the shed level from current load; returns the new level."""
        p95 = self.recent_p95()
        with self._lock:
            now = self._time()
            if now - self._last_change < self.cooldown:
                return self._level

            overloaded = queue_depth >= self.queue_high
            if self.p95_target is not None and p95 is not None:
                overloaded = overloaded or p95 > self.p95_target

            calm = queue_depth <= self.queue_low
            if self.p95_target is not None and p95 is not None:
                calm = calm and p95 < self.p95_target * self.recover_fraction

            if overloaded and self._level < self.max_level:
                self._level += 1
                self.shed_events += 1
                self.max_level_seen = max(self.max_level_seen, self._level)
                self._last_change = now
            elif calm and self._level > 0:
                self._level -= 1
                self.recover_events += 1
                self._last_change = now
            return self._level

    def force_level(self, level: int) -> None:
        """Pin the shed level (tests, manual degradation drills)."""
        if not 0 <= level <= self.max_level:
            raise ValueError(
                f"level {level} out of range [0, {self.max_level}]"
            )
        with self._lock:
            self._level = level
            self.max_level_seen = max(self.max_level_seen, level)
            self._last_change = self._time()
