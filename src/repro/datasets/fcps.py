"""Clustering benchmarks: FCPS shapes (Ultsch) plus an Iris-like set.

The paper's Table 2 and Fig. 10 use four FCPS datasets -- Hepta, Tetra,
TwoDiamonds, WingNut -- and the Iris flower data.  The FCPS shapes are
defined geometrically in the original suite, so they can be regenerated
faithfully; Iris is replaced by a 3-class, 4-feature Gaussian analogue
with one well-separated class and two overlapping ones (its signature
structure).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def make_hepta(n_per_cluster: int = 30, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Seven well-separated Gaussian blobs in 3-D (one central, six axial)."""
    rng = np.random.default_rng(seed)
    centers = np.array(
        [
            [0, 0, 0],
            [3, 0, 0], [-3, 0, 0],
            [0, 3, 0], [0, -3, 0],
            [0, 0, 3], [0, 0, -3],
        ],
        dtype=np.float64,
    )
    X = np.concatenate(
        [c + rng.normal(scale=0.35, size=(n_per_cluster, 3)) for c in centers]
    )
    y = np.repeat(np.arange(7), n_per_cluster)
    return X, y


def make_tetra(n_per_cluster: int = 100, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Four almost-touching clusters at tetrahedron corners."""
    rng = np.random.default_rng(seed)
    centers = np.array(
        [[1, 1, 1], [1, -1, -1], [-1, 1, -1], [-1, -1, 1]], dtype=np.float64
    )
    X = np.concatenate(
        [c + rng.normal(scale=0.52, size=(n_per_cluster, 3)) for c in centers]
    )
    y = np.repeat(np.arange(4), n_per_cluster)
    return X, y


def make_two_diamonds(
    n_per_cluster: int = 400, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Two touching diamond-shaped clusters in 2-D."""
    rng = np.random.default_rng(seed)

    def diamond(center_x: float, n: int) -> np.ndarray:
        # uniform in the L1 ball of radius 1
        pts = []
        while len(pts) < n:
            cand = rng.uniform(-1, 1, size=(n, 2))
            keep = np.abs(cand).sum(axis=1) <= 1.0
            pts.extend(cand[keep])
        pts = np.asarray(pts[:n])
        pts[:, 0] += center_x
        return pts

    X = np.concatenate([diamond(-1.05, n_per_cluster), diamond(1.05, n_per_cluster)])
    y = np.repeat(np.arange(2), n_per_cluster)
    return X, y


def make_wingnut(
    n_per_cluster: int = 500, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Two rectangular clouds with density gradients facing each other."""
    rng = np.random.default_rng(seed)

    def wing(sign: float, n: int) -> np.ndarray:
        # density increases toward the inner edge: rejection-free via sqrt
        u = rng.uniform(size=n)
        x = sign * (0.2 + 2.0 * (1.0 - np.sqrt(u)))
        yv = rng.uniform(-1.0, 1.0, size=n)
        jitter = rng.normal(scale=0.05, size=(n, 2))
        return np.stack([x, yv], axis=1) + jitter

    X = np.concatenate([wing(-1.0, n_per_cluster), wing(1.0, n_per_cluster)])
    y = np.repeat(np.arange(2), n_per_cluster)
    return X, y


def make_iris_like(n_per_class: int = 50, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Iris analogue: 4 features, one separable class, two overlapping."""
    rng = np.random.default_rng(seed)
    means = np.array(
        [
            [5.0, 3.4, 1.5, 0.25],  # setosa-like: well separated
            [5.9, 2.8, 4.3, 1.3],  # versicolor-like
            [6.6, 3.0, 5.5, 2.0],  # virginica-like: overlaps the previous
        ]
    )
    scales = np.array(
        [
            [0.35, 0.38, 0.17, 0.10],
            [0.51, 0.31, 0.47, 0.20],
            [0.64, 0.32, 0.55, 0.27],
        ]
    )
    X = np.concatenate(
        [m + rng.normal(size=(n_per_class, 4)) * s for m, s in zip(means, scales)]
    )
    y = np.repeat(np.arange(3), n_per_class)
    return X, y


CLUSTER_DATASETS = {
    "Hepta": (make_hepta, 7),
    "Tetra": (make_tetra, 4),
    "TwoDiamonds": (make_two_diamonds, 2),
    "WingNut": (make_wingnut, 2),
    "Iris": (make_iris_like, 3),
}


def make_cluster_dataset(name: str, seed: int = 0, scale: float = 1.0):
    """Return ``(X, y_true, k)`` for one clustering benchmark.

    Samples arrive shuffled: HDC clustering seeds its centroids with the
    first ``k`` encoded inputs, which assumes a mixed arrival order (as
    any real stream would be), not the generator's class-sorted layout.
    """
    try:
        maker, k = CLUSTER_DATASETS[name]
    except KeyError:
        known = ", ".join(CLUSTER_DATASETS)
        raise ValueError(f"unknown clustering dataset {name!r}; known: {known}")
    import inspect

    sig = inspect.signature(maker)
    size_param = next(iter(sig.parameters))
    default = sig.parameters[size_param].default
    X, y = maker(**{size_param: max(k * 5, int(default * scale)), "seed": seed})
    order = np.random.default_rng(seed).permutation(len(X))
    return X[order], y[order], k
