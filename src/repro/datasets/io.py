"""Dataset persistence: save/load the synthetic benchmarks as ``.npz``.

The generators are deterministic, but exporting a dataset pins the
exact arrays for external tools (or for swapping in the *real* UCI
files on a machine that has them: save them in this format and
:func:`load` returns a drop-in :class:`~repro.datasets.base.Dataset`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.base import Dataset

FORMAT_VERSION = 1


def save(dataset: Dataset, path: Union[str, Path]) -> None:
    """Write a dataset (split, labels, metadata) to ``path`` (.npz)."""
    header = {
        "format_version": FORMAT_VERSION,
        "name": dataset.name,
        "domain": dataset.domain,
        "use_position_ids": dataset.use_position_ids,
        "metadata": dataset.metadata,
    }
    np.savez_compressed(
        Path(path),
        X_train=dataset.X_train,
        y_train=dataset.y_train,
        X_test=dataset.X_test,
        y_test=dataset.y_test,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    )


def load(path: Union[str, Path]) -> Dataset:
    """Read a dataset written by :func:`save` (or hand-built externally)."""
    with np.load(Path(path), allow_pickle=False) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode())
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset file version {header.get('format_version')}"
            )
        return Dataset(
            name=header["name"],
            X_train=data["X_train"],
            y_train=data["y_train"],
            X_test=data["X_test"],
            y_test=data["y_test"],
            use_position_ids=header["use_position_ids"],
            domain=header["domain"],
            metadata=header.get("metadata", {}),
        )


def export_suite(directory: Union[str, Path], profile: str = "bench") -> list:
    """Export every registry dataset to ``directory``; returns the paths."""
    from repro.datasets.registry import CLASSIFICATION_DATASETS, load_dataset

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name in CLASSIFICATION_DATASETS:
        path = directory / f"{name.lower()}_{profile}.npz"
        save(load_dataset(name, profile), path)
        paths.append(path)
    return paths
