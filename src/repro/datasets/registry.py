"""The eleven classification benchmarks (paper Section 3.2, Table 1).

Each entry pins a generator family and its parameters so that the
dataset's *information structure* matches what made each encoder win or
fail in the paper's Table 1 -- see the per-dataset notes.  Three size
profiles trade fidelity for runtime:

- ``tiny``  -- unit tests (seconds);
- ``bench`` -- the benchmark harness default (minutes for Table 1);
- ``full``  -- closer to the original dataset sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.synthetic import (
    make_markov_dataset,
    make_motif_dataset,
    make_prototype_dataset,
    make_tabular_dataset,
)

PROFILES = ("tiny", "bench", "full")

#: per-profile (train samples per class, test samples per class, feature scale)
_PROFILE_SIZES = {
    "tiny": (16, 10, 0.5),
    "bench": (40, 20, 1.0),
    "full": (80, 40, 1.0),
}
_MAX_TRAIN = {"tiny": 220, "bench": 1100, "full": 2200}
_MAX_TEST = {"tiny": 140, "bench": 560, "full": 1100}


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic benchmark."""

    name: str
    domain: str
    family: str  # prototype | motif | markov | tabular
    n_classes: int
    n_features: int
    params: Tuple[Tuple[str, float], ...]
    use_position_ids: bool = True
    seed: int = 0

    def sizes(self, profile: str) -> Tuple[int, int, int]:
        per_train, per_test, f_scale = _PROFILE_SIZES[profile]
        # few-class datasets still need enough samples to train on
        floor_train = {"tiny": 90, "bench": 240, "full": 480}[profile]
        floor_test = {"tiny": 60, "bench": 120, "full": 240}[profile]
        n_train = min(max(self.n_classes * per_train, floor_train), _MAX_TRAIN[profile])
        n_test = min(max(self.n_classes * per_test, floor_test), _MAX_TEST[profile])
        d = max(10, int(self.n_features * f_scale))
        return n_train, n_test, d


_FAMILIES: Dict[str, Callable] = {
    "prototype": make_prototype_dataset,
    "motif": make_motif_dataset,
    "markov": make_markov_dataset,
    "tabular": make_tabular_dataset,
}


def _spec(name, domain, family, n_classes, n_features, seed, use_position_ids=True, **params):
    return DatasetSpec(
        name=name,
        domain=domain,
        family=family,
        n_classes=n_classes,
        n_features=n_features,
        params=tuple(sorted(params.items())),
        use_position_ids=use_position_ids,
        seed=seed,
    )


#: The Table 1 suite.  Comments give the mechanism each entry encodes.
CLASSIFICATION_DATASETS: Dict[str, DatasetSpec] = {
    # tabular fetal-monitoring features; adjacent-pair interactions give the
    # windowed GENERIC encoding its edge over per-feature HDC baselines,
    # while trees (RF) exploit them best overall.
    "CARDIO": _spec(
        "CARDIO", "tabular", "tabular", 3, 21, seed=11,
        separation=1.3, noise=1.0, informative_fraction=0.4,
        pair_interaction=1.6,
    ),
    # binary splice-junction markers: strong marginal signal, everyone ~99%.
    "DNA": _spec(
        "DNA", "sequence", "tabular", 3, 180, seed=12,
        separation=1.6, noise=0.8, informative_fraction=0.4, binary=True,
    ),
    # seizure detection: spike motifs at random offsets on zero-mean noise;
    # random projection collapses (no mean signal), windows win.
    "EEG": _spec(
        "EEG", "timeseries", "motif", 2, 178, seed=13, use_position_ids=False,
        motif_len=6, motifs_per_sample=7, amplitude=1.5, background=0.8,
        histogram_leak=0.35,
    ),
    # gesture EMG: class-specific envelope motifs, zero-mean -> RP fails,
    # every other HDC encoder lands ~90%.
    "EMG": _spec(
        "EMG", "timeseries", "motif", 5, 64, seed=14, use_position_ids=False,
        motif_len=8, motifs_per_sample=5, amplitude=2.4, background=0.5,
        anchored=True,
    ),
    # face vs non-face embeddings: positional prototypes, mild ngram leak.
    "FACE": _spec(
        "FACE", "vision", "prototype", 2, 256, seed=15,
        motif_len=16, alphabet_size=6, noise=0.8, boundary_leak=0.5,
    ),
    # spoken letters: 26 classes, strictly positional formant profiles;
    # ngram collapses (paper: 38.9%).
    "ISOLET": _spec(
        "ISOLET", "speech", "prototype", 26, 256, seed=16,
        motif_len=32, alphabet_size=6, noise=0.8, boundary_leak=0.25,
    ),
    # language identification from character statistics: Markov trigrams,
    # order-free -> GENERIC runs with ids disabled and, like ngram, aces it.
    "LANG": _spec(
        "LANG", "text", "markov", 22, 128, seed=17, use_position_ids=False,
        alphabet_size=12, concentration=0.2, marginal_leak=1.8,
    ),
    # digit images (14x14 flattened): positional prototypes with enough
    # boundary leak that ngram lands mid-range (paper: 53%).
    "MNIST": _spec(
        "MNIST", "vision", "prototype", 10, 196, seed=18,
        motif_len=14, alphabet_size=8, noise=0.75, boundary_leak=2.2,
    ),
    # page-layout blocks: easy tabular blobs, everyone >90%.
    "PAGE": _spec(
        "PAGE", "tabular", "tabular", 5, 10, seed=19,
        separation=1.8, noise=0.75, informative_fraction=0.8,
    ),
    # wearable activity recognition: positional sensor-channel prototypes.
    "PAMAP2": _spec(
        "PAMAP2", "timeseries", "prototype", 12, 120, seed=20,
        motif_len=20, alphabet_size=6, noise=0.7, boundary_leak=0.35,
    ),
    # smartphone activity features: positional prototypes, ngram fails.
    "UCIHAR": _spec(
        "UCIHAR", "timeseries", "prototype", 6, 200, seed=21,
        motif_len=25, alphabet_size=6, noise=0.75, boundary_leak=0.35,
    ),
}


def load_dataset(name: str, profile: str = "bench") -> Dataset:
    """Instantiate a benchmark dataset at the requested size profile."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {PROFILES}")
    try:
        spec = CLASSIFICATION_DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(CLASSIFICATION_DATASETS))
        raise ValueError(f"unknown dataset {name!r}; known: {known}")

    n_train, n_test, d = spec.sizes(profile)
    generator = _FAMILIES[spec.family]
    params = dict(spec.params)
    if spec.family in ("prototype", "motif"):
        # keep motif geometry in range when features are scaled down
        if "motif_len" in params:
            params["motif_len"] = max(3, min(int(params["motif_len"]), d // 2))
    X, y = generator(
        n_classes=spec.n_classes,
        n_features=d,
        n_samples=n_train + n_test,
        seed=spec.seed,
        **params,
    )
    return Dataset(
        name=spec.name,
        X_train=X[:n_train],
        y_train=y[:n_train],
        X_test=X[n_train:],
        y_test=y[n_train:],
        use_position_ids=spec.use_position_ids,
        domain=spec.domain,
        metadata={"profile": PROFILES.index(profile)},
    )


def load_suite(profile: str = "bench") -> Dict[str, Dataset]:
    """All eleven Table 1 datasets."""
    return {name: load_dataset(name, profile) for name in CLASSIFICATION_DATASETS}
